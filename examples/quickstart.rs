//! Quickstart: the paper's damaged-bridge example on two nodes.
//!
//! Resident A photographs a damaged bridge, groups the picture and a
//! location note into the collection `/damaged-bridge-1533783192`, and
//! starts sharing. Resident B walks into range and fetches everything:
//! discovery → signed metadata → bitmap advertisement → rarest-piece-first
//! data exchange.
//!
//! Run with `cargo run --release --example quickstart`.

use dapes::prelude::*;
use std::sync::Arc;

fn main() {
    // The shared local trust anchor of the rural community (paper §III).
    let anchor = TrustAnchor::from_seed(b"rural-area-anchor");

    // Resident A produces the collection: a 200 KB picture and a small
    // location file, split into 1 KB signed packets.
    let collection = Arc::new(Collection::build(CollectionSpec {
        name: Name::from_uri("/damaged-bridge-1533783192"),
        files: vec![
            FileSpec::new("bridge-picture", 200 * 1024),
            FileSpec::new("bridge-location", 2 * 1024),
        ],
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }));
    println!(
        "collection {} → {} packets, metadata {}",
        collection.name(),
        collection.total_packets(),
        collection.metadata_name()
    );

    // A wireless world: 10 % loss, 60 m range, 802.11b timing.
    let mut world = World::new(WorldConfig {
        range: 60.0,
        seed: 7,
        ..WorldConfig::default()
    });

    let mut resident_a = DapesPeer::new(
        0,
        DapesConfig::default(),
        anchor.clone(),
        WantPolicy::Nothing,
    );
    resident_a.add_production(collection.clone());
    world.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        Box::new(resident_a),
    );

    let resident_b = DapesPeer::new(1, DapesConfig::default(), anchor, WantPolicy::Everything);
    let b = world.add_node(
        Box::new(Stationary::new(Point::new(30.0, 0.0))),
        Box::new(resident_b),
    );

    // Watch the download progress.
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs(5);
        world.run_until(t);
        let peer = world.stack::<DapesPeer>(b).expect("resident B");
        let progress = peer.progress(collection.name()).unwrap_or(0.0);
        println!(
            "t={:>5}: progress {:>5.1}%  (verified {}, served {}, frames on air {})",
            t.to_string(),
            progress * 100.0,
            peer.stats().packets_verified,
            peer.stats().packets_served,
            world.stats().tx_frames,
        );
        if peer.downloads_complete() {
            println!(
                "resident B finished at {} with zero verification failures: {}",
                peer.completed_at().expect("complete"),
                peer.stats().verify_failures == 0
            );
            break;
        }
        if t > SimTime::from_secs(600) {
            println!("gave up after 600 s (unexpected)");
            break;
        }
    }
}
