//! Multi-hop forwarding demo (the paper's §V, Fig. 6).
//!
//! The requester is two radio hops from the producer. Between them sit a
//! *pure forwarder* (plain NDN cache, probabilistic forwarding) and an
//! *intermediate DAPES node* (forwards only Interests its overheard
//! knowledge says will bring data back). The demo prints the forwarding
//! accuracy — the paper reports 83 % of forwarded Interests returned data.
//!
//! Run with `cargo run --release --example multihop_relay`.

use dapes::prelude::*;
use std::sync::Arc;

fn main() {
    let anchor = TrustAnchor::from_seed(b"rural-area-anchor");
    let collection = Arc::new(Collection::build(CollectionSpec {
        name: Name::from_uri("/damaged-bridge-1533783192"),
        files: vec![FileSpec::new("bridge-picture", 32 * 1024)],
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }));

    // Relays forward deterministically here so the two-hop path is easy to
    // observe; the fig9g/fig9h benches sweep the probabilistic settings.
    let cfg = DapesConfig {
        forward_prob: 1.0,
        ..DapesConfig::default()
    };
    let mut world = World::new(WorldConfig {
        range: 60.0,
        seed: 11,
        ..WorldConfig::default()
    });

    let mut producer = DapesPeer::new(0, cfg.clone(), anchor.clone(), WantPolicy::Nothing);
    producer.add_production(collection);
    world.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        Box::new(producer),
    );
    // Two relays halfway: a pure forwarder and a DAPES intermediate node.
    let pure = world.add_node(
        Box::new(Stationary::new(Point::new(50.0, 15.0))),
        Box::new(DapesPeer::pure_forwarder(1, cfg.clone(), anchor.clone())),
    );
    let intermediate = world.add_node(
        Box::new(Stationary::new(Point::new(50.0, -15.0))),
        Box::new(DapesPeer::new(
            2,
            cfg.clone(),
            anchor.clone(),
            WantPolicy::Nothing,
        )),
    );
    // The requester, out of the producer's range.
    let requester = world.add_node(
        Box::new(Stationary::new(Point::new(100.0, 0.0))),
        Box::new(DapesPeer::new(3, cfg, anchor, WantPolicy::Everything)),
    );

    let finished = world.run_until_cond(SimTime::from_secs(900), |w| {
        w.stack::<DapesPeer>(requester)
            .is_some_and(|p| p.downloads_complete())
    });
    println!(
        "requester finished across two hops: {} (at {})",
        finished,
        world.now()
    );
    for (label, node) in [("pure forwarder", pure), ("intermediate", intermediate)] {
        let peer = world.stack::<DapesPeer>(node).expect("peer");
        let (ok, fail) = peer.forward_counts();
        println!(
            "{label}: forwarded {} Interests, {} brought data back (accuracy {})",
            ok + fail,
            ok,
            peer.forward_accuracy()
                .map(|a| format!("{:.0}%", a * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "single transmissions heard by several nodes: {} deliveries from {} frames",
        world.stats().delivered,
        world.stats().tx_frames,
    );
}
