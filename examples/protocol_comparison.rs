//! A miniature Fig. 10: DAPES vs Bithoc vs Ekta on the same mobile swarm.
//!
//! Runs one seeded trial of each protocol on a scaled-down version of the
//! paper's 44-node scenario and prints download time and transmission
//! counts. For the full sweeps use the bench binaries
//! (`cargo run --release -p dapes-bench --bin fig10a`).
//!
//! Run with `cargo run --release --example protocol_comparison`.

use dapes_bench::{run_trial, Profile, Protocol};

fn main() {
    // The paper's full 44-node topology with the quick-profile workload
    // (one seeded trial per protocol; the fig10 binaries run the sweeps).
    let mut params = Profile::Quick.base_params();
    params.range = 60.0;
    params.seed = 21;
    println!(
        "{} nodes, collection = {} x {} B, range {} m\n",
        params.total_nodes(),
        params.n_files,
        params.file_size,
        params.range
    );
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>9}",
        "protocol", "time(s)", "complete", "frames", "fwd-acc"
    );
    for (name, protocol) in [
        ("DAPES", Protocol::Dapes(Box::default())),
        ("Bithoc", Protocol::Bithoc),
        ("Ekta", Protocol::Ekta),
    ] {
        let r = run_trial(&protocol, &params);
        println!(
            "{:<8} {:>10.1} {:>9}/{:<2} {:>10} {:>9}",
            name,
            r.avg_download_time_s,
            r.completed,
            r.downloaders,
            r.transmissions,
            r.forward_accuracy
                .map(|a| format!("{:.0}%", a * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\npaper: DAPES downloads 15-33% faster with 50-71% fewer transmissions");
}
