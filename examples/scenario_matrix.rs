//! Drives the `dapes-testutil` scenario matrix from the command line:
//! sweeps every built-in topology across three seeds and prints one row
//! per cell, so harness regressions are visible outside the test suites.
//!
//! ```console
//! $ cargo run --release --example scenario_matrix
//! ```

use dapes_testutil::prelude::*;

fn main() {
    let matrix = ScenarioMatrix::new()
        .topologies([
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
            Topology::PartitionedFerry,
            Topology::MobileSwarm {
                downloaders: 3,
                forwarders: 2,
            },
        ])
        .seeds([1, 2, 3]);
    println!(
        "{:<24} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "topology", "seed", "complete", "slowest", "frames", "overhead"
    );
    for cell in matrix.run() {
        println!(
            "{:<24} {:>6} {:>7}/{:<2} {:>9.1}s {:>10} {:>8.1}%",
            cell.topology.label(),
            cell.seed,
            cell.completed,
            cell.downloaders,
            cell.finished_at.map_or(f64::NAN, |t| t.as_secs_f64()),
            cell.tx_frames,
            100.0 * cell.overhead_ratio,
        );
    }
}
