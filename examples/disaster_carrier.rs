//! Disaster-recovery carrier scenario (the paper's Fig. 8a).
//!
//! Three disconnected network segments: the producer's home, a rest stop,
//! and a far village. No path ever exists end-to-end — a walking data
//! carrier ferries the collection between segments, and DAPES's
//! data-centric naming lets every encounter resume exactly where the last
//! one stopped.
//!
//! Run with `cargo run --release --example disaster_carrier`.

use dapes::prelude::*;
use std::sync::Arc;

fn main() {
    let anchor = TrustAnchor::from_seed(b"rural-area-anchor");
    let collection = Arc::new(Collection::build(CollectionSpec {
        name: Name::from_uri("/damaged-bridge-1533783192"),
        files: vec![
            FileSpec::new("bridge-picture", 64 * 1024),
            FileSpec::new("bridge-location", 2 * 1024),
        ],
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }));

    let mut world = World::new(WorldConfig {
        range: 50.0,
        seed: 3,
        ..WorldConfig::default()
    });

    // Segment 1: producer.
    let mut producer = DapesPeer::new(
        0,
        DapesConfig::default(),
        anchor.clone(),
        WantPolicy::Nothing,
    );
    producer.add_production(collection);
    world.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        Box::new(producer),
    );
    // Segment 2: rest stop, 150 m away (out of range).
    let rest_stop = world.add_node(
        Box::new(Stationary::new(Point::new(150.0, 0.0))),
        Box::new(DapesPeer::new(
            1,
            DapesConfig::default(),
            anchor.clone(),
            WantPolicy::Everything,
        )),
    );
    // Segment 3: village, another 150 m.
    let village = world.add_node(
        Box::new(Stationary::new(Point::new(300.0, 0.0))),
        Box::new(DapesPeer::new(
            2,
            DapesConfig::default(),
            anchor.clone(),
            WantPolicy::Everything,
        )),
    );
    // The carrier: dwell near the producer, walk to the rest stop, then on
    // to the village.
    let carrier = world.add_node(
        Box::new(ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(20.0, 0.0)),
            (SimTime::from_secs(120), Point::new(20.0, 0.0)),
            (SimTime::from_secs(180), Point::new(150.0, 10.0)),
            (SimTime::from_secs(300), Point::new(150.0, 10.0)),
            (SimTime::from_secs(380), Point::new(300.0, 10.0)),
        ])),
        Box::new(DapesPeer::new(
            3,
            DapesConfig::default(),
            anchor,
            WantPolicy::Everything,
        )),
    );

    let name_of = |n: NodeId| match n {
        n if n == rest_stop => "rest-stop",
        n if n == village => "village",
        n if n == carrier => "carrier",
        _ => "?",
    };
    let mut done: Vec<NodeId> = Vec::new();
    let mut t = SimTime::ZERO;
    while done.len() < 3 && t < SimTime::from_secs(1200) {
        t += SimDuration::from_secs(10);
        world.run_until(t);
        if t.as_micros().is_multiple_of(100_000_000) {
            let v = world.stack::<DapesPeer>(village).expect("v");
            let c = world.stack::<DapesPeer>(carrier).expect("c");
            eprintln!("  carrier stats={:?}", c.stats());
            eprintln!(
                "dbg t={}: village progress={:?} pending={} stats={:?} world tx={}",
                t,
                v.progress(&Name::from_uri("/damaged-bridge-1533783192")),
                v.pending_count(),
                v.stats(),
                world.stats().tx_frames
            );
        }
        for n in [carrier, rest_stop, village] {
            if !done.contains(&n) {
                let peer = world.stack::<DapesPeer>(n).expect("peer");
                if peer.downloads_complete() {
                    println!(
                        "t={:>6}: {} has the full collection",
                        peer.completed_at().expect("done").to_string(),
                        name_of(n),
                    );
                    done.push(n);
                }
            }
        }
    }
    println!(
        "total frames transmitted: {} ({} collisions on air)",
        world.stats().tx_frames,
        world.stats().collision_drops,
    );
    assert_eq!(done.len(), 3, "all three segments should be served");
}
