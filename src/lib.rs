//! # DAPES — DAta-centric Peer-to-peer filE Sharing (ICDCS 2020 reproduction)
//!
//! This umbrella crate re-exports the whole reproduction of *DAPES: Named
//! Data for Off-the-Grid File Sharing with Peer-to-Peer Interactions*
//! (Mastorakis, Li, Zhang; ICDCS 2020):
//!
//! * [`core`] (`dapes-core`) — the DAPES protocol itself: namespace, signed
//!   metadata, bitmap advertisements, RPF variants, PEBA, multi-hop
//!   forwarding, and the peer state machine;
//! * [`ndn`] (`dapes-ndn`) — the Named Data Networking substrate (names,
//!   NDN-TLV packets, CS/PIT/FIB forwarder);
//! * [`netsim`] (`dapes-netsim`) — the deterministic wireless discrete-event
//!   simulator (mobility, CSMA MAC, collisions, loss);
//! * [`crypto`] (`dapes-crypto`) — SHA-256, HMAC, Merkle trees and the
//!   trust-anchor signing scheme;
//! * [`baselines`] (`dapes-baselines`) — the paper's IP/MANET comparison
//!   systems, Bithoc (DSDV + TCP-lite) and Ekta (DSR + DHT).
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! substitutions, and `EXPERIMENTS.md` for the paper-versus-measured
//! results. The `examples/` directory contains runnable scenarios
//! (`cargo run --release --example quickstart`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dapes_baselines as baselines;
pub use dapes_core as core;
pub use dapes_crypto as crypto;
pub use dapes_ndn as ndn;
pub use dapes_netsim as netsim;

/// Convenient glob-import of the most-used types across all crates.
///
/// `dapes_baselines` types are listed explicitly because both the core and
/// the baselines crates export a `kinds` frame-tag module.
pub mod prelude {
    pub use dapes_baselines::prelude::{
        BithocConfig, BithocPeer, BithocRole, Dsdv, Dsr, DsrMessage, EktaConfig, EktaPeer,
        EktaRole, IpPacket, SwarmSpec,
    };
    pub use dapes_core::prelude::*;
    pub use dapes_crypto::{signing::TrustAnchor, Digest, MerkleTree};
    pub use dapes_ndn::prelude::*;
    pub use dapes_netsim::prelude::*;
}
