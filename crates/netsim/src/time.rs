//! Simulation clock types.
//!
//! Simulated time is an integer count of microseconds since the start of the
//! run. Integer time makes runs bit-for-bit reproducible across platforms —
//! a property the whole evaluation leans on (same seed ⇒ same trace).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant on the simulation clock, in microseconds since t = 0.
///
/// # Examples
///
/// ```
/// use dapes_netsim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(20);
/// assert_eq!(t.as_micros(), 20_000);
/// assert!(t < t + SimDuration::from_micros(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any realistic simulation instant.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 4);

    /// Builds an instant from microseconds since t = 0.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds an instant from whole seconds since t = 0.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since t = 0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t = 0 as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a span from float seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_micros(1_000_000));
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        assert_eq!(t + d, SimTime::from_secs(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(15));
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_secs_f64(0.125);
        assert_eq!(d.as_micros(), 125_000);
        assert!((d.as_secs_f64() - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_temporal() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis_helper(1500).to_string(), "1.500s");
    }

    impl SimTime {
        fn from_millis_helper(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
