//! A deterministic discrete-event wireless network simulator.
//!
//! This crate replaces the ndnSIM/ns-3 + testbed substrate of the DAPES
//! paper's evaluation (§VI). It models what the protocols under study
//! actually exercise:
//!
//! * an event-driven clock with microsecond resolution ([`time`]),
//! * node mobility — random-direction for the simulation study, scripted
//!   waypoints for the real-world scenarios ([`mobility`]),
//! * a broadcast unit-disk radio with IEEE 802.11b timing, carrier sensing,
//!   collisions (including hidden terminals) and Bernoulli loss
//!   ([`radio`], [`world`]),
//! * per-frame-kind transmission accounting for the paper's overhead figures
//!   ([`stats`]).
//!
//! Protocol stacks implement [`node::NetStack`] and are driven entirely by
//! callbacks; all runs are reproducible from a seed.
//!
//! # Examples
//!
//! ```
//! use dapes_netsim::prelude::*;
//!
//! let mut world = World::new(WorldConfig { range: 50.0, ..WorldConfig::default() });
//! // add_node(...) protocol stacks, then:
//! world.run_until(SimTime::from_secs(60));
//! println!("frames on air: {}", world.stats().tx_frames);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fault;
pub mod geometry;
pub mod grid;
pub mod mobility;
pub mod node;
pub mod payload;
pub mod radio;
pub mod shard;
pub mod stats;
pub mod time;
pub mod wheel;
pub mod world;

/// Convenient glob-import of the types nearly every user needs.
pub mod prelude {
    pub use crate::exec::ExecProfile;
    pub use crate::fault::{FaultAction, FaultPlan};
    pub use crate::geometry::{Point, Rect};
    pub use crate::grid::SpatialGrid;
    pub use crate::mobility::{Mobility, RandomDirection, ScriptedMobility, Stationary};
    pub use crate::node::{NetStack, NodeCtx, NodeId, TimerHandle, TxOutcome};
    pub use crate::payload::Payload;
    pub use crate::radio::{Frame, FrameKind, PhyConfig};
    pub use crate::shard::ShardedWorld;
    pub use crate::stats::Stats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::wheel::TimerWheel;
    pub use crate::world::{
        DeliveryEvents, DeliveryMode, ForeignFrame, QueueMode, StackFactory, World, WorldConfig,
    };
}

pub use prelude::*;
