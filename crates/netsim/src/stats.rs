//! Run-wide accounting: transmissions by kind, collisions, losses, and the
//! system-load proxies used for the paper's Table I.

use crate::radio::FrameKind;
use std::collections::BTreeMap;

/// Counters accumulated over a simulation run.
///
/// *Transmissions* count frames put on the air (the paper's "number of
/// transmissions" overhead metric); deliveries/losses/collisions count
/// per-receiver outcomes.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Frames transmitted (one per send, regardless of receiver count).
    pub tx_frames: u64,
    /// Upper-layer payload bytes transmitted.
    pub tx_payload_bytes: u64,
    /// Frames transmitted, broken down by protocol kind.
    pub tx_by_kind: BTreeMap<FrameKind, u64>,
    /// Per-receiver deliveries that succeeded.
    pub delivered: u64,
    /// Per-receiver deliveries, broken down by protocol kind. The
    /// adversarial benches anchor their accounting here: a defense counter
    /// must equal the *deliveries* of the matching hostile kind (frames
    /// lost to collisions or channel loss were never seen, so they cannot
    /// be rejected).
    pub delivered_by_kind: BTreeMap<FrameKind, u64>,
    /// Payload bytes handed to receivers, all through one shared buffer per
    /// transmission (`delivered × payload length`, zero copies).
    pub delivered_payload_bytes: u64,
    /// Per-receiver drops due to overlapping transmissions.
    pub collision_drops: u64,
    /// Transmissions during which the sender could hear a colliding sender.
    pub tx_collisions: u64,
    /// Per-receiver drops due to random channel loss.
    pub channel_losses: u64,
    /// MAC deferrals due to carrier sense.
    pub mac_deferrals: u64,
    /// Event dispatches — one per event popped from the pending-event
    /// queue (Table I context-switch proxy; also the per-[`QueueMode`]
    /// throughput figure the scheduler benchmark reports).
    ///
    /// [`QueueMode`]: crate::world::QueueMode
    pub event_dispatches: u64,
    /// Arrival events enqueued for finished transmissions: one per
    /// transmission under [`DeliveryEvents::Batched`] (the batch event runs
    /// every delivery), one per *successful receiver* under
    /// [`DeliveryEvents::PerReceiver`].
    ///
    /// [`DeliveryEvents::Batched`]: crate::world::DeliveryEvents::Batched
    /// [`DeliveryEvents::PerReceiver`]: crate::world::DeliveryEvents::PerReceiver
    pub arrival_events: u64,
    /// Stack callbacks that reused a pooled command buffer.
    pub cmd_pool_hits: u64,
    /// Stack callbacks that had to allocate a fresh command buffer (always,
    /// under [`QueueMode::Heap`]'s legacy cost model).
    ///
    /// [`QueueMode::Heap`]: crate::world::QueueMode::Heap
    pub cmd_pool_misses: u64,
    /// Stack → simulator API calls (Table I system-call proxy).
    pub api_calls: u64,
    /// Protocol state-table insertions (Table I page-fault proxy).
    pub state_inserts: u64,
    /// Per-node transmission counts, indexed by `NodeId.0`.
    pub tx_per_node: Vec<u64>,
    /// Nodes crashed by a fault plan (restartable).
    pub node_crashes: u64,
    /// Crashed nodes rebooted with a fresh stack.
    pub node_restarts: u64,
    /// Dormant nodes booted late by a fault plan.
    pub node_joins: u64,
    /// Nodes removed permanently by a fault plan.
    pub node_leaves: u64,
    /// Partition cuts applied (one per `Cut` action, however many links).
    pub partitions_cut: u64,
    /// Partition heals applied (one per `Heal` action).
    pub partitions_healed: u64,
    /// In-range deliveries suppressed because the sender→receiver link was
    /// cut by an active partition.
    pub partition_drops: u64,
    /// Timer or delayed-send events that popped after their node's
    /// incarnation died (crash/leave/restart) and were suppressed instead of
    /// firing into the fresh stack. Their slab slots are still freed.
    pub stale_events_suppressed: u64,
    /// Number of spatial shards the run executed on (1 for the sequential
    /// engine; set by the shard coordinator on merged stats).
    pub shards: u64,
    /// Conservative lookahead window of the sharded engine, in
    /// microseconds (0 for the sequential engine).
    pub lookahead_micros: u64,
    /// Synchronization windows (barrier rounds) the sharded engine ran.
    pub sync_windows: u64,
    /// Transmissions whose radio disc crossed a shard border and were
    /// exported as inter-shard messages.
    pub border_tx_exported: u64,
    /// Border-crossing transmissions injected into this world at window
    /// boundaries (each fans out to local receivers like a delivery).
    pub border_rx_injected: u64,
}

impl Stats {
    /// Creates zeroed stats for `n` nodes.
    pub fn new(n_nodes: usize) -> Self {
        Stats {
            tx_per_node: vec![0; n_nodes],
            ..Stats::default()
        }
    }

    /// Records one transmission.
    pub(crate) fn record_tx(&mut self, node: usize, kind: FrameKind, payload_len: usize) {
        self.tx_frames += 1;
        self.tx_payload_bytes += payload_len as u64;
        *self.tx_by_kind.entry(kind).or_insert(0) += 1;
        if let Some(slot) = self.tx_per_node.get_mut(node) {
            *slot += 1;
        }
    }

    /// Records one successful per-receiver delivery.
    pub(crate) fn record_delivery(&mut self, kind: FrameKind, payload_len: usize) {
        self.delivered += 1;
        self.delivered_payload_bytes += payload_len as u64;
        *self.delivered_by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Folds another run's counters into this one — the shard coordinator
    /// merges per-shard stats into one run-wide view with it.
    ///
    /// Additive counters sum; `tx_per_node` merges element-wise (node ids
    /// are globally aligned across shards, so each index is owned by
    /// exactly one shard); `partitions_cut`/`partitions_healed` take the
    /// max because `Cut`/`Heal` actions are broadcast to every shard and
    /// would otherwise multiply; `shards`/`lookahead_micros`/`sync_windows`
    /// take the max because the coordinator stamps them run-wide.
    pub fn merge(&mut self, other: &Stats) {
        self.tx_frames += other.tx_frames;
        self.tx_payload_bytes += other.tx_payload_bytes;
        for (kind, count) in &other.tx_by_kind {
            *self.tx_by_kind.entry(*kind).or_insert(0) += count;
        }
        self.delivered += other.delivered;
        for (kind, count) in &other.delivered_by_kind {
            *self.delivered_by_kind.entry(*kind).or_insert(0) += count;
        }
        self.delivered_payload_bytes += other.delivered_payload_bytes;
        self.collision_drops += other.collision_drops;
        self.tx_collisions += other.tx_collisions;
        self.channel_losses += other.channel_losses;
        self.mac_deferrals += other.mac_deferrals;
        self.event_dispatches += other.event_dispatches;
        self.arrival_events += other.arrival_events;
        self.cmd_pool_hits += other.cmd_pool_hits;
        self.cmd_pool_misses += other.cmd_pool_misses;
        self.api_calls += other.api_calls;
        self.state_inserts += other.state_inserts;
        if self.tx_per_node.len() < other.tx_per_node.len() {
            self.tx_per_node.resize(other.tx_per_node.len(), 0);
        }
        for (slot, n) in self.tx_per_node.iter_mut().zip(&other.tx_per_node) {
            *slot += n;
        }
        self.node_crashes += other.node_crashes;
        self.node_restarts += other.node_restarts;
        self.node_joins += other.node_joins;
        self.node_leaves += other.node_leaves;
        self.partitions_cut = self.partitions_cut.max(other.partitions_cut);
        self.partitions_healed = self.partitions_healed.max(other.partitions_healed);
        self.partition_drops += other.partition_drops;
        self.stale_events_suppressed += other.stale_events_suppressed;
        self.shards = self.shards.max(other.shards);
        self.lookahead_micros = self.lookahead_micros.max(other.lookahead_micros);
        self.sync_windows = self.sync_windows.max(other.sync_windows);
        self.border_tx_exported += other.border_tx_exported;
        self.border_rx_injected += other.border_rx_injected;
    }

    /// Total deliveries for a set of kinds (the adversarial benches'
    /// hostile-frame denominator).
    pub fn delivered_for_kinds(&self, kinds: &[FrameKind]) -> u64 {
        kinds
            .iter()
            .map(|k| self.delivered_by_kind.get(k).copied().unwrap_or(0))
            .sum()
    }

    /// Total transmissions for a set of kinds (a figure's overhead series).
    pub fn tx_for_kinds(&self, kinds: &[FrameKind]) -> u64 {
        kinds
            .iter()
            .map(|k| self.tx_by_kind.get(k).copied().unwrap_or(0))
            .sum()
    }

    /// Renders the run counters in Prometheus text exposition format.
    ///
    /// Every metric is prefixed `dapes_` and carries `# HELP` / `# TYPE`
    /// headers; per-kind breakdowns use a `kind` label. The adversarial
    /// bench emits this dump next to its JSON report and `checkjson`
    /// validates the shape, so scrape pipelines can ingest a run without
    /// parsing the report.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP dapes_{name} {help}\n# TYPE dapes_{name} counter\ndapes_{name} {value}\n"
            ));
        };
        counter("tx_frames_total", "Frames transmitted.", self.tx_frames);
        counter(
            "tx_payload_bytes_total",
            "Payload bytes transmitted.",
            self.tx_payload_bytes,
        );
        counter(
            "delivered_total",
            "Per-receiver deliveries that succeeded.",
            self.delivered,
        );
        counter(
            "delivered_payload_bytes_total",
            "Payload bytes handed to receivers.",
            self.delivered_payload_bytes,
        );
        counter(
            "collision_drops_total",
            "Per-receiver drops due to overlapping transmissions.",
            self.collision_drops,
        );
        counter(
            "channel_losses_total",
            "Per-receiver drops due to random channel loss.",
            self.channel_losses,
        );
        counter(
            "mac_deferrals_total",
            "MAC deferrals due to carrier sense.",
            self.mac_deferrals,
        );
        counter(
            "event_dispatches_total",
            "Scheduler event dispatches.",
            self.event_dispatches,
        );
        counter(
            "node_crashes_total",
            "Nodes crashed by a fault plan.",
            self.node_crashes,
        );
        counter(
            "node_restarts_total",
            "Crashed nodes rebooted with a fresh stack.",
            self.node_restarts,
        );
        counter(
            "node_joins_total",
            "Dormant nodes booted late by a fault plan.",
            self.node_joins,
        );
        counter(
            "node_leaves_total",
            "Nodes removed permanently by a fault plan.",
            self.node_leaves,
        );
        counter(
            "partitions_cut_total",
            "Partition cuts applied.",
            self.partitions_cut,
        );
        counter(
            "partitions_healed_total",
            "Partition heals applied.",
            self.partitions_healed,
        );
        counter(
            "partition_drops_total",
            "In-range deliveries suppressed by an active partition.",
            self.partition_drops,
        );
        counter(
            "stale_events_suppressed_total",
            "Events suppressed after their node incarnation died.",
            self.stale_events_suppressed,
        );
        counter(
            "border_tx_exported_total",
            "Transmissions exported across a shard border.",
            self.border_tx_exported,
        );
        counter(
            "border_rx_injected_total",
            "Border-crossing transmissions injected at window boundaries.",
            self.border_rx_injected,
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP dapes_{name} {help}\n# TYPE dapes_{name} gauge\ndapes_{name} {value}\n"
            ));
        };
        gauge("shards", "Spatial shards the run executed on.", self.shards);
        gauge(
            "lookahead_micros",
            "Conservative lookahead window of the sharded engine.",
            self.lookahead_micros,
        );
        gauge(
            "sync_windows",
            "Synchronization windows the sharded engine ran.",
            self.sync_windows,
        );
        out.push_str(concat!(
            "# HELP dapes_tx_by_kind_total Frames transmitted, by protocol kind.\n",
            "# TYPE dapes_tx_by_kind_total counter\n"
        ));
        for (kind, count) in &self.tx_by_kind {
            out.push_str(&format!(
                "dapes_tx_by_kind_total{{kind=\"{}\"}} {count}\n",
                kind.0
            ));
        }
        out.push_str(concat!(
            "# HELP dapes_delivered_by_kind_total Per-receiver deliveries, by protocol kind.\n",
            "# TYPE dapes_delivered_by_kind_total counter\n"
        ));
        for (kind, count) in &self.delivered_by_kind {
            out.push_str(&format!(
                "dapes_delivered_by_kind_total{{kind=\"{}\"}} {count}\n",
                kind.0
            ));
        }
        out
    }

    /// Fraction of per-receiver outcomes that were collision drops.
    pub fn collision_fraction(&self) -> f64 {
        let total = self.delivered + self.collision_drops + self.channel_losses;
        if total == 0 {
            0.0
        } else {
            self.collision_drops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tx_updates_all_views() {
        let mut s = Stats::new(3);
        s.record_tx(1, FrameKind(5), 100);
        s.record_tx(1, FrameKind(5), 50);
        s.record_tx(2, FrameKind(6), 10);
        assert_eq!(s.tx_frames, 3);
        assert_eq!(s.tx_payload_bytes, 160);
        assert_eq!(s.tx_by_kind[&FrameKind(5)], 2);
        assert_eq!(s.tx_per_node, vec![0, 2, 1]);
        assert_eq!(s.tx_for_kinds(&[FrameKind(5), FrameKind(6)]), 3);
        assert_eq!(s.tx_for_kinds(&[FrameKind(9)]), 0);
    }

    #[test]
    fn out_of_range_node_does_not_panic() {
        let mut s = Stats::new(1);
        s.record_tx(7, FrameKind(1), 1);
        assert_eq!(s.tx_frames, 1);
    }

    #[test]
    fn record_delivery_updates_kind_breakdown() {
        let mut s = Stats::new(2);
        s.record_delivery(FrameKind(8), 100);
        s.record_delivery(FrameKind(8), 100);
        s.record_delivery(FrameKind(30), 64);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.delivered_payload_bytes, 264);
        assert_eq!(s.delivered_by_kind[&FrameKind(8)], 2);
        assert_eq!(s.delivered_for_kinds(&[FrameKind(30)]), 1);
        assert_eq!(s.delivered_for_kinds(&[FrameKind(9)]), 0);
    }

    #[test]
    fn prometheus_dump_has_help_type_and_values() {
        let mut s = Stats::new(1);
        s.record_tx(0, FrameKind(5), 40);
        s.record_delivery(FrameKind(5), 40);
        let text = s.to_prometheus();
        assert!(text.contains("# HELP dapes_tx_frames_total"));
        assert!(text.contains("# TYPE dapes_tx_frames_total counter"));
        assert!(text.contains("dapes_tx_frames_total 1\n"));
        assert!(text.contains("dapes_tx_by_kind_total{kind=\"5\"} 1\n"));
        assert!(text.contains("dapes_delivered_by_kind_total{kind=\"5\"} 1\n"));
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("dapes_"),
                "unexpected line {line:?}"
            );
        }
    }

    #[test]
    fn merge_sums_counters_and_maxes_broadcast_actions() {
        let mut a = Stats::new(2);
        a.record_tx(0, FrameKind(5), 10);
        a.record_delivery(FrameKind(5), 10);
        a.partitions_cut = 3;
        a.event_dispatches = 7;
        a.border_tx_exported = 2;
        let mut b = Stats::new(4);
        b.record_tx(3, FrameKind(5), 20);
        b.record_tx(3, FrameKind(6), 5);
        b.partitions_cut = 3; // same Cut actions, broadcast to every shard
        b.event_dispatches = 11;
        b.border_rx_injected = 4;
        a.merge(&b);
        assert_eq!(a.tx_frames, 3);
        assert_eq!(a.tx_payload_bytes, 35);
        assert_eq!(a.tx_by_kind[&FrameKind(5)], 2);
        assert_eq!(a.tx_by_kind[&FrameKind(6)], 1);
        assert_eq!(a.delivered, 1);
        assert_eq!(a.tx_per_node, vec![1, 0, 0, 2]);
        assert_eq!(a.partitions_cut, 3);
        assert_eq!(a.event_dispatches, 18);
        assert_eq!(a.border_tx_exported, 2);
        assert_eq!(a.border_rx_injected, 4);
    }

    #[test]
    fn prometheus_dump_includes_shard_metrics() {
        let mut s = Stats::new(1);
        s.shards = 4;
        s.lookahead_micros = 217;
        s.sync_windows = 9;
        s.border_tx_exported = 5;
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE dapes_shards gauge"));
        assert!(text.contains("dapes_shards 4\n"));
        assert!(text.contains("dapes_lookahead_micros 217\n"));
        assert!(text.contains("dapes_sync_windows 9\n"));
        assert!(text.contains("dapes_border_tx_exported_total 5\n"));
        assert!(text.contains("dapes_border_rx_injected_total 0\n"));
    }

    #[test]
    fn collision_fraction_handles_empty() {
        let s = Stats::new(0);
        assert_eq!(s.collision_fraction(), 0.0);
        let mut s = Stats::new(0);
        s.delivered = 9;
        s.collision_drops = 1;
        assert!((s.collision_fraction() - 0.1).abs() < 1e-12);
    }
}
