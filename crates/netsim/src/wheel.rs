//! A hierarchical timer wheel for the simulator's event queue.
//!
//! The discrete-event loop pops hundreds of millions of events in a large
//! run, and a `BinaryHeap` pays O(log n) comparisons *per push and per pop*
//! on a queue that holds one or more timers per node — at million-node
//! scale that log factor is the scheduler. The wheel replaces it with a
//! bucketed calendar: [`LEVELS`] levels of [`SLOTS`] slots each, where a
//! level-`l` slot spans `64^l` microseconds. Pushing an event indexes the
//! lowest level whose current window contains its time — O(1) — and the
//! cursor advances by scanning one occupancy bitmask (`u64`) per level, so
//! skipping an empty second of simulated time costs a handful of
//! `trailing_zeros` calls, not a million empty-slot probes.
//!
//! # Exact heap equivalence
//!
//! The simulator's determinism contract ("same seed ⇒ bit-identical trace")
//! requires the wheel to pop events in *exactly* the `(time, seq)` order the
//! heap would. That holds structurally:
//!
//! * slots partition time into disjoint ascending ranges, and the cursor
//!   only moves forward, so cross-slot order is time order;
//! * a level-0 slot spans a single microsecond, so draining it sorts only
//!   by `(time, seq)` among same-instant events (a push whose time already
//!   passed merges straight into the drained batch at its heap rank);
//! * events pushed *while* the current instant drains (`delay == 0`
//!   commands) land back in the current slot and carry a larger `seq` than
//!   everything already drained, so re-scanning the slot after the ready
//!   buffer empties preserves the global order.
//!
//! Events beyond the top-level horizon (`64^6` µs ≈ 19 hours) spill into a
//! small overflow heap and are folded back in when the wheel drains — they
//! exist only so pathological far-future timers stay correct, not fast.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Slots per level (one occupancy bit per slot in a `u64` mask).
pub const SLOTS: usize = 64;
/// Bits of the time index consumed per level.
const SLOT_BITS: u32 = 6;
/// Number of levels; the wheel spans `64^LEVELS` microseconds.
pub const LEVELS: usize = 6;
/// Number of low time bits the wheel can index; times whose bits above this
/// differ from the cursor's go to the overflow heap.
const CAPACITY_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// One queued event: a time in microseconds, the global push sequence
/// number that breaks same-instant ties, and the caller's payload.
#[derive(Debug)]
pub struct WheelEntry<T> {
    /// Event time in microseconds.
    pub time: u64,
    /// Global push order, unique per entry.
    pub seq: u64,
    /// The caller's event payload.
    pub item: T,
}

impl<T> PartialEq for WheelEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for WheelEntry<T> {}
impl<T> PartialOrd for WheelEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for WheelEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A hierarchical timer wheel that pops entries in exact `(time, seq)`
/// order, equivalent to a min-heap but with O(1) near-future push/pop.
///
/// # Examples
///
/// ```
/// use dapes_netsim::wheel::TimerWheel;
///
/// let mut w = TimerWheel::new();
/// w.push(50, 2, "late");
/// w.push(10, 1, "early");
/// assert_eq!(w.peek_time(), Some(10));
/// assert_eq!(w.pop().map(|e| e.item), Some("early"));
/// assert_eq!(w.pop().map(|e| e.item), Some("late"));
/// assert!(w.pop().is_none());
/// ```
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Current time position; only moves forward.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<WheelEntry<T>>>,
    /// Per-level occupancy bitmask (bit `s` set ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Entries in the level buckets (excludes `ready` and `overflow`).
    in_slots: usize,
    /// The drained current-instant slot, sorted descending so `pop` takes
    /// from the back. Swapped with slot vectors to recycle allocations.
    ready: Vec<WheelEntry<T>>,
    /// Events beyond the wheel's horizon, folded back in when it drains.
    overflow: BinaryHeap<std::cmp::Reverse<WheelEntry<T>>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel positioned at t = 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            in_slots: 0,
            ready: Vec::new(),
            overflow: BinaryHeap::new(),
        }
    }

    /// Total queued entries.
    pub fn len(&self) -> usize {
        self.in_slots + self.ready.len() + self.overflow.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues an entry. `seq` must be unique (and, for heap equivalence,
    /// monotone in push order). A `time` before the wheel's current position
    /// merges directly into the ready batch at its `(time, seq)` rank,
    /// mirroring how a min-heap would pop an already-late event immediately
    /// — even ahead of current-instant entries already drained for popping.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        let entry = WheelEntry { time, seq, item };
        if time < self.cursor {
            let pos = self
                .ready
                .partition_point(|e| (e.time, e.seq) > (time, seq));
            self.ready.insert(pos, entry);
            return;
        }
        if (time >> CAPACITY_BITS) != (self.cursor >> CAPACITY_BITS) {
            self.overflow.push(std::cmp::Reverse(entry));
            return;
        }
        self.place(entry);
        self.in_slots += 1;
    }

    /// Routes an in-horizon entry to its level and slot. Callers guarantee
    /// `entry.time >= cursor` (late pushes merge into `ready` instead).
    fn place(&mut self, entry: WheelEntry<T>) {
        debug_assert!(entry.time >= self.cursor);
        let t = entry.time;
        let diff = t ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        debug_assert!(level < LEVELS, "beyond-horizon entry must overflow");
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(entry);
    }

    /// The time of the next entry, or `None` when empty. Advances the
    /// cursor past empty regions as a side effect (never past an entry).
    pub fn peek_time(&mut self) -> Option<u64> {
        self.ensure_ready();
        self.ready.last().map(|e| e.time)
    }

    /// Removes and returns the earliest entry by `(time, seq)`.
    pub fn pop(&mut self) -> Option<WheelEntry<T>> {
        self.ensure_ready();
        self.ready.pop()
    }

    /// Fills `ready` with the earliest instant's entries, sorted for
    /// back-to-front popping.
    fn ensure_ready(&mut self) {
        loop {
            if !self.ready.is_empty() {
                return;
            }
            if self.in_slots == 0 {
                if !self.refill_from_overflow() {
                    return;
                }
                continue;
            }
            // Drain the current instant's slot if occupied (this also picks
            // up zero-delay events pushed while the previous batch popped).
            let idx0 = (self.cursor & (SLOTS as u64 - 1)) as usize;
            if self.occupied[0] & (1 << idx0) != 0 {
                self.occupied[0] &= !(1 << idx0);
                std::mem::swap(&mut self.ready, &mut self.slots[idx0]);
                self.in_slots -= self.ready.len();
                self.ready
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                continue;
            }
            self.advance();
        }
    }

    /// Moves the cursor to the next occupied slot, cascading higher-level
    /// buckets down as their windows open.
    fn advance(&mut self) {
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let idx = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            // Bits strictly above the cursor's slot: slots at or below it
            // hold no entries (level 0's current slot was just drained, and
            // pushes can never target an already-passed window).
            let pending = self.occupied[level] & (u64::MAX << idx << 1);
            if pending == 0 {
                continue;
            }
            let slot = pending.trailing_zeros() as u64;
            let unit = 1u64 << shift;
            let window_base = self.cursor & !((unit << SLOT_BITS) - 1);
            self.cursor = window_base + slot * unit;
            if level > 0 {
                self.cascade(level, slot as usize);
            }
            return;
        }
        debug_assert!(self.in_slots == 0, "entries queued but no slot found");
    }

    /// Redistributes a higher-level bucket into the finer levels now that
    /// the cursor sits at its window start.
    fn cascade(&mut self, level: usize, slot: usize) {
        self.occupied[level] &= !(1 << slot);
        let mut bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
        for entry in bucket.drain(..) {
            self.place(entry);
        }
        // Hand the allocation back so steady-state cascades do not allocate.
        self.slots[level * SLOTS + slot] = bucket;
    }

    /// Jumps the cursor to the overflow's earliest window and folds every
    /// overflow entry inside the wheel's new horizon back in. Returns
    /// whether anything was recovered.
    fn refill_from_overflow(&mut self) -> bool {
        let Some(std::cmp::Reverse(head)) = self.overflow.peek() else {
            return false;
        };
        self.cursor = self.cursor.max(head.time);
        while let Some(std::cmp::Reverse(e)) = self.overflow.peek() {
            if (e.time >> CAPACITY_BITS) != (self.cursor >> CAPACITY_BITS) {
                break;
            }
            let std::cmp::Reverse(e) = self.overflow.pop().expect("peeked");
            self.place(e);
            self.in_slots += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(5, 1, 'a');
        w.push(5, 3, 'c');
        w.push(5, 2, 'b');
        w.push(1, 4, 'z');
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec!['z', 'a', 'b', 'c']);
    }

    #[test]
    fn empty_wheel_peeks_and_pops_none() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        assert_eq!(w.peek_time(), None);
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_push_during_drain_pops_after_ready_batch() {
        let mut w = TimerWheel::new();
        w.push(10, 1, 'a');
        w.push(10, 2, 'b');
        assert_eq!(w.pop().map(|e| e.item), Some('a'));
        // A zero-delay event produced while dispatching 'a'.
        w.push(10, 3, 'c');
        assert_eq!(w.pop().map(|e| e.item), Some('b'));
        assert_eq!(w.pop().map(|e| e.item), Some('c'));
    }

    #[test]
    fn sparse_far_apart_times_pop_correctly() {
        let mut w = TimerWheel::new();
        // One entry per level's scale, plus an overflow entry.
        let times = [
            3u64,
            70,
            5_000,
            300_000,
            20_000_000,
            1_500_000_000,
            1u64 << 40, // beyond the 2^36 horizon
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64 + 1, t);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(popped, times);
    }

    #[test]
    fn cross_window_boundary_order_is_preserved() {
        // Entries straddling a level-1 boundary (time 63 vs 64) and a
        // level-2 boundary (4095 vs 4096), pushed out of order.
        let mut w = TimerWheel::new();
        w.push(64, 1, 64u64);
        w.push(63, 2, 63);
        w.push(4096, 3, 4096);
        w.push(4095, 4, 4095);
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(popped, vec![63, 64, 4095, 4096]);
    }

    #[test]
    fn past_time_push_pops_immediately_with_original_time() {
        let mut w = TimerWheel::new();
        w.push(100, 1, ());
        assert_eq!(w.pop().map(|e| e.time), Some(100));
        // The cursor sits at 100; a late push for t=40 pops next.
        w.push(200, 2, ());
        w.push(40, 3, ());
        let e = w.pop().expect("late entry");
        assert_eq!((e.time, e.seq), (40, 3));
        assert_eq!(w.pop().map(|e| e.time), Some(200));
    }

    #[test]
    fn past_time_push_outranks_the_drained_current_batch() {
        // A late push must pop before same-instant entries that were
        // already drained into the ready batch — exactly what a min-heap
        // would do.
        let mut w = TimerWheel::new();
        w.push(10, 1, 1u32);
        w.push(10, 2, 2);
        assert_eq!(w.pop().map(|e| e.item), Some(1));
        w.push(5, 3, 3); // late, while (10, 2) sits in the ready batch
        let e = w.pop().expect("late entry first");
        assert_eq!((e.time, e.seq, e.item), (5, 3, 3));
        assert_eq!(w.pop().map(|e| e.item), Some(2));
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_matches_next_pop_and_len_tracks() {
        let mut w = TimerWheel::new();
        for i in 0..100u64 {
            w.push(i * 37 % 911, i + 1, i);
        }
        assert_eq!(w.len(), 100);
        let mut n = 0;
        while let Some(t) = w.peek_time() {
            let e = w.pop().expect("peeked");
            assert_eq!(e.time, t);
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn push_at_exactly_the_overflow_horizon_boundary() {
        // With the cursor at 0, the horizon's last in-wheel instant is
        // 2^CAPACITY_BITS - 1 and the very next microsecond must overflow —
        // and both must still pop in order, including an entry pushed at
        // the exact boundary after the wheel jumps windows.
        const HORIZON: u64 = 1 << CAPACITY_BITS;
        let mut w = TimerWheel::new();
        w.push(HORIZON - 1, 1, "last-in-wheel");
        w.push(HORIZON, 2, "first-overflow");
        assert_eq!(w.overflow.len(), 1, "boundary entry must overflow");
        assert_eq!(w.peek_time(), Some(HORIZON - 1));
        assert_eq!(w.pop().map(|e| e.item), Some("last-in-wheel"));
        assert_eq!(w.pop().map(|e| e.item), Some("first-overflow"));
        // The refill moved the cursor into the second window: a same-window
        // push lands in the slots, the third window's base overflows again.
        w.push(HORIZON + 5, 3, "second-window");
        assert_eq!(w.overflow.len(), 0);
        w.push(2 * HORIZON, 4, "third-window");
        assert_eq!(w.overflow.len(), 1);
        assert_eq!(w.pop().map(|e| e.item), Some("second-window"));
        assert_eq!(w.pop().map(|e| e.item), Some("third-window"));
        assert!(w.pop().is_none());
    }

    /// The load-bearing property: the wheel pops the exact sequence a
    /// min-heap pops, under randomized interleaved pushes and pops across
    /// every level's time scale.
    #[test]
    fn matches_binary_heap_under_random_interleaving() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(0x5EED ^ (seed * 7919 + 1));
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<std::cmp::Reverse<WheelEntry<u64>>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..4_000 {
                if rng.gen_bool(0.55) || heap.is_empty() {
                    seq += 1;
                    // Mix deltas across the wheel's scales, including 0.
                    let delta = match rng.gen_range(0u32..6) {
                        0 => 0,
                        1 => rng.gen_range(0..64),
                        2 => rng.gen_range(0..4_096),
                        3 => rng.gen_range(0..262_144),
                        4 => rng.gen_range(0..16_777_216),
                        _ => rng.gen_range(0..(1u64 << 38)), // into overflow
                    };
                    let t = now + delta;
                    wheel.push(t, seq, seq);
                    heap.push(std::cmp::Reverse(WheelEntry {
                        time: t,
                        seq,
                        item: seq,
                    }));
                } else {
                    let expect = heap.pop().expect("non-empty").0;
                    let got = wheel.pop().expect("wheel has same entries");
                    assert_eq!((got.time, got.seq), (expect.time, expect.seq));
                    now = expect.time;
                }
            }
            while let Some(std::cmp::Reverse(expect)) = heap.pop() {
                let got = wheel.pop().expect("drain");
                assert_eq!((got.time, got.seq), (expect.time, expect.seq));
            }
            assert!(wheel.pop().is_none());
        }
    }
}
