//! Node mobility models.
//!
//! The paper's simulation (§VI-B1) uses 40 mobile nodes that "randomly choose
//! their direction and speed" (speed 2–10 m/s, direction 0–2π) in a
//! 300 m × 300 m field, plus 4 stationary repositories. The real-world
//! scenarios of Fig. 8 follow scripted trajectories, which
//! [`ScriptedMobility`] reproduces.

use crate::geometry::{advance, time_to_boundary, Point, Velocity};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;

/// How a node moves. Positions are queried analytically between *segment
/// changes*, so the simulator never ticks idle nodes. `Send` because the
/// sharded engine moves each shard's world onto its own thread between
/// synchronization barriers.
pub trait Mobility: Debug + Send {
    /// Position at time `now`. Must be piecewise-deterministic: two queries
    /// at the same instant return the same point.
    fn position(&self, now: SimTime) -> Point;

    /// When the current movement segment ends and [`Mobility::on_change`]
    /// must run, or `None` for "never" (stationary nodes).
    fn next_change(&self) -> Option<SimTime>;

    /// Re-plans movement at a segment boundary.
    fn on_change(&mut self, now: SimTime, rng: &mut SmallRng, field: (f64, f64));
}

/// A node that never moves (the paper's stationary repositories).
#[derive(Clone, Debug)]
pub struct Stationary {
    at: Point,
}

impl Stationary {
    /// Creates a stationary node at `at`.
    pub fn new(at: Point) -> Self {
        Stationary { at }
    }
}

impl Mobility for Stationary {
    fn position(&self, _now: SimTime) -> Point {
        self.at
    }

    fn next_change(&self) -> Option<SimTime> {
        None
    }

    fn on_change(&mut self, _now: SimTime, _rng: &mut SmallRng, _field: (f64, f64)) {}
}

/// Random-direction mobility: pick a heading in `[0, 2π)` and a speed in
/// `[min_speed, max_speed]`, walk until the field boundary (or a bounded leg
/// time), then re-draw.
#[derive(Clone, Debug)]
pub struct RandomDirection {
    origin: Point,
    velocity: Velocity,
    seg_start: SimTime,
    seg_end: SimTime,
    min_speed: f64,
    max_speed: f64,
    /// Upper bound on one leg, so nodes re-draw direction even mid-field.
    max_leg: SimDuration,
    /// Field learned at the first `on_change`; positions are clamped into it
    /// to absorb microsecond-rounding overshoot at the walls.
    field: (f64, f64),
}

impl RandomDirection {
    /// Creates the model with the paper's speed range of 2–10 m/s.
    pub fn new(start: Point) -> Self {
        Self::with_speeds(start, 2.0, 10.0)
    }

    /// Creates the model with a custom speed range.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty or negative.
    pub fn with_speeds(start: Point, min_speed: f64, max_speed: f64) -> Self {
        assert!(
            min_speed >= 0.0 && max_speed >= min_speed,
            "speed range must be non-negative and non-empty"
        );
        RandomDirection {
            origin: start,
            velocity: Velocity::ZERO,
            seg_start: SimTime::ZERO,
            // A change at t=0 draws the first heading.
            seg_end: SimTime::ZERO,
            min_speed,
            max_speed,
            max_leg: SimDuration::from_secs(20),
            field: (f64::INFINITY, f64::INFINITY),
        }
    }

    /// Overrides the maximum leg duration between direction re-draws.
    pub fn with_max_leg(mut self, max_leg: SimDuration) -> Self {
        self.max_leg = max_leg;
        self
    }
}

impl Mobility for RandomDirection {
    fn position(&self, now: SimTime) -> Point {
        let t = now.min(self.seg_end);
        let dt = t.since(self.seg_start).as_secs_f64();
        advance(self.origin, self.velocity, dt).clamped(self.field.0, self.field.1)
    }

    fn next_change(&self) -> Option<SimTime> {
        Some(self.seg_end)
    }

    fn on_change(&mut self, now: SimTime, rng: &mut SmallRng, field: (f64, f64)) {
        let (w, h) = field;
        self.field = field;
        self.origin = self.position(now).clamped(w, h);
        self.seg_start = now;

        // Re-sample until the heading points into the field; on a wall a
        // random heading has >= 1/2 chance of pointing inward, so this
        // terminates quickly.
        for _ in 0..64 {
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let speed = if self.max_speed > self.min_speed {
                rng.gen_range(self.min_speed..self.max_speed)
            } else {
                self.min_speed
            };
            let v = Velocity::from_heading(theta, speed);
            match time_to_boundary(self.origin, v, w, h) {
                Some(t_exit) if t_exit > 0.05 => {
                    self.velocity = v;
                    let leg = SimDuration::from_secs_f64(t_exit.min(self.max_leg.as_secs_f64()));
                    self.seg_end = now + leg;
                    return;
                }
                None => {
                    // Zero speed (possible when min_speed == 0): idle a leg.
                    self.velocity = Velocity::ZERO;
                    self.seg_end = now + self.max_leg;
                    return;
                }
                _ => continue,
            }
        }
        // Pathological corner: stay put for one leg and retry later.
        self.velocity = Velocity::ZERO;
        self.seg_end = now + self.max_leg;
    }
}

/// Scripted waypoint mobility for the real-world scenarios of the paper's
/// Fig. 8: the node moves in straight lines between timed waypoints and
/// stays at the final waypoint afterwards.
#[derive(Clone, Debug)]
pub struct ScriptedMobility {
    /// `(arrival time, position)`, sorted by time, first entry at t = 0.
    waypoints: Vec<(SimTime, Point)>,
    /// Index of the last waypoint already reached.
    current: usize,
}

impl ScriptedMobility {
    /// Creates a scripted trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty or not sorted by strictly increasing
    /// time, or if the first waypoint is not at `SimTime::ZERO`.
    pub fn new(waypoints: Vec<(SimTime, Point)>) -> Self {
        assert!(!waypoints.is_empty(), "need at least one waypoint");
        assert_eq!(
            waypoints[0].0,
            SimTime::ZERO,
            "first waypoint must be at t=0"
        );
        assert!(
            waypoints.windows(2).all(|w| w[0].0 < w[1].0),
            "waypoint times must strictly increase"
        );
        ScriptedMobility {
            waypoints,
            current: 0,
        }
    }

    /// Convenience: hold position `p` forever.
    pub fn hold(p: Point) -> Self {
        Self::new(vec![(SimTime::ZERO, p)])
    }
}

impl Mobility for ScriptedMobility {
    fn position(&self, now: SimTime) -> Point {
        // Find the segment containing `now`; `current` is a hint but the
        // answer must be correct for any query time in the current segment.
        let mut idx = self.current.min(self.waypoints.len() - 1);
        while idx + 1 < self.waypoints.len() && self.waypoints[idx + 1].0 <= now {
            idx += 1;
        }
        let (t0, p0) = self.waypoints[idx];
        match self.waypoints.get(idx + 1) {
            None => p0,
            Some(&(t1, p1)) => {
                let span = t1.since(t0).as_secs_f64();
                let frac = if span <= 0.0 {
                    0.0
                } else {
                    (now.since(t0).as_secs_f64() / span).clamp(0.0, 1.0)
                };
                Point::new(p0.x + (p1.x - p0.x) * frac, p0.y + (p1.y - p0.y) * frac)
            }
        }
    }

    fn next_change(&self) -> Option<SimTime> {
        self.waypoints.get(self.current + 1).map(|&(t, _)| t)
    }

    fn on_change(&mut self, _now: SimTime, _rng: &mut SmallRng, _field: (f64, f64)) {
        if self.current + 1 < self.waypoints.len() {
            self.current += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    const FIELD: (f64, f64) = (300.0, 300.0);

    #[test]
    fn stationary_never_moves_or_changes() {
        let m = Stationary::new(Point::new(10.0, 20.0));
        assert_eq!(m.position(SimTime::from_secs(100)), Point::new(10.0, 20.0));
        assert!(m.next_change().is_none());
    }

    #[test]
    fn random_direction_stays_in_field() {
        let mut rng = rng();
        let mut m = RandomDirection::new(Point::new(150.0, 150.0));
        for _ in 0..200 {
            let now = m.next_change().expect("mobile node always re-plans");
            m.on_change(now, &mut rng, FIELD);
            // Sample the whole next segment.
            let end = m.next_change().expect("segment end");
            for k in 0..=10u64 {
                let span = end.since(now).as_micros();
                let t = now + crate::time::SimDuration::from_micros(span * k / 10);
                let p = m.position(t);
                assert!(
                    (-1e-6..=300.0 + 1e-6).contains(&p.x) && (-1e-6..=300.0 + 1e-6).contains(&p.y),
                    "escaped field at {p:?}"
                );
            }
        }
    }

    #[test]
    fn random_direction_speed_in_range() {
        let mut rng = rng();
        let mut m = RandomDirection::new(Point::new(150.0, 150.0));
        m.on_change(SimTime::ZERO, &mut rng, FIELD);
        for _ in 0..100 {
            let now = m.next_change().expect("end");
            let speed = m.velocity.speed();
            assert!((2.0..=10.0).contains(&speed), "speed {speed} out of range");
            m.on_change(now, &mut rng, FIELD);
        }
    }

    #[test]
    fn random_direction_position_is_continuous_across_change() {
        let mut rng = rng();
        let mut m = RandomDirection::new(Point::new(10.0, 10.0));
        m.on_change(SimTime::ZERO, &mut rng, FIELD);
        for _ in 0..50 {
            let t = m.next_change().expect("end");
            let before = m.position(t);
            m.on_change(t, &mut rng, FIELD);
            let after = m.position(t);
            assert!(before.distance(&after) < 1e-6);
        }
    }

    #[test]
    fn scripted_interpolates_and_holds() {
        let m = ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(10), Point::new(100.0, 0.0)),
            (SimTime::from_secs(20), Point::new(100.0, 50.0)),
        ]);
        assert_eq!(m.position(SimTime::from_secs(5)), Point::new(50.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(10)), Point::new(100.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(15)), Point::new(100.0, 25.0));
        // Holds after the last waypoint.
        assert_eq!(m.position(SimTime::from_secs(99)), Point::new(100.0, 50.0));
    }

    #[test]
    fn scripted_change_schedule_walks_waypoints() {
        let mut m = ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(10), Point::new(100.0, 0.0)),
        ]);
        assert_eq!(m.next_change(), Some(SimTime::from_secs(10)));
        m.on_change(SimTime::from_secs(10), &mut rng(), FIELD);
        assert_eq!(m.next_change(), None);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn scripted_rejects_unsorted_waypoints() {
        ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::ZERO, Point::new(1.0, 0.0)),
        ]);
    }

    #[test]
    fn scripted_position_correct_even_before_on_change_runs() {
        // position() must not depend on on_change having advanced `current`.
        let m = ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(10), Point::new(10.0, 0.0)),
            (SimTime::from_secs(20), Point::new(10.0, 10.0)),
        ]);
        assert_eq!(m.position(SimTime::from_secs(15)), Point::new(10.0, 5.0));
    }
}
