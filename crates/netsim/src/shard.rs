//! Sharded multi-core world: spatial partitioning with conservative
//! lookahead synchronization.
//!
//! [`ShardedWorld`] splits the field into `cores` equal-width vertical
//! bands and runs one full [`World`] (own event queue, timer wheel, MAC
//! state, RNG stream) per band. Shards advance in lockstep windows of one
//! *lookahead* — by default the shortest possible frame air time
//! ([`PhyConfig::tx_duration`] of an empty payload), the soonest any
//! transmission could influence a neighbour. Within a window each shard
//! runs independently; transmissions whose radio disc reaches another
//! shard's node region are exported as [`ForeignFrame`]s and injected
//! into the destination shards at the next window boundary, where they
//! fan out to local receivers under the ordinary range / partition /
//! loss rules.
//!
//! # Determinism contract
//!
//! * `cores = 1` delegates [`run_until`](ShardedWorld::run_until)
//!   directly to the single inner [`World`] — runs are **bit-identical**
//!   to the sequential engine (gated by the golden-trace tests).
//! * `cores > 1` is deterministic per `(seed, cores)` pair: shards never
//!   share mutable state inside a window and the boundary exchange is
//!   single-threaded in shard order, so thread scheduling cannot change
//!   the outcome. Against the sequential engine the runs are
//!   **metric-equivalent** within a documented tolerance, not
//!   bit-identical: cross-border frames are delivered at the window
//!   boundary instead of their exact finish instant, border senders do
//!   not carrier-sense or collide across the border, and each shard
//!   draws from its own RNG stream.
//!
//! Every shard world is seeded `seed + shard_index` (wrapping), so shard
//! 0 of a single-shard run reproduces the sequential RNG stream exactly.
//!
//! [`PhyConfig::tx_duration`]: crate::radio::PhyConfig::tx_duration
//! [`ForeignFrame`]: crate::world::ForeignFrame

use crate::fault::{FaultAction, FaultPlan};
use crate::geometry::{Point, Rect};
use crate::mobility::Mobility;
use crate::node::{NetStack, NodeId};
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::world::{StackFactory, World, WorldConfig};
use std::sync::{Arc, Mutex};

/// Speed bound (m/s) used to widen export regions for intra-window
/// mobility. The stock models top out at 10 m/s; doubling that keeps
/// scripted traces with faster legs conservative too.
const MOBILITY_SLACK_MPS: f64 = 20.0;

/// Fixed extra margin (metres) added to export regions so boundary
/// contact never rounds a crossing away.
const MOBILITY_SLACK_FLOOR_M: f64 = 1.0;

/// A spatially sharded simulation world.
///
/// Construct with a [`WorldConfig`] whose
/// [`ExecProfile::cores`](crate::exec::ExecProfile) selects the shard
/// count, add nodes exactly as with [`World`], and drive with
/// [`run_until`](Self::run_until). Node ids are global: every shard holds
/// a slot for every node (shadow slots for foreign nodes), so queries
/// like [`position_of`](Self::position_of) and downcasts like
/// [`stack`](Self::stack) take the same ids the sequential engine would
/// have assigned.
pub struct ShardedWorld {
    shards: Vec<World>,
    /// Owning shard per node, indexed by `NodeId.0`.
    owner: Vec<u32>,
    band_width: f64,
    lookahead: SimDuration,
    /// Export-region expansion covering intra-window mobility.
    slack: f64,
    range: f64,
    now: SimTime,
    sync_windows: u64,
    parallel: bool,
}

impl ShardedWorld {
    /// Creates an empty sharded world with `cfg.exec.cores` shards.
    ///
    /// The lookahead window is `cfg.exec.lookahead` when set, otherwise
    /// the minimum frame air time (empty payload) — the soonest a
    /// transmission can cross a border.
    pub fn new(cfg: WorldConfig) -> Self {
        let cores = cfg.exec.cores.max(1);
        let lookahead = cfg
            .exec
            .lookahead
            .unwrap_or_else(|| cfg.phy.tx_duration(0))
            .max(SimDuration::from_micros(1));
        let slack = MOBILITY_SLACK_MPS * lookahead.as_secs_f64() + MOBILITY_SLACK_FLOOR_M;
        let parallel = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        let mut shards = Vec::with_capacity(cores);
        for i in 0..cores {
            let mut shard_cfg = cfg.clone();
            shard_cfg.exec.cores = 1;
            shard_cfg.seed = cfg.seed.wrapping_add(i as u64);
            shards.push(World::new(shard_cfg));
        }
        ShardedWorld {
            shards,
            owner: Vec::new(),
            band_width: cfg.field.0 / cores as f64,
            lookahead,
            slack,
            range: cfg.range,
            now: SimTime::ZERO,
            sync_windows: 0,
            parallel,
        }
    }

    /// The shard owning a point: equal-width vertical bands along x.
    fn band_of(&self, p: Point) -> usize {
        let n = self.shards.len();
        if n == 1 || self.band_width <= 0.0 {
            return 0;
        }
        ((p.x.max(0.0) / self.band_width) as usize).min(n - 1)
    }

    /// Adds a node, returning its globally aligned id. The shard owning
    /// the node's *starting* position gets the real node; every other
    /// shard gets a shadow slot so ids stay aligned. Ownership is fixed
    /// for the run — a node that wanders across the band line keeps its
    /// home shard (its border transmissions cross as foreign frames).
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started.
    pub fn add_node(&mut self, mobility: Box<dyn Mobility>, stack: Box<dyn NetStack>) -> NodeId {
        let pos = mobility.position(SimTime::ZERO);
        let owner = self.band_of(pos);
        let mut real = Some((mobility, stack));
        let mut id = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let assigned = if i == owner {
                let (mobility, stack) = real.take().expect("one owner");
                shard.add_node(mobility, stack)
            } else {
                shard.add_shadow_node(pos)
            };
            match id {
                None => id = Some(assigned),
                Some(prev) => assert_eq!(prev, assigned, "shard node ids diverged"),
            }
        }
        self.owner.push(owner as u32);
        id.expect("at least one shard")
    }

    /// Attaches a fault script. Node-scoped actions (crash, restart,
    /// join, leave) go to the node's owning shard only; link-scoped
    /// actions (cut, heal) are broadcast to every shard so both local
    /// deliveries and foreign-frame injections honour the partition.
    /// Merged [`Stats`] take the max of `partitions_cut` /
    /// `partitions_healed` across shards, keeping the run-wide counts
    /// identical to the sequential engine's.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<(SimTime, FaultAction)>> = vec![Vec::new(); n];
        for (t, action) in plan.actions {
            match action {
                FaultAction::Crash(node)
                | FaultAction::Restart(node)
                | FaultAction::Join(node)
                | FaultAction::Leave(node) => {
                    let owner = self.owner[node.0 as usize] as usize;
                    per_shard[owner].push((t, action));
                }
                FaultAction::Cut { .. } | FaultAction::Heal { .. } => {
                    for actions in &mut per_shard {
                        actions.push((t, action.clone()));
                    }
                }
            }
        }
        for (shard, actions) in self.shards.iter_mut().zip(per_shard) {
            shard.set_fault_plan(FaultPlan { actions });
        }
    }

    /// Installs the restart stack factory, shared across shards behind a
    /// mutex (restarts fire on one shard at a time, so the lock is
    /// uncontended in practice).
    pub fn set_stack_factory(&mut self, factory: StackFactory) {
        let shared = Arc::new(Mutex::new(factory));
        for shard in &mut self.shards {
            let f = Arc::clone(&shared);
            shard.set_stack_factory(Box::new(move |node, wreck| {
                (*f.lock().expect("stack factory lock"))(node, wreck)
            }));
        }
    }

    /// Runs one synchronization window: refresh export regions from the
    /// shards' current node bounds, advance every shard to `target`
    /// (in parallel when the host has more than one core), then exchange
    /// border-crossing frames in shard order.
    fn step_window(&mut self, deadline: SimTime) {
        let target = (self.now + self.lookahead).min(deadline);
        let n = self.shards.len();
        let bounds: Vec<Option<Rect>> = self.shards.iter().map(|s| s.local_node_bounds()).collect();
        for i in 0..n {
            let regions = (0..n)
                .filter(|&j| j != i)
                .filter_map(|j| bounds[j].map(|r| r.expanded(self.slack)))
                .collect();
            self.shards[i].set_export_regions(regions);
        }
        if self.parallel {
            std::thread::scope(|scope| {
                for shard in &mut self.shards {
                    scope.spawn(move || shard.run_until(target));
                }
            });
        } else {
            for shard in &mut self.shards {
                shard.run_until(target);
            }
        }
        for i in 0..n {
            let outbox = self.shards[i].take_border_outbox();
            for frame in outbox {
                for (j, bound) in bounds.iter().enumerate().take(n) {
                    if j == i {
                        continue;
                    }
                    let Some(rect) = bound else { continue };
                    if rect
                        .expanded(self.slack)
                        .intersects_disc(frame.src_pos, self.range)
                    {
                        self.shards[j].inject_foreign(target, frame.clone());
                    }
                }
            }
        }
        self.sync_windows += 1;
        self.now = target;
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    ///
    /// With one shard this delegates directly to [`World::run_until`]
    /// and is bit-identical to the sequential engine. With more, the
    /// window loop runs and a final flush dispatches frames injected at
    /// the last boundary.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.shards.len() == 1 {
            self.shards[0].run_until(deadline);
            self.now = self.now.max(deadline);
            return;
        }
        while self.now < deadline {
            self.step_window(deadline);
        }
        // Frames exchanged at the final boundary were injected at
        // `deadline` after the shards had already run past it; one more
        // (inclusive) pass delivers them. Their replies, if any, are
        // scheduled strictly later and stay queued for the next call.
        for shard in &mut self.shards {
            shard.run_until(deadline);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until `pred` returns true or until `deadline`, consulting the
    /// predicate at *window boundaries* (every `lookahead`). Returns
    /// `true` when the predicate fired. Coarser than
    /// [`World::run_until_cond`]'s instant boundaries — completion times
    /// observed through this method quantize to the lookahead.
    pub fn run_until_cond<F: FnMut(&ShardedWorld) -> bool>(
        &mut self,
        deadline: SimTime,
        mut pred: F,
    ) -> bool {
        if pred(self) {
            return true;
        }
        while self.now < deadline {
            self.step_window(deadline);
            if pred(self) {
                return true;
            }
        }
        for shard in &mut self.shards {
            shard.run_until(deadline);
        }
        pred(self)
    }

    /// Current simulation time (the last window boundary reached).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes (global — identical in every shard).
    pub fn node_count(&self) -> usize {
        self.shards.first().map_or(0, |s| s.node_count())
    }

    /// Number of shards.
    pub fn cores(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead window.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The configured radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Merged run statistics: per-shard counters folded with
    /// [`Stats::merge`], stamped with the shard count and (for
    /// multi-shard runs) the lookahead and window count.
    pub fn stats(&self) -> Stats {
        let mut merged = Stats::new(0);
        for shard in &self.shards {
            merged.merge(shard.stats());
        }
        merged.shards = self.shards.len() as u64;
        if self.shards.len() > 1 {
            merged.lookahead_micros = self.lookahead.as_micros();
            merged.sync_windows = self.sync_windows;
        }
        merged
    }

    /// Whether `node`'s stack is currently live, per its owning shard.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.owner_shard(node).node_alive(node)
    }

    /// Position of `node` at its owning shard's current time.
    pub fn position_of(&self, node: NodeId) -> Point {
        self.owner_shard(node).position_of(node)
    }

    /// Immutable downcast access to a node's stack (owning shard).
    pub fn stack<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.owner_shard(node).stack(node)
    }

    /// Mutable downcast access to a node's stack (owning shard).
    pub fn stack_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        let owner = self.owner[node.0 as usize] as usize;
        self.shards[owner].stack_mut(node)
    }

    /// Changes the Bernoulli frame-loss rate on every shard from now on.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        for shard in &mut self.shards {
            shard.set_loss_rate(rate);
        }
    }

    /// Sum of live protocol state bytes over all shards (shadow slots
    /// hold no stack, so each node counts exactly once).
    pub fn live_state_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.live_state_bytes()).sum()
    }

    /// Timer slots ever allocated, summed over the shards' wheels.
    pub fn timer_slots_allocated(&self) -> usize {
        self.shards.iter().map(|s| s.timer_slots_allocated()).sum()
    }

    fn owner_shard(&self, node: NodeId) -> &World {
        &self.shards[self.owner[node.0 as usize] as usize]
    }
}

impl std::fmt::Debug for ShardedWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("shards", &self.shards.len())
            .field("nodes", &self.node_count())
            .field("lookahead", &self.lookahead)
            .field("now", &self.now)
            .field("sync_windows", &self.sync_windows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecProfile;
    use crate::mobility::Stationary;
    use crate::node::NodeCtx;
    use crate::radio::{Frame, FrameKind};
    use std::any::Any;

    const BEACON: FrameKind = FrameKind(7);

    /// Broadcasts a 32-byte beacon every 100 ms and counts what it hears.
    #[derive(Debug, Default)]
    struct Beacon {
        sent: u64,
        heard: u64,
    }

    impl NetStack for Beacon {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }

        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: &Frame) {
            if frame.kind == BEACON {
                self.heard += 1;
            }
        }

        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            ctx.send_frame(vec![0u8; 32], BEACON, 0, SimDuration::ZERO);
            self.sent += 1;
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cfg(seed: u64, cores: usize) -> WorldConfig {
        WorldConfig {
            field: (300.0, 100.0),
            range: 60.0,
            seed,
            exec: ExecProfile::default().with_cores(cores),
            ..WorldConfig::default()
        }
    }

    /// A chain spanning both halves of the 300 m field, 25 m spacing.
    fn chain_positions() -> Vec<Point> {
        (0..12)
            .map(|i| Point::new(12.5 + 25.0 * i as f64, 50.0))
            .collect()
    }

    #[test]
    fn single_shard_is_bit_identical_to_sequential_world() {
        let mut seq = World::new(cfg(42, 1));
        for p in chain_positions() {
            seq.add_node(Box::new(Stationary::new(p)), Box::<Beacon>::default());
        }
        seq.run_until(SimTime::from_secs(3));

        let mut sharded = ShardedWorld::new(cfg(42, 1));
        let mut ids = Vec::new();
        for p in chain_positions() {
            ids.push(sharded.add_node(Box::new(Stationary::new(p)), Box::<Beacon>::default()));
        }
        sharded.run_until(SimTime::from_secs(3));

        let a = seq.stats();
        let b = sharded.stats();
        assert_eq!(a.tx_frames, b.tx_frames);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.collision_drops, b.collision_drops);
        assert_eq!(a.channel_losses, b.channel_losses);
        assert_eq!(a.mac_deferrals, b.mac_deferrals);
        assert_eq!(a.event_dispatches, b.event_dispatches);
        assert_eq!(a.tx_per_node, b.tx_per_node);
        assert_eq!(a.delivered_by_kind, b.delivered_by_kind);
        assert_eq!(b.shards, 1);
        assert_eq!(b.border_tx_exported, 0);
        for id in ids {
            let s = seq.stack::<Beacon>(id).expect("seq stack");
            let h = sharded.stack::<Beacon>(id).expect("sharded stack");
            assert_eq!((s.sent, s.heard), (h.sent, h.heard), "node {id:?}");
        }
    }

    #[test]
    fn two_shards_exchange_border_traffic() {
        let mut w = ShardedWorld::new(cfg(7, 2));
        // One node per band, 40 m apart across the x=150 band line.
        let left = w.add_node(
            Box::new(Stationary::new(Point::new(130.0, 50.0))),
            Box::<Beacon>::default(),
        );
        let right = w.add_node(
            Box::new(Stationary::new(Point::new(170.0, 50.0))),
            Box::<Beacon>::default(),
        );
        assert_eq!(w.node_count(), 2);
        w.run_until(SimTime::from_secs(2));
        let stats = w.stats();
        assert_eq!(stats.shards, 2);
        assert!(stats.sync_windows > 0, "no synchronization windows ran");
        assert!(stats.lookahead_micros > 0);
        assert!(
            stats.border_tx_exported > 0,
            "border transmissions never exported"
        );
        assert!(
            stats.border_rx_injected > 0,
            "border transmissions never injected"
        );
        // ~20 beacons each at 10% loss: both sides must hear the other.
        let l = w.stack::<Beacon>(left).expect("left stack");
        let r = w.stack::<Beacon>(right).expect("right stack");
        assert!(l.sent >= 19 && r.sent >= 19);
        assert!(l.heard > 0, "left never heard across the border");
        assert!(r.heard > 0, "right never heard across the border");
    }

    #[test]
    fn sharded_runs_are_deterministic_per_seed_and_cores() {
        let run = |seed: u64| {
            let mut w = ShardedWorld::new(cfg(seed, 4));
            for p in chain_positions() {
                w.add_node(Box::new(Stationary::new(p)), Box::<Beacon>::default());
            }
            w.run_until(SimTime::from_secs(2));
            let s = w.stats();
            (
                s.tx_frames,
                s.delivered,
                s.border_tx_exported,
                s.border_rx_injected,
                s.tx_per_node,
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, 0);
    }

    #[test]
    fn fault_actions_route_to_owning_shards() {
        let mut w = ShardedWorld::new(cfg(11, 2));
        let left = w.add_node(
            Box::new(Stationary::new(Point::new(130.0, 50.0))),
            Box::<Beacon>::default(),
        );
        let right = w.add_node(
            Box::new(Stationary::new(Point::new(170.0, 50.0))),
            Box::<Beacon>::default(),
        );
        w.set_fault_plan(
            FaultPlan::new()
                .crash_at(SimTime::from_micros(500 * 1000), right)
                .restart_at(SimTime::from_micros(900 * 1000), right)
                .partition(
                    SimTime::from_micros(1200 * 1000),
                    SimTime::from_micros(1600 * 1000),
                    [left],
                    [right],
                ),
        );
        w.set_stack_factory(Box::new(|_, _| Box::<Beacon>::default()));
        w.run_until(SimTime::from_micros(700 * 1000));
        assert!(!w.node_alive(right), "crash did not reach the owning shard");
        assert!(w.node_alive(left));
        w.run_until(SimTime::from_secs(2));
        assert!(
            w.node_alive(right),
            "restart did not reach the owning shard"
        );
        let stats = w.stats();
        assert_eq!(stats.node_crashes, 1);
        assert_eq!(stats.node_restarts, 1);
        // Cut/Heal are broadcast to both shards; merged counts must not
        // double.
        assert_eq!(stats.partitions_cut, 1);
        assert_eq!(stats.partitions_healed, 1);
        assert!(
            stats.partition_drops > 0,
            "cross-border link cut never dropped a delivery"
        );
    }

    #[test]
    fn run_until_cond_observes_state_at_window_boundaries() {
        let mut w = ShardedWorld::new(cfg(3, 2));
        for p in chain_positions() {
            w.add_node(Box::new(Stationary::new(p)), Box::<Beacon>::default());
        }
        let fired = w.run_until_cond(SimTime::from_secs(5), |w| w.stats().delivered >= 50);
        assert!(fired, "predicate never fired");
        assert!(w.stats().delivered >= 50);
        assert!(w.now() < SimTime::from_secs(5));
    }
}
