//! Node identity, the protocol-stack trait, and the callback context.
//!
//! Protocol stacks (NDN forwarders, DAPES peers, Bithoc/Ekta peers) implement
//! [`NetStack`]. Callbacks receive a [`NodeCtx`] that *buffers* commands —
//! frame transmissions, timer arms/cancels — which the world applies after
//! the callback returns, so stacks never re-enter the simulator.

use crate::payload::Payload;
use crate::radio::{Frame, FrameKind};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use std::any::Any;
use std::fmt;

/// Identifies a node in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to a pending timer, usable to cancel it.
///
/// The handle packs a slot index and a generation tag: the world stores
/// timers in a slab of reusable slots, and the generation distinguishes a
/// live timer from a later tenant of the same slot, so cancelling an
/// already-fired handle is a guaranteed no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(pub(crate) u64);

impl TimerHandle {
    fn pack(slot: u32, generation: u32) -> Self {
        TimerHandle(((generation as u64) << 32) | slot as u64)
    }

    fn unpack(self) -> (usize, u32) {
        (self.0 as u32 as usize, (self.0 >> 32) as u32)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TimerSlot {
    generation: u32,
    armed: bool,
    cancelled: bool,
}

/// Generation-tagged timer slots with a free list.
///
/// This replaces the old `cancelled_timers: HashSet<u64>` scheme, which had
/// two costs: cancellation was a hash insert probed again on every timer
/// pop, and cancelling an already-fired timer left its id in the set for
/// the rest of the run (an unbounded leak in long simulations). Here a
/// cancel is a bounds-checked array write, and a slot is returned to the
/// free list the moment its event pops — fired, cancelled, or both — so
/// live slots are bounded by the number of timers actually pending.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    slots: Vec<TimerSlot>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Claims a slot for a newly armed timer.
    pub(crate) fn arm(&mut self) -> TimerHandle {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(TimerSlot::default());
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        slot.armed = true;
        slot.cancelled = false;
        TimerHandle::pack(idx, slot.generation)
    }

    /// Marks a timer cancelled. Stale handles (already fired, or from a
    /// previous tenant of the slot) are ignored.
    pub(crate) fn cancel(&mut self, handle: TimerHandle) {
        let (idx, generation) = handle.unpack();
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.armed && slot.generation == generation {
                slot.cancelled = true;
            }
        }
    }

    /// Retires a timer when its event pops, freeing the slot for reuse.
    /// Returns whether the timer callback should run (i.e. not cancelled).
    pub(crate) fn fire(&mut self, handle: TimerHandle) -> bool {
        let (idx, generation) = handle.unpack();
        match self.slots.get_mut(idx) {
            Some(slot) if slot.armed && slot.generation == generation => {
                let live = !slot.cancelled;
                slot.armed = false;
                slot.cancelled = false;
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(idx as u32);
                live
            }
            _ => false,
        }
    }

    /// Timers currently armed (slots not on the free list).
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Slots ever allocated — bounded by the peak number of concurrently
    /// armed timers, not by the total armed over the run.
    pub(crate) fn allocated(&self) -> usize {
        self.slots.len()
    }
}

/// Outcome of a frame transmission, reported to the sender.
///
/// `collided` is true when another transmission overlapped in time with ours
/// and its sender was within our radio range — i.e. we could have heard the
/// contention ourselves, which is how DAPES's PEBA detects bitmap collisions
/// (paper §IV-F).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// The kind tag the stack attached to the frame.
    pub kind: FrameKind,
    /// Token the stack attached when sending, for correlating outcomes.
    pub token: u64,
    /// Whether the transmission overlapped another audible transmission.
    pub collided: bool,
}

/// A protocol stack living on one node.
///
/// All methods take `&mut self` plus a command-buffering [`NodeCtx`];
/// callbacks never nest, and each stack is only ever driven by one event
/// loop at a time. The `Send` bound exists for the sharded engine, which
/// moves each shard's world (stacks included) onto its own thread between
/// synchronization barriers — stacks need no internal locking.
pub trait NetStack: Send {
    /// Invoked once at simulation start.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);

    /// A frame was received (wireless is broadcast: every frame any in-range
    /// node transmits arrives here, which is also how overhearing works).
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame);

    /// A timer armed through [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64);

    /// One of this node's transmissions finished (with collision feedback).
    fn on_tx_done(&mut self, _ctx: &mut NodeCtx<'_>, _outcome: TxOutcome) {}

    /// Bytes of live protocol state, the paper's Table I memory-overhead
    /// proxy. Stacks should report their CS/PIT/knowledge-store footprint.
    fn live_state_bytes(&self) -> usize {
        0
    }

    /// Downcast support for extracting metrics after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A buffered command produced during a stack callback.
#[derive(Debug)]
pub(crate) enum Command {
    Send {
        payload: Payload,
        kind: FrameKind,
        token: u64,
        delay: SimDuration,
    },
    SetTimer {
        handle: TimerHandle,
        at: SimTime,
        token: u64,
    },
    CancelTimer {
        handle: TimerHandle,
    },
}

/// The context handed to every [`NetStack`] callback.
pub struct NodeCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node this callback runs on.
    pub node: NodeId,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) commands: Vec<Command>,
    pub(crate) timers: &'a mut TimerSlab,
    pub(crate) api_calls: &'a mut u64,
    pub(crate) state_inserts: &'a mut u64,
}

impl<'a> NodeCtx<'a> {
    /// Queues a broadcast frame for transmission after `delay`.
    ///
    /// The delay models protocol-level jitter (e.g. DAPES's 20 ms random
    /// transmission window); the MAC adds carrier-sense deferral on top.
    /// `token` is echoed in [`TxOutcome`] so stacks can tell which of their
    /// transmissions collided.
    ///
    /// Accepts anything convertible to a shared [`Payload`] — a `Vec<u8>`
    /// for freshly built frames, or a `Payload` clone (e.g. an upper-layer
    /// wire cache) for a zero-copy send.
    pub fn send_frame(
        &mut self,
        payload: impl Into<Payload>,
        kind: FrameKind,
        token: u64,
        delay: SimDuration,
    ) {
        *self.api_calls += 1;
        self.commands.push(Command::Send {
            payload: payload.into(),
            kind,
            token,
            delay,
        });
    }

    /// Arms a timer to fire at `self.now + delay`, delivering `token` to
    /// [`NetStack::on_timer`]. Returns a handle usable with
    /// [`NodeCtx::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        *self.api_calls += 1;
        let handle = self.timers.arm();
        let at = self.now + delay;
        self.commands.push(Command::SetTimer { handle, at, token });
        handle
    }

    /// Cancels a previously armed timer. Cancelling an already-fired timer
    /// is a harmless no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        *self.api_calls += 1;
        self.commands.push(Command::CancelTimer { handle });
    }

    /// Deterministic randomness for protocol jitter.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Records `n` state-table insertions (the Table I page-fault proxy).
    pub fn note_state_inserts(&mut self, n: u64) {
        *self.state_inserts += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_buffers_commands_and_counts_api_calls() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut timers = TimerSlab::default();
        let mut api = 0u64;
        let mut ins = 0u64;
        let mut ctx = NodeCtx {
            now: SimTime::from_secs(1),
            node: NodeId(3),
            rng: &mut rng,
            commands: Vec::new(),
            timers: &mut timers,
            api_calls: &mut api,
            state_inserts: &mut ins,
        };
        ctx.send_frame(vec![1, 2, 3], FrameKind(7), 0, SimDuration::ZERO);
        let h = ctx.set_timer(SimDuration::from_millis(5), 42);
        ctx.cancel_timer(h);
        ctx.note_state_inserts(2);
        let commands = ctx.commands;
        assert_eq!(commands.len(), 3);
        assert_eq!(api, 3);
        assert_eq!(ins, 2);
        match &commands[1] {
            Command::SetTimer { at, token, .. } => {
                assert_eq!(*at, SimTime::from_micros(1_005_000));
                assert_eq!(*token, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timer_handles_are_unique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut timers = TimerSlab::default();
        let mut api = 0u64;
        let mut ins = 0u64;
        let mut ctx = NodeCtx {
            now: SimTime::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            commands: Vec::new(),
            timers: &mut timers,
            api_calls: &mut api,
            state_inserts: &mut ins,
        };
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn slab_recycles_slots_and_distinguishes_generations() {
        let mut slab = TimerSlab::default();
        let a = slab.arm();
        assert_eq!(slab.live(), 1);
        assert!(slab.fire(a), "uncancelled timer fires");
        assert_eq!(slab.live(), 0);
        // The slot is reused with a bumped generation: the old handle is
        // stale for both cancel and fire.
        let b = slab.arm();
        assert_eq!(slab.allocated(), 1, "slot must be reused");
        assert_ne!(a, b);
        slab.cancel(a); // stale: must not affect the new tenant
        assert!(slab.fire(b), "new tenant unaffected by stale cancel");
        assert!(!slab.fire(b), "double fire is a no-op");
    }

    #[test]
    fn slab_cancel_suppresses_fire_and_frees_slot() {
        let mut slab = TimerSlab::default();
        let h = slab.arm();
        slab.cancel(h);
        assert_eq!(slab.live(), 1, "cancelled slot freed only when it pops");
        assert!(!slab.fire(h), "cancelled timer must not fire");
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn slab_does_not_leak_under_cancel_churn() {
        // The regression the slab redesign fixes: the old HashSet kept every
        // cancelled-after-fire id forever. Armed/cancelled/fired cycles must
        // leave allocation bounded by peak concurrency, not total volume.
        let mut slab = TimerSlab::default();
        for round in 0..10_000u64 {
            let a = slab.arm();
            let b = slab.arm();
            slab.cancel(b);
            assert!(slab.fire(a));
            assert!(!slab.fire(b));
            if round % 2 == 0 {
                slab.cancel(a); // cancel after fire: harmless no-op
            }
            assert_eq!(slab.live(), 0, "round {round} leaked a slot");
        }
        assert!(
            slab.allocated() <= 2,
            "allocation grew past peak concurrency: {}",
            slab.allocated()
        );
    }
}
