//! Uniform spatial grid for O(k) neighbor queries.
//!
//! The simulator's two geometric hot paths — per-transmission receiver
//! selection and [`crate::world::World::neighbors_of`] — were O(N) scans
//! over every node. The grid buckets nodes into square cells of side equal
//! to the radio range, so a range query touches only the cells overlapping
//! the query disk's bounding square and inspects the O(k) nodes registered
//! there.
//!
//! # Moving nodes without per-tick updates
//!
//! Positions are *analytic*: a node's position is a function of time within
//! its current mobility segment, and the simulator never ticks idle nodes.
//! Rather than re-bucketing nodes continuously, each node is registered
//! over the axis-aligned bounding box of its current segment (start and end
//! positions). All three mobility models move each coordinate monotonically
//! within a segment, so the node's exact position at any instant of the
//! segment stays inside that box — the grid therefore returns a *superset*
//! of the in-range nodes, and callers keep the exact distance check. Nodes
//! are re-registered only at mobility-change events, which the event loop
//! already dispatches.

use crate::geometry::Point;
use crate::node::NodeId;

/// Cells covered by one node's current movement segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CellSpan {
    c0: u32,
    r0: u32,
    c1: u32,
    r1: u32,
}

/// A uniform grid over the field, bucketing nodes by movement-segment
/// bounding box.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    cell: f64,
    cols: u32,
    rows: u32,
    cells: Vec<Vec<NodeId>>,
    spans: Vec<Option<CellSpan>>,
}

impl SpatialGrid {
    /// Upper bound on cells per axis. A cell may be *larger* than the
    /// requested size (queries just inspect a coarser superset), so tiny or
    /// zero radio ranges clamp to a bounded grid instead of exploding the
    /// cell count.
    const MAX_CELLS_PER_AXIS: f64 = 256.0;

    /// Creates a grid over a `field` (metres) with square cells of side
    /// `cell` (typically the radio range).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive.
    pub fn new(field: (f64, f64), cell: f64) -> Self {
        assert!(cell > 0.0, "grid cell size must be positive: {cell}");
        let cell = cell
            .max(field.0 / Self::MAX_CELLS_PER_AXIS)
            .max(field.1 / Self::MAX_CELLS_PER_AXIS);
        let cols = ((field.0 / cell).ceil() as u32).max(1);
        let rows = ((field.1 / cell).ceil() as u32).max(1);
        SpatialGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); (cols as usize) * (rows as usize)],
            spans: Vec::new(),
        }
    }

    fn col_of(&self, x: f64) -> u32 {
        ((x / self.cell).floor().max(0.0) as u32).min(self.cols - 1)
    }

    fn row_of(&self, y: f64) -> u32 {
        ((y / self.cell).floor().max(0.0) as u32).min(self.rows - 1)
    }

    fn span_for(&self, a: Point, b: Point) -> CellSpan {
        CellSpan {
            c0: self.col_of(a.x.min(b.x)),
            r0: self.row_of(a.y.min(b.y)),
            c1: self.col_of(a.x.max(b.x)),
            r1: self.row_of(a.y.max(b.y)),
        }
    }

    fn cell_index(&self, c: u32, r: u32) -> usize {
        (r * self.cols + c) as usize
    }

    /// Registers `node` as covering the segment from `a` to `b`. Nodes must
    /// be inserted in `NodeId` order starting at 0.
    pub fn insert(&mut self, node: NodeId, a: Point, b: Point) {
        assert_eq!(
            node.0 as usize,
            self.spans.len(),
            "grid nodes must be inserted in id order"
        );
        let span = self.span_for(a, b);
        self.spans.push(Some(span));
        self.add_to_cells(node, span);
    }

    /// Registers `node` as absent: it holds its id slot (preserving the
    /// id-order invariant) but occupies no cells and never appears in
    /// candidate scans. The sharded engine uses this for shadow slots of
    /// nodes owned by another shard.
    pub fn insert_absent(&mut self, node: NodeId) {
        assert_eq!(
            node.0 as usize,
            self.spans.len(),
            "grid nodes must be inserted in id order"
        );
        self.spans.push(None);
    }

    /// Re-registers `node` for a new movement segment from `a` to `b`.
    pub fn update(&mut self, node: NodeId, a: Point, b: Point) {
        let span = self.span_for(a, b);
        let old = self.spans[node.0 as usize];
        if old == Some(span) {
            return;
        }
        if let Some(old) = old {
            self.remove_from_cells(node, old);
        }
        self.spans[node.0 as usize] = Some(span);
        self.add_to_cells(node, span);
    }

    fn add_to_cells(&mut self, node: NodeId, span: CellSpan) {
        for r in span.r0..=span.r1 {
            for c in span.c0..=span.c1 {
                let idx = self.cell_index(c, r);
                self.cells[idx].push(node);
            }
        }
    }

    fn remove_from_cells(&mut self, node: NodeId, span: CellSpan) {
        for r in span.r0..=span.r1 {
            for c in span.c0..=span.c1 {
                let idx = self.cell_index(c, r);
                if let Some(pos) = self.cells[idx].iter().position(|&n| n == node) {
                    self.cells[idx].swap_remove(pos);
                }
            }
        }
    }

    /// Collects into `out` a sorted, deduplicated superset of the nodes
    /// within `range` of `center`: every node whose exact position can be
    /// inside the disk is included; callers apply the exact distance check.
    /// The output order is ascending `NodeId`, which keeps delivery
    /// iteration (and therefore per-receiver RNG draws) identical to a
    /// brute-force scan.
    pub fn candidates_into(&self, center: Point, range: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let c0 = self.col_of(center.x - range);
        let c1 = self.col_of(center.x + range);
        let r0 = self.row_of(center.y - range);
        let r1 = self.row_of(center.y + range);
        for r in r0..=r1 {
            for c in c0..=c1 {
                out.extend_from_slice(&self.cells[self.cell_index(c, r)]);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the grid holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SpatialGrid {
        SpatialGrid::new((300.0, 300.0), 60.0)
    }

    #[test]
    fn query_finds_point_nodes_in_and_out_of_range() {
        let mut g = grid();
        g.insert(NodeId(0), Point::new(10.0, 10.0), Point::new(10.0, 10.0));
        g.insert(NodeId(1), Point::new(50.0, 10.0), Point::new(50.0, 10.0));
        g.insert(
            NodeId(2),
            Point::new(290.0, 290.0),
            Point::new(290.0, 290.0),
        );
        let mut out = Vec::new();
        g.candidates_into(Point::new(12.0, 12.0), 60.0, &mut out);
        assert!(out.contains(&NodeId(0)));
        assert!(out.contains(&NodeId(1)));
        assert!(!out.contains(&NodeId(2)), "far corner is never a candidate");
    }

    #[test]
    fn candidates_are_sorted_and_unique() {
        let mut g = grid();
        // A segment spanning several cells registers in all of them.
        g.insert(NodeId(0), Point::new(10.0, 10.0), Point::new(200.0, 10.0));
        g.insert(NodeId(1), Point::new(70.0, 10.0), Point::new(70.0, 10.0));
        let mut out = Vec::new();
        g.candidates_into(Point::new(100.0, 10.0), 60.0, &mut out);
        assert_eq!(out, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn update_moves_node_between_cells() {
        let mut g = grid();
        g.insert(NodeId(0), Point::new(10.0, 10.0), Point::new(10.0, 10.0));
        g.update(
            NodeId(0),
            Point::new(290.0, 290.0),
            Point::new(290.0, 290.0),
        );
        let mut out = Vec::new();
        g.candidates_into(Point::new(10.0, 10.0), 60.0, &mut out);
        assert!(out.is_empty(), "node left its old cell");
        g.candidates_into(Point::new(280.0, 280.0), 60.0, &mut out);
        assert_eq!(out, vec![NodeId(0)]);
    }

    #[test]
    fn out_of_field_positions_clamp_to_edge_cells() {
        let mut g = grid();
        g.insert(NodeId(0), Point::new(-5.0, 400.0), Point::new(-5.0, 400.0));
        let mut out = Vec::new();
        g.candidates_into(Point::new(0.0, 299.0), 60.0, &mut out);
        assert_eq!(out, vec![NodeId(0)]);
    }

    #[test]
    fn query_near_field_edges_does_not_panic() {
        let mut g = grid();
        g.insert(NodeId(0), Point::new(0.0, 0.0), Point::new(0.0, 0.0));
        let mut out = Vec::new();
        g.candidates_into(Point::new(0.0, 0.0), 500.0, &mut out);
        assert_eq!(out, vec![NodeId(0)]);
    }

    #[test]
    fn range_larger_than_field_gives_single_cell_grid() {
        let g = SpatialGrid::new((50.0, 50.0), 100.0);
        assert_eq!(g.cols, 1);
        assert_eq!(g.rows, 1);
    }

    #[test]
    fn tiny_cell_clamps_to_bounded_grid() {
        // A near-zero radio range (radios effectively silenced) must not
        // explode the cell count or overflow the cell-index arithmetic.
        let g = SpatialGrid::new((520.0, 520.0), 1e-6);
        assert!(g.cols as f64 <= SpatialGrid::MAX_CELLS_PER_AXIS);
        assert!(g.rows as f64 <= SpatialGrid::MAX_CELLS_PER_AXIS);
        let mut g = g;
        g.insert(NodeId(0), Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        let mut out = Vec::new();
        g.candidates_into(Point::new(1.0, 1.0), 1e-6, &mut out);
        assert_eq!(out, vec![NodeId(0)]);
    }

    #[test]
    fn equivalence_with_brute_force_on_random_layout() {
        // Seedless determinism: a simple LCG placement.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = SpatialGrid::new((300.0, 300.0), 60.0);
        let mut pts = Vec::new();
        for i in 0..200u32 {
            let p = Point::new(next() * 300.0, next() * 300.0);
            g.insert(NodeId(i), p, p);
            pts.push(p);
        }
        let mut out = Vec::new();
        for q in 0..50 {
            let center = pts[q * 4];
            g.candidates_into(center, 60.0, &mut out);
            let grid_hits: Vec<NodeId> = out
                .iter()
                .copied()
                .filter(|n| pts[n.0 as usize].within(&center, 60.0))
                .collect();
            let brute: Vec<NodeId> = (0..200u32)
                .map(NodeId)
                .filter(|n| pts[n.0 as usize].within(&center, 60.0))
                .collect();
            assert_eq!(grid_hits, brute, "query {q} diverged");
        }
    }
}
