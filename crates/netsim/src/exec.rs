//! The unified execution-strategy profile.
//!
//! Execution knobs used to be scattered across three crates: `QueueMode`,
//! `DeliveryMode` and `DeliveryEvents` on [`WorldConfig`], `lazy_peek` and
//! `relay_patch` on the DAPES peer config, and `legacy_tables` on the NDN
//! forwarder config. [`ExecProfile`] gathers all of them — plus the sharded
//! engine's `cores` and `lookahead` — into one builder-style value that every
//! layer consumes: [`WorldConfig`], the DAPES `DapesConfig`, the testutil
//! `ScenarioBuilder`/`MatrixParams`, and the bench `SchedMode`.
//!
//! Two presets span the optimization space:
//!
//! * [`ExecProfile::baseline`] — the recorded pre-refactor cost model: binary
//!   heap, eager full decode, one delivery event per receiver, `Name`-keyed
//!   legacy tables, one core.
//! * [`ExecProfile::fast`] — every optimization on: timer wheel, lazy
//!   name-first peek, batched delivery, decode-free relay patch, arena
//!   tables, and as many cores as the machine offers.
//!
//! Every strategy pairing produces bit-identical protocol traces for equal
//! seeds at `cores = 1`; `cores > 1` is metric-equivalent within the
//! tolerance documented on [`ShardedWorld`].
//!
//! [`WorldConfig`]: crate::world::WorldConfig
//! [`ShardedWorld`]: crate::shard::ShardedWorld

use crate::time::SimDuration;
use crate::world::{DeliveryEvents, DeliveryMode, QueueMode};

/// All execution-strategy knobs of a run, as one value.
///
/// The protocol-visible behaviour is identical across every profile (that is
/// the project's determinism contract); what a profile changes is *how* the
/// same trace is computed: queue implementation, decode laziness, event
/// granularity, table layout, and shard parallelism.
///
/// # Examples
///
/// ```
/// use dapes_netsim::exec::ExecProfile;
///
/// let p = ExecProfile::fast().with_cores(4);
/// assert!(p.label().ends_with("_c4"));
/// assert_eq!(ExecProfile::baseline().label(), "heap_eager_perrecv");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecProfile {
    /// Event-queue implementation ([`QueueMode`]).
    pub queue: QueueMode,
    /// Receiver-selection algorithm ([`DeliveryMode`]).
    pub delivery: DeliveryMode,
    /// Delivery-event granularity ([`DeliveryEvents`]).
    pub delivery_events: DeliveryEvents,
    /// Lazy name-first header peek in the NDN forwarder (vs eager full
    /// decode of every overheard frame).
    pub lazy_peek: bool,
    /// Decode-free relay: re-broadcast received Interests with a one-byte
    /// copy-on-write HopLimit patch when the strategy can decide from the
    /// peeked header alone.
    pub relay_patch: bool,
    /// Use the pre-arena `Name`-keyed PIT/CS tables (the eager baseline's
    /// cost model) instead of the generation-tagged wire-index arenas.
    pub legacy_tables: bool,
    /// Number of spatial shards (each with its own event loop). `1` runs
    /// the sequential engine and is bit-identical to every prior release;
    /// `> 1` runs [`ShardedWorld`](crate::shard::ShardedWorld).
    pub cores: usize,
    /// Conservative synchronization window for the sharded engine. `None`
    /// derives the minimum: cross-border propagation delay (zero in the
    /// unit-disk model) plus the minimum frame air time under the run's
    /// [`PhyConfig`](crate::radio::PhyConfig).
    pub lookahead: Option<SimDuration>,
}

impl Default for ExecProfile {
    /// The default matches the pre-redesign defaults of every layer: all
    /// single-core optimizations on, one core.
    fn default() -> Self {
        ExecProfile {
            queue: QueueMode::Wheel,
            delivery: DeliveryMode::Grid,
            delivery_events: DeliveryEvents::Batched,
            lazy_peek: true,
            relay_patch: true,
            legacy_tables: false,
            cores: 1,
            lookahead: None,
        }
    }
}

impl ExecProfile {
    /// The recorded pre-refactor baseline: heap queue, eager decode,
    /// per-receiver delivery events, legacy `Name`-keyed tables, one core.
    pub fn baseline() -> Self {
        ExecProfile {
            queue: QueueMode::Heap,
            delivery: DeliveryMode::Grid,
            delivery_events: DeliveryEvents::PerReceiver,
            lazy_peek: false,
            relay_patch: false,
            legacy_tables: true,
            cores: 1,
            lookahead: None,
        }
    }

    /// Every optimization on, with as many shards as the machine offers
    /// (`std::thread::available_parallelism`, 1 when undetectable).
    pub fn fast() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecProfile {
            cores,
            ..ExecProfile::default()
        }
    }

    /// Sets the event-queue implementation.
    pub fn with_queue(mut self, queue: QueueMode) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the receiver-selection algorithm.
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.delivery = delivery;
        self
    }

    /// Sets the delivery-event granularity.
    pub fn with_delivery_events(mut self, delivery_events: DeliveryEvents) -> Self {
        self.delivery_events = delivery_events;
        self
    }

    /// Sets lazy name-first peeking.
    pub fn with_lazy_peek(mut self, lazy_peek: bool) -> Self {
        self.lazy_peek = lazy_peek;
        self
    }

    /// Sets the decode-free relay patch.
    pub fn with_relay_patch(mut self, relay_patch: bool) -> Self {
        self.relay_patch = relay_patch;
        self
    }

    /// Sets the legacy `Name`-keyed PIT/CS tables.
    pub fn with_legacy_tables(mut self, legacy_tables: bool) -> Self {
        self.legacy_tables = legacy_tables;
        self
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "cores must be at least 1");
        self.cores = cores;
        self
    }

    /// Overrides the sharded engine's synchronization window.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> Self {
        self.lookahead = Some(lookahead);
        self
    }

    /// Canonical label of the profile, used by the scheduler benchmark's
    /// mode axis and report keys.
    ///
    /// The stem is `{heap|wheel}_{eager|lazy}_{perrecv|batched}`; a
    /// `_patch` suffix marks the decode-free relay, `_brute` the O(N)
    /// receiver scan, and `_cN` a sharded run on `N > 1` cores. The twelve
    /// single-core sweep labels recorded in `BENCH_sched.json` since PR 6
    /// come out of this function unchanged.
    pub fn label(&self) -> String {
        let mut label = String::new();
        label.push_str(match self.queue {
            QueueMode::Heap => "heap",
            QueueMode::Wheel => "wheel",
        });
        label.push_str(if self.lazy_peek { "_lazy" } else { "_eager" });
        label.push_str(match self.delivery_events {
            DeliveryEvents::PerReceiver => "_perrecv",
            DeliveryEvents::Batched => "_batched",
        });
        if self.relay_patch {
            label.push_str("_patch");
        }
        if self.delivery == DeliveryMode::BruteForce {
            label.push_str("_brute");
        }
        if self.cores > 1 {
            label.push_str(&format!("_c{}", self.cores));
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_labels() {
        assert_eq!(ExecProfile::baseline().label(), "heap_eager_perrecv");
        assert_eq!(ExecProfile::default().label(), "wheel_lazy_batched_patch");
        let fast = ExecProfile::fast().with_cores(1);
        assert_eq!(fast.label(), "wheel_lazy_batched_patch");
    }

    #[test]
    fn builder_setters_compose() {
        let p = ExecProfile::baseline()
            .with_queue(QueueMode::Wheel)
            .with_lazy_peek(true)
            .with_delivery_events(DeliveryEvents::Batched)
            .with_relay_patch(true)
            .with_legacy_tables(false)
            .with_cores(4)
            .with_lookahead(SimDuration::from_millis(1));
        assert_eq!(p.label(), "wheel_lazy_batched_patch_c4");
        assert_eq!(p.lookahead, Some(SimDuration::from_millis(1)));
        assert!(!p.legacy_tables);
    }

    #[test]
    fn twelve_sweep_labels_are_reproduced() {
        // The exact label set BENCH_sched.json has recorded since PR 6.
        let mut labels = Vec::new();
        for delivery_events in [DeliveryEvents::PerReceiver, DeliveryEvents::Batched] {
            for queue in [QueueMode::Heap, QueueMode::Wheel] {
                for (lazy, patch) in [(false, false), (true, false), (true, true)] {
                    labels.push(
                        ExecProfile::default()
                            .with_queue(queue)
                            .with_delivery_events(delivery_events)
                            .with_lazy_peek(lazy)
                            .with_relay_patch(patch)
                            .label(),
                    );
                }
            }
        }
        assert_eq!(
            labels,
            [
                "heap_eager_perrecv",
                "heap_lazy_perrecv",
                "heap_lazy_perrecv_patch",
                "wheel_eager_perrecv",
                "wheel_lazy_perrecv",
                "wheel_lazy_perrecv_patch",
                "heap_eager_batched",
                "heap_lazy_batched",
                "heap_lazy_batched_patch",
                "wheel_eager_batched",
                "wheel_lazy_batched",
                "wheel_lazy_batched_patch",
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cores_rejected() {
        let _ = ExecProfile::default().with_cores(0);
    }

    #[test]
    fn brute_force_is_labelled() {
        let p = ExecProfile::default().with_delivery(DeliveryMode::BruteForce);
        assert_eq!(p.label(), "wheel_lazy_batched_patch_brute");
    }
}
