//! Plane geometry for node positions and movement.

use std::fmt;

/// A position in the simulation field, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Metres along the x axis.
    pub x: f64,
    /// Metres along the y axis.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Whether `other` lies within `range` metres (inclusive).
    pub fn within(&self, other: &Point, range: f64) -> bool {
        // Squared comparison avoids the sqrt on the hot path.
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy <= range * range
    }

    /// Component-wise clamp into the rectangle `(0,0)..=(w,h)`.
    pub fn clamped(&self, w: f64, h: f64) -> Point {
        Point {
            x: self.x.clamp(0.0, w),
            y: self.y.clamp(0.0, h),
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A velocity vector in metres per second.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Velocity {
    /// Metres per second along x.
    pub vx: f64,
    /// Metres per second along y.
    pub vy: f64,
}

impl Velocity {
    /// A stationary velocity.
    pub const ZERO: Velocity = Velocity { vx: 0.0, vy: 0.0 };

    /// Builds a velocity from a heading (radians) and speed (m/s).
    pub fn from_heading(theta: f64, speed: f64) -> Self {
        Velocity {
            vx: speed * theta.cos(),
            vy: speed * theta.sin(),
        }
    }

    /// Speed in metres per second.
    pub fn speed(&self) -> f64 {
        (self.vx * self.vx + self.vy * self.vy).sqrt()
    }
}

/// Advances `origin` by `v` for `dt_secs` seconds.
pub fn advance(origin: Point, v: Velocity, dt_secs: f64) -> Point {
    Point {
        x: origin.x + v.vx * dt_secs,
        y: origin.y + v.vy * dt_secs,
    }
}

/// Time in seconds until a mover starting at `p` with velocity `v` exits the
/// rectangle `(0,0)..(w,h)`, or `None` if it never does (zero velocity or
/// already gliding along a wall inward).
pub fn time_to_boundary(p: Point, v: Velocity, w: f64, h: f64) -> Option<f64> {
    let mut t = f64::INFINITY;
    if v.vx > 0.0 {
        t = t.min((w - p.x) / v.vx);
    } else if v.vx < 0.0 {
        t = t.min(-p.x / v.vx);
    }
    if v.vy > 0.0 {
        t = t.min((h - p.y) / v.vy);
    } else if v.vy < 0.0 {
        t = t.min(-p.y / v.vy);
    }
    if t.is_finite() && t >= 0.0 {
        Some(t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_within() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!(a.within(&b, 5.0));
        assert!(!a.within(&b, 4.999));
    }

    #[test]
    fn advance_moves_linearly() {
        let p = advance(Point::new(1.0, 2.0), Velocity { vx: 2.0, vy: -1.0 }, 3.0);
        assert!((p.x - 7.0).abs() < 1e-12);
        assert!((p.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_velocity_has_requested_speed() {
        for theta in [0.0, 1.0, 2.5, 6.0] {
            let v = Velocity::from_heading(theta, 7.0);
            assert!((v.speed() - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_time_simple_cases() {
        let w = 300.0;
        let h = 300.0;
        // Heading straight right from the centre.
        let t = time_to_boundary(
            Point::new(150.0, 150.0),
            Velocity { vx: 10.0, vy: 0.0 },
            w,
            h,
        )
        .expect("moving");
        assert!((t - 15.0).abs() < 1e-9);
        // Heading diagonally down-left from near the origin corner.
        let t = time_to_boundary(Point::new(5.0, 10.0), Velocity { vx: -1.0, vy: -2.0 }, w, h)
            .expect("moving");
        assert!((t - 5.0).abs() < 1e-9);
        // Stationary never exits.
        assert!(time_to_boundary(Point::new(5.0, 10.0), Velocity::ZERO, w, h).is_none());
    }

    #[test]
    fn boundary_time_on_wall_heading_out_is_zero() {
        let t = time_to_boundary(
            Point::new(300.0, 150.0),
            Velocity { vx: 1.0, vy: 0.0 },
            300.0,
            300.0,
        )
        .expect("moving");
        assert_eq!(t, 0.0);
    }

    #[test]
    fn clamp_restores_field_membership() {
        let p = Point::new(-3.0, 400.0).clamped(300.0, 300.0);
        assert_eq!((p.x, p.y), (0.0, 300.0));
    }
}
