//! Plane geometry for node positions and movement.

use std::fmt;

/// A position in the simulation field, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Metres along the x axis.
    pub x: f64,
    /// Metres along the y axis.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Whether `other` lies within `range` metres (inclusive).
    pub fn within(&self, other: &Point, range: f64) -> bool {
        // Squared comparison avoids the sqrt on the hot path.
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy <= range * range
    }

    /// Component-wise clamp into the rectangle `(0,0)..=(w,h)`.
    pub fn clamped(&self, w: f64, h: f64) -> Point {
        Point {
            x: self.x.clamp(0.0, w),
            y: self.y.clamp(0.0, h),
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, used by the sharded engine to describe the
/// region of the field another shard's receivers can occupy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Rect {
    /// The smallest rectangle containing both corners.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Grows the rectangle by `margin` metres on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Extends the rectangle to contain `p`.
    pub fn include(&mut self, p: Point) {
        self.min = Point::new(self.min.x.min(p.x), self.min.y.min(p.y));
        self.max = Point::new(self.max.x.max(p.x), self.max.y.max(p.y));
    }

    /// Whether the disc of radius `r` around `center` overlaps the
    /// rectangle (boundary contact counts).
    pub fn intersects_disc(&self, center: Point, r: f64) -> bool {
        let nearest = Point::new(
            center.x.clamp(self.min.x, self.max.x),
            center.y.clamp(self.min.y, self.max.y),
        );
        nearest.within(&center, r)
    }
}

/// A velocity vector in metres per second.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Velocity {
    /// Metres per second along x.
    pub vx: f64,
    /// Metres per second along y.
    pub vy: f64,
}

impl Velocity {
    /// A stationary velocity.
    pub const ZERO: Velocity = Velocity { vx: 0.0, vy: 0.0 };

    /// Builds a velocity from a heading (radians) and speed (m/s).
    pub fn from_heading(theta: f64, speed: f64) -> Self {
        Velocity {
            vx: speed * theta.cos(),
            vy: speed * theta.sin(),
        }
    }

    /// Speed in metres per second.
    pub fn speed(&self) -> f64 {
        (self.vx * self.vx + self.vy * self.vy).sqrt()
    }
}

/// Advances `origin` by `v` for `dt_secs` seconds.
pub fn advance(origin: Point, v: Velocity, dt_secs: f64) -> Point {
    Point {
        x: origin.x + v.vx * dt_secs,
        y: origin.y + v.vy * dt_secs,
    }
}

/// Time in seconds until a mover starting at `p` with velocity `v` exits the
/// rectangle `(0,0)..(w,h)`, or `None` if it never does (zero velocity or
/// already gliding along a wall inward).
pub fn time_to_boundary(p: Point, v: Velocity, w: f64, h: f64) -> Option<f64> {
    let mut t = f64::INFINITY;
    if v.vx > 0.0 {
        t = t.min((w - p.x) / v.vx);
    } else if v.vx < 0.0 {
        t = t.min(-p.x / v.vx);
    }
    if v.vy > 0.0 {
        t = t.min((h - p.y) / v.vy);
    } else if v.vy < 0.0 {
        t = t.min(-p.y / v.vy);
    }
    if t.is_finite() && t >= 0.0 {
        Some(t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_within() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!(a.within(&b, 5.0));
        assert!(!a.within(&b, 4.999));
    }

    #[test]
    fn advance_moves_linearly() {
        let p = advance(Point::new(1.0, 2.0), Velocity { vx: 2.0, vy: -1.0 }, 3.0);
        assert!((p.x - 7.0).abs() < 1e-12);
        assert!((p.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_velocity_has_requested_speed() {
        for theta in [0.0, 1.0, 2.5, 6.0] {
            let v = Velocity::from_heading(theta, 7.0);
            assert!((v.speed() - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_time_simple_cases() {
        let w = 300.0;
        let h = 300.0;
        // Heading straight right from the centre.
        let t = time_to_boundary(
            Point::new(150.0, 150.0),
            Velocity { vx: 10.0, vy: 0.0 },
            w,
            h,
        )
        .expect("moving");
        assert!((t - 15.0).abs() < 1e-9);
        // Heading diagonally down-left from near the origin corner.
        let t = time_to_boundary(Point::new(5.0, 10.0), Velocity { vx: -1.0, vy: -2.0 }, w, h)
            .expect("moving");
        assert!((t - 5.0).abs() < 1e-9);
        // Stationary never exits.
        assert!(time_to_boundary(Point::new(5.0, 10.0), Velocity::ZERO, w, h).is_none());
    }

    #[test]
    fn boundary_time_on_wall_heading_out_is_zero() {
        let t = time_to_boundary(
            Point::new(300.0, 150.0),
            Velocity { vx: 1.0, vy: 0.0 },
            300.0,
            300.0,
        )
        .expect("moving");
        assert_eq!(t, 0.0);
    }

    #[test]
    fn rect_disc_intersection() {
        let r = Rect::new(Point::new(100.0, 0.0), Point::new(200.0, 300.0));
        // Disc fully inside.
        assert!(r.intersects_disc(Point::new(150.0, 150.0), 10.0));
        // Disc outside, reaching the left edge exactly.
        assert!(r.intersects_disc(Point::new(40.0, 150.0), 60.0));
        // Disc outside, just short of the edge.
        assert!(!r.intersects_disc(Point::new(39.0, 150.0), 60.0));
        // Corner case: diagonal distance governs.
        assert!(!r.intersects_disc(Point::new(50.0, -50.0), 60.0));
        assert!(r.intersects_disc(Point::new(60.0, -30.0), 60.0));
        // expanded() grows every side.
        let e = r.expanded(10.0);
        assert_eq!(e.min, Point::new(90.0, -10.0));
        assert_eq!(e.max, Point::new(210.0, 310.0));
        let mut g = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        g.include(Point::new(-2.0, 5.0));
        assert_eq!(g.min, Point::new(-2.0, 0.0));
        assert_eq!(g.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn clamp_restores_field_membership() {
        let p = Point::new(-3.0, 400.0).clamped(300.0, 300.0);
        assert_eq!((p.x, p.y), (0.0, 300.0));
    }
}
