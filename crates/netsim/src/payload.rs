//! Shared immutable frame buffers.
//!
//! A broadcast reaches every node in range, so the same bytes are observed
//! by many receivers. [`Payload`] wraps the bytes in an `Arc<[u8]>` so one
//! encoding is shared by the transmit queue, the in-flight transmission,
//! every delivered [`crate::radio::Frame`] and any upper-layer wire caches —
//! cloning a `Payload` bumps a reference count instead of copying the
//! buffer.
//!
//! A `Payload` can also be a *view* of a sub-range of another payload
//! ([`Payload::view_of`]), which is how decoded packets borrow their
//! content field straight out of the received frame with zero copies. A
//! view keeps the whole backing buffer alive — the right trade for frame-
//! sized buffers on the hot path.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (`Arc<[u8]>`-backed),
/// optionally windowed onto a sub-range of its allocation.
///
/// Equality and hashing consider the visible bytes only, not the identity
/// of the backing allocation.
///
/// # Examples
///
/// ```
/// use dapes_netsim::payload::Payload;
///
/// let p = Payload::from(vec![1u8, 2, 3]);
/// let q = p.clone(); // no copy: both views share one allocation
/// assert_eq!(&*q, &[1, 2, 3]);
/// assert!(Payload::same_backing(&p, &q));
/// ```
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Self {
        Payload::default()
    }

    /// Copies `bytes` into a new shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Payload::from_arc(Arc::from(bytes))
    }

    fn from_arc(buf: Arc<[u8]>) -> Self {
        let end = buf.len();
        Payload { buf, start: 0, end }
    }

    /// A zero-copy view of `slice`, which must lie within this payload's
    /// visible bytes (e.g. a TLV value produced by parsing it). Falls back
    /// to copying if `slice` is not borrowed from this buffer, so callers
    /// never get an aliasing surprise.
    pub fn view_of(&self, slice: &[u8]) -> Payload {
        let base = self.as_slice().as_ptr() as usize;
        let ptr = slice.as_ptr() as usize;
        if ptr >= base && ptr + slice.len() <= base + self.len() {
            let offset = ptr - base;
            Payload {
                buf: Arc::clone(&self.buf),
                start: self.start + offset,
                end: self.start + offset + slice.len(),
            }
        } else {
            Payload::copy_from_slice(slice)
        }
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two payloads are the same view of the same allocation (not
    /// just equal bytes). Tests use this to prove a hot path did not copy.
    pub fn ptr_eq(a: &Payload, b: &Payload) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf) && a.start == b.start && a.end == b.end
    }

    /// Whether two payloads share one backing allocation (possibly as
    /// different views).
    pub fn same_backing(a: &Payload, b: &Payload) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::from_arc(Arc::from([]))
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let p = Payload::from(vec![9u8; 1024]);
        let q = p.clone();
        assert!(Payload::ptr_eq(&p, &q));
        assert_eq!(p, q);
        assert_eq!(p.len(), 1024);
    }

    #[test]
    fn distinct_allocations_compare_by_bytes() {
        let p = Payload::from(vec![1u8, 2]);
        let q = Payload::copy_from_slice(&[1, 2]);
        assert_eq!(p, q);
        assert!(!Payload::ptr_eq(&p, &q));
    }

    #[test]
    fn empty_payload() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let p = Payload::from(vec![5u8, 6, 7]);
        assert_eq!(p[1], 6);
        assert_eq!(&p[..2], &[5, 6]);
    }

    #[test]
    fn view_of_inner_slice_is_zero_copy() {
        let p = Payload::from(vec![0u8, 1, 2, 3, 4, 5]);
        let inner = &p[2..5];
        let v = p.view_of(inner);
        assert_eq!(&*v, &[2, 3, 4]);
        assert!(Payload::same_backing(&p, &v));
        // A view of a view stays on the same allocation.
        let vv = v.view_of(&v[1..2]);
        assert_eq!(&*vv, &[3]);
        assert!(Payload::same_backing(&p, &vv));
    }

    #[test]
    fn view_of_foreign_slice_copies() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let other = [7u8, 8];
        let v = p.view_of(&other);
        assert_eq!(&*v, &[7, 8]);
        assert!(!Payload::same_backing(&p, &v));
    }

    #[test]
    fn views_compare_by_visible_bytes() {
        let p = Payload::from(vec![1u8, 2, 3, 1, 2, 3]);
        let a = p.view_of(&p[0..3]);
        let b = p.view_of(&p[3..6]);
        assert_eq!(a, b, "same bytes, different windows");
        assert!(!Payload::ptr_eq(&a, &b), "but not the same view");
    }
}
