//! The simulation world: event loop, CSMA MAC, and frame delivery.
//!
//! # Model
//!
//! * **Broadcast medium.** Every transmission reaches every node within
//!   `range` metres of the sender (unit disk), minus collision and random
//!   loss. There is no unicast at the MAC layer; addressing is an
//!   upper-layer concern, and *overhearing is the default*, which is what
//!   DAPES's §V multi-hop design exploits.
//! * **Carrier sense.** A node defers transmission while it can hear another
//!   transmission, then backs off DIFS + uniform slots with a doubling
//!   contention window.
//! * **Collisions.** A receiver drops a frame when any other transmission
//!   audible to *it* overlaps the frame in time (no capture effect). A
//!   half-duplex node also cannot receive while transmitting. Senders learn
//!   whether their own transmission overlapped an audible one via
//!   [`TxOutcome::collided`] — the signal PEBA reacts to.
//! * **Loss.** Independent Bernoulli loss per receiver (paper: 10 %).

use crate::exec::ExecProfile;
use crate::fault::{FaultAction, FaultPlan};
use crate::geometry::{Point, Rect};
use crate::grid::SpatialGrid;
use crate::mobility::{Mobility, Stationary};
use crate::node::{Command, NetStack, NodeCtx, NodeId, TimerHandle, TxOutcome};
use crate::payload::Payload;
use crate::radio::{Frame, FrameKind, PhyConfig};
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerWheel, WheelEntry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Builds the replacement stack for a node being restarted by a
/// [`FaultAction::Restart`]. The second argument is the crashed incarnation
/// (the "wreck"), available for downcast-and-salvage; `None` when the crash
/// predates any factory or the node left permanently. `Send` so the sharded
/// engine can hand a shared factory to per-thread shards.
pub type StackFactory = Box<dyn FnMut(NodeId, Option<&dyn NetStack>) -> Box<dyn NetStack> + Send>;

/// How receivers are selected per transmission.
///
/// Both modes produce bit-identical traces for equal seeds: the grid yields
/// a sorted candidate superset that is filtered by the same checks in the
/// same node order, so every RNG draw happens for the same receiver at the
/// same point in the stream. `BruteForce` exists for equivalence tests and
/// as the recorded pre-refactor baseline in the hot-path benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// O(k) receiver selection via the uniform spatial grid (default).
    #[default]
    Grid,
    /// The original O(N)-per-transmission scan over every node.
    BruteForce,
}

/// Which event-queue implementation (and command-buffer regime) drives the
/// run.
///
/// Both modes pop events in the exact same `(time, event_seq)` order, so
/// equal seeds give bit-identical traces either way — asserted across the
/// scenario matrix by `tests/sched.rs`. `Heap` reproduces the pre-refactor
/// control-plane cost model (a `BinaryHeap` with O(log n) push/pop plus a
/// fresh `Vec<Command>` allocation per stack callback) and exists for
/// equivalence tests and as the recorded baseline in the scheduler
/// benchmark; `Wheel` is the hierarchical timer wheel with pooled command
/// buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueMode {
    /// O(1) hierarchical timer wheel + pooled command buffers (default).
    #[default]
    Wheel,
    /// The original binary heap with per-callback buffer allocations.
    Heap,
}

/// How a finished transmission's deliveries are turned into events.
///
/// Both modes run the same callbacks in the same order with the same RNG
/// draws, so equal seeds give bit-identical protocol traces either way —
/// asserted across the scenario matrix by `tests/sched.rs` and by proptests.
/// What differs is the event-queue and command-buffer traffic: `Batched`
/// schedules **one** arrival event per transmission carrying the
/// precomputed (grid-sorted) receiver set and executes every per-receiver
/// delivery — plus the sender's [`NetStack::on_tx_done`] — inside a single
/// stack-entry round trip with one recycled command buffer, while
/// `PerReceiver` reproduces the classic ns-3-style cost model of one
/// scheduled receive event (and one buffer round trip) per receiver.
///
/// One observable edge: [`World::run_until_cond`] checks its predicate
/// between *events*, so a per-receiver fan-out can be interrupted
/// mid-transmission (later receivers' callbacks not yet run when the
/// predicate fires) where a batch always completes atomically. Completed
/// runs — and everything the equivalence suites fingerprint — are
/// unaffected; only state inspected at the instant an early-stopping
/// predicate fires can differ between the modes.
///
/// [`NetStack::on_tx_done`]: crate::node::NetStack::on_tx_done
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliveryEvents {
    /// One arrival event per transmission; all receivers delivered in a
    /// single batched dispatch (default).
    #[default]
    Batched,
    /// One arrival event per receiver plus a sender-outcome event: the
    /// recorded baseline for the scheduler benchmark.
    PerReceiver,
}

/// Static configuration of a simulation run.
///
/// Execution-strategy knobs (queue, delivery, event granularity, cores)
/// live in [`ExecProfile`]; the loose per-knob setters survive one release
/// as deprecated forwarding shims.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Field dimensions in metres (paper: 300 × 300).
    pub field: (f64, f64),
    /// Radio range in metres (paper sweeps 20–100).
    pub range: f64,
    /// PHY/MAC parameters.
    pub phy: PhyConfig,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Execution strategy: queue/delivery/event-granularity plus the
    /// sharded engine's `cores` and `lookahead`.
    pub exec: ExecProfile,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            field: (300.0, 300.0),
            range: 60.0,
            phy: PhyConfig::default(),
            seed: 1,
            exec: ExecProfile::default(),
        }
    }
}

impl WorldConfig {
    /// Sets the receiver-selection algorithm.
    #[deprecated(
        since = "0.10.0",
        note = "use `exec.delivery` / `ExecProfile::with_delivery`"
    )]
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.exec.delivery = delivery;
        self
    }

    /// Sets the event-queue implementation.
    #[deprecated(
        since = "0.10.0",
        note = "use `exec.queue` / `ExecProfile::with_queue`"
    )]
    pub fn with_queue(mut self, queue: QueueMode) -> Self {
        self.exec.queue = queue;
        self
    }

    /// Sets the delivery-event granularity.
    #[deprecated(
        since = "0.10.0",
        note = "use `exec.delivery_events` / `ExecProfile::with_delivery_events`"
    )]
    pub fn with_delivery_events(mut self, delivery_events: DeliveryEvents) -> Self {
        self.exec.delivery_events = delivery_events;
        self
    }
}

#[derive(Debug)]
struct PendingFrame {
    payload: Payload,
    kind: FrameKind,
    token: u64,
}

#[derive(Debug)]
struct MacState {
    queue: VecDeque<PendingFrame>,
    transmitting: bool,
    cw: u32,
    /// Earliest carrier-sense retry currently in the event queue, if any.
    /// Deferrals whose retry time lands at or after it are batched onto
    /// that one event instead of queueing another: a busy burst ends with
    /// one retry wake-up per node, not one per overheard transmission.
    retry_at: Option<SimTime>,
}

struct NodeSlot {
    mobility: Box<dyn Mobility>,
    stack: Option<Box<dyn NetStack>>,
    /// True for a placeholder slot representing a node owned by another
    /// shard: never in the grid, never dispatched, exists only so node ids
    /// (and per-node stats arrays) stay globally aligned across shards.
    shadow: bool,
    mac: MacState,
    /// Incarnation counter, bumped on crash/leave. Timer and delayed-send
    /// events carry the epoch they were armed under; a mismatch at dispatch
    /// means the arming incarnation is dead and the event is suppressed
    /// (its slab slot is still freed), so a restarted stack can never
    /// receive a predecessor's callbacks.
    epoch: u32,
    /// A stack parked outside the dispatch path: the wreck of a crashed
    /// node (kept as the salvage source for a restart) or a late joiner
    /// waiting for its `FaultAction::Join`.
    dormant: Option<Box<dyn NetStack>>,
}

#[derive(Debug)]
struct ActiveTx {
    id: u64,
    sender: NodeId,
    sender_pos: Point,
    start: SimTime,
    end: SimTime,
    kind: FrameKind,
    payload: Payload,
    token: u64,
    seq: u64,
}

/// A transmission whose radio disc crossed a shard border, exported by the
/// owning shard at the end of a synchronization window and injected into
/// every shard whose receivers it could reach. Carries everything a remote
/// shard needs to run its own range/partition/loss checks.
#[derive(Clone, Debug)]
pub struct ForeignFrame {
    /// Transmitting node (a shadow slot in the receiving shard).
    pub src: NodeId,
    /// Sender position at transmission end, for the remote range check.
    pub src_pos: Point,
    /// Protocol tag for accounting.
    pub kind: FrameKind,
    /// The shared wire bytes (cheap `Arc` clone).
    pub payload: Payload,
    /// The owning shard's transmission sequence number.
    pub seq: u64,
}

/// One transmission's precomputed deliveries, carried by a single
/// [`EventKind::DeliverBatch`] arrival event in [`DeliveryEvents::Batched`]
/// mode. Boxed in the event so the queue entry stays pointer-sized.
#[derive(Debug)]
struct DeliveryBatch {
    frame: Frame,
    /// Receivers that passed the range/collision/loss checks, ascending by
    /// node id (the grid's candidate order).
    receivers: Vec<NodeId>,
    sender: NodeId,
    outcome: TxOutcome,
}

#[derive(Debug)]
enum EventKind {
    Timer {
        node: NodeId,
        token: u64,
        handle: TimerHandle,
        /// The node incarnation that armed the timer (see [`NodeSlot::epoch`]).
        epoch: u32,
    },
    MacEnqueue {
        node: NodeId,
        /// The node incarnation that issued the delayed send.
        epoch: u32,
        /// Boxed: a `PendingFrame` is wider than every other variant, and
        /// every queue entry would pay for it inline.
        frame: Box<PendingFrame>,
    },
    MacTry {
        node: NodeId,
    },
    TxEnd {
        tx_id: u64,
    },
    MobilityChange {
        node: NodeId,
    },
    /// One arrival event for a whole transmission (batched mode).
    DeliverBatch(Box<DeliveryBatch>),
    /// One arrival event for one receiver (per-receiver mode); the frame is
    /// shared across the transmission's events.
    Deliver {
        receiver: NodeId,
        frame: std::sync::Arc<Frame>,
    },
    /// Sender-outcome event trailing the per-receiver deliveries.
    TxDone {
        node: NodeId,
        outcome: TxOutcome,
    },
    /// One scripted fault from the world's [`FaultPlan`], by action index.
    Fault {
        idx: u32,
    },
    /// A border-crossing transmission from another shard, injected at a
    /// window boundary; delivered with local range/partition/loss checks
    /// but without carrier-sense or collision coupling (the sharded
    /// engine's documented tolerance).
    Foreign(Box<ForeignFrame>),
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

// Million-entry queues only stay cache-resident if entries stay small: the
// fat payloads (pending frames, delivery batches) are boxed, so an event is
// the 16-byte `(time, seq)` key plus a few words of kind. These bounds are
// what the timer-wheel slots and the binary heap actually store per entry.
const _: () = assert!(std::mem::size_of::<EventKind>() <= 32);
const _: () = assert!(std::mem::size_of::<Event>() <= 48);

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The pending-event queue, in either implementation. Both pop in exact
/// `(time, seq)` order; see [`QueueMode`].
enum EventQueue {
    Heap(BinaryHeap<Reverse<Event>>),
    Wheel(TimerWheel<EventKind>),
}

impl EventQueue {
    fn new(mode: QueueMode) -> Self {
        match mode {
            QueueMode::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueMode::Wheel => EventQueue::Wheel(TimerWheel::new()),
        }
    }

    fn push(&mut self, ev: Event) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(ev)),
            EventQueue::Wheel(w) => w.push(ev.time.as_micros(), ev.seq, ev.kind),
        }
    }

    /// Time of the earliest pending event (the wheel may advance its cursor
    /// over empty slots, hence `&mut`).
    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(ev)| ev.time),
            EventQueue::Wheel(w) => w.peek_time().map(SimTime::from_micros),
        }
    }

    fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            EventQueue::Wheel(w) => w.pop().map(|WheelEntry { time, seq, item }| Event {
                time: SimTime::from_micros(time),
                seq,
                kind: item,
            }),
        }
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use dapes_netsim::prelude::*;
///
/// let mut world = World::new(WorldConfig::default());
/// // (add nodes with `add_node`, then)
/// world.run_until(SimTime::from_secs(10));
/// assert_eq!(world.now(), SimTime::from_secs(10));
/// ```
pub struct World {
    cfg: WorldConfig,
    now: SimTime,
    queue: EventQueue,
    event_seq: u64,
    nodes: Vec<NodeSlot>,
    active_tx: Vec<ActiveTx>,
    next_tx_id: u64,
    next_frame_seq: u64,
    timers: crate::node::TimerSlab,
    /// Free list of command buffers recycled across stack callbacks (only
    /// used in [`QueueMode::Wheel`]; the heap baseline allocates fresh).
    cmd_pool: Vec<Vec<Command>>,
    /// Free list of receiver vectors recycled through delivery batches, so
    /// batched mode schedules its one arrival event without a fresh
    /// allocation per transmission.
    recv_pool: Vec<Vec<NodeId>>,
    /// Scratch buffer of sender positions whose transmissions overlap the
    /// one being delivered, computed once per transmission so the
    /// per-receiver collision check scans only actual overlaps instead of
    /// the whole interference history.
    overlap_buf: Vec<Point>,
    rng: SmallRng,
    stats: Stats,
    started: bool,
    grid: SpatialGrid,
    candidate_buf: Vec<NodeId>,
    /// Longest frame air time seen so far, bounding how long a finished
    /// transmission can still matter for collision checks.
    longest_air: SimDuration,
    /// The fault script, indexed by the `Fault` events scheduled at start.
    fault_actions: Vec<(SimTime, FaultAction)>,
    /// Currently severed links as unordered node-id pairs (`min`, `max`).
    links_cut: BTreeSet<(u32, u32)>,
    /// Builds replacement stacks for `FaultAction::Restart`.
    stack_factory: Option<StackFactory>,
    /// Regions of the field occupied by *other* shards' receivers
    /// (expanded by radio range). A finished transmission whose disc
    /// touches one is exported through `border_outbox`. Empty outside the
    /// sharded engine — the sequential fast path pays one `is_empty` check.
    export_regions: Vec<Rect>,
    /// Border-crossing transmissions awaiting pickup by the shard
    /// coordinator at the next window boundary.
    border_outbox: Vec<ForeignFrame>,
}

/// Canonical (unordered) key for a link between two nodes, so `links_cut`
/// stores each severed pair exactly once regardless of direction.
fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl World {
    /// Creates an empty world.
    pub fn new(cfg: WorldConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let grid = SpatialGrid::new(cfg.field, cfg.range.max(1e-6));
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(cfg.exec.queue),
            event_seq: 0,
            nodes: Vec::new(),
            active_tx: Vec::new(),
            next_tx_id: 0,
            next_frame_seq: 0,
            timers: crate::node::TimerSlab::default(),
            cmd_pool: Vec::new(),
            recv_pool: Vec::new(),
            overlap_buf: Vec::new(),
            rng,
            stats: Stats::new(0),
            started: false,
            grid,
            candidate_buf: Vec::new(),
            longest_air: SimDuration::ZERO,
            fault_actions: Vec::new(),
            links_cut: BTreeSet::new(),
            stack_factory: None,
            export_regions: Vec::new(),
            border_outbox: Vec::new(),
            cfg,
        }
    }

    /// Adds a node with the given mobility and protocol stack, returning its
    /// id. Nodes must be added before the first `run_until` call.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started.
    pub fn add_node(&mut self, mobility: Box<dyn Mobility>, stack: Box<dyn NetStack>) -> NodeId {
        assert!(!self.started, "nodes must be added before the run starts");
        let id = NodeId(self.nodes.len() as u32);
        if let Some(t) = mobility.next_change() {
            self.push_event(t, EventKind::MobilityChange { node: id });
        }
        let (a, b) = segment_bounds(mobility.as_ref(), self.now);
        self.grid.insert(id, a, b);
        self.nodes.push(NodeSlot {
            mobility,
            stack: Some(stack),
            shadow: false,
            mac: MacState {
                queue: VecDeque::new(),
                transmitting: false,
                cw: self.cfg.phy.cw_min,
                retry_at: None,
            },
            epoch: 0,
            dormant: None,
        });
        id
    }

    /// Adds a placeholder slot for a node owned by another shard: it holds
    /// the id (keeping node ids globally aligned across shard worlds and
    /// per-node stats arrays element-wise mergeable) but never enters the
    /// spatial grid, never transmits, and never receives.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started.
    pub fn add_shadow_node(&mut self, pos: Point) -> NodeId {
        assert!(!self.started, "nodes must be added before the run starts");
        let id = NodeId(self.nodes.len() as u32);
        self.grid.insert_absent(id);
        self.nodes.push(NodeSlot {
            mobility: Box::new(Stationary::new(pos)),
            stack: None,
            shadow: true,
            mac: MacState {
                queue: VecDeque::new(),
                transmitting: false,
                cw: self.cfg.phy.cw_min,
                retry_at: None,
            },
            epoch: 0,
            dormant: None,
        });
        id
    }

    /// Attaches a fault script: each action becomes one ordinary event in
    /// the shared queue, so traces stay bit-identical across every
    /// [`QueueMode`] / [`DeliveryEvents`] pairing with the plan applied.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started. Actions naming a node id
    /// that was never added panic when they fire.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !self.started,
            "fault plans must be set before the run starts"
        );
        self.fault_actions = plan.actions;
    }

    /// Installs the factory that builds replacement stacks for
    /// [`FaultAction::Restart`] events. Required before any restart fires.
    pub fn set_stack_factory(&mut self, factory: StackFactory) {
        self.stack_factory = Some(factory);
    }

    /// Whether `node`'s stack is currently live (not crashed, departed, or
    /// dormant awaiting a late join).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].stack.is_some()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The configured radio range.
    pub fn range(&self) -> f64 {
        self.cfg.range
    }

    /// Changes the Bernoulli frame-loss rate from now on. The loss draw for
    /// a frame happens when its transmission *ends*, so a frame still on
    /// the air at the switch instant is judged with the new rate — the
    /// behaviour time-varying loss schedules (e.g. a storm passing through
    /// a disaster area) need.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate out of range: {rate}"
        );
        self.cfg.phy.loss_rate = rate;
    }

    /// Position of `node` at the current time.
    pub fn position_of(&self, node: NodeId) -> Point {
        self.nodes[node.0 as usize].mobility.position(self.now)
    }

    /// Nodes currently within radio range of `node` (excluding itself),
    /// ascending by id. Served from the spatial grid in O(k) unless the
    /// world was configured with [`DeliveryMode::BruteForce`].
    pub fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        match self.cfg.exec.delivery {
            DeliveryMode::BruteForce => self.neighbors_of_brute(node),
            DeliveryMode::Grid => {
                let p = self.position_of(node);
                let mut out = Vec::new();
                self.grid.candidates_into(p, self.cfg.range, &mut out);
                out.retain(|&other| {
                    other != node && self.position_of(other).within(&p, self.cfg.range)
                });
                out
            }
        }
    }

    /// The original O(N) neighbor scan, kept as the reference the grid is
    /// equivalence-tested against.
    pub fn neighbors_of_brute(&self, node: NodeId) -> Vec<NodeId> {
        let p = self.position_of(node);
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&other| other != node && self.position_of(other).within(&p, self.cfg.range))
            .collect()
    }

    /// Immutable downcast access to a node's stack.
    pub fn stack<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.nodes[node.0 as usize]
            .stack
            .as_ref()
            .and_then(|s| s.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast access to a node's stack.
    pub fn stack_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.0 as usize]
            .stack
            .as_mut()
            .and_then(|s| s.as_any_mut().downcast_mut::<T>())
    }

    /// Sum of [`NetStack::live_state_bytes`] over all nodes — the Table I
    /// memory proxy.
    pub fn live_state_bytes(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.stack.as_ref())
            .map(|s| s.live_state_bytes())
            .sum()
    }

    /// Live state bytes of a single node.
    pub fn node_state_bytes(&self, node: NodeId) -> usize {
        self.nodes[node.0 as usize]
            .stack
            .as_ref()
            .map_or(0, |s| s.live_state_bytes())
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.event_seq += 1;
        self.queue.push(Event {
            time,
            seq: self.event_seq,
            kind,
        });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.stats = {
            let mut s = Stats::new(self.nodes.len());
            std::mem::swap(&mut s.event_dispatches, &mut self.stats.event_dispatches);
            std::mem::swap(&mut s.cmd_pool_hits, &mut self.stats.cmd_pool_hits);
            std::mem::swap(&mut s.cmd_pool_misses, &mut self.stats.cmd_pool_misses);
            std::mem::swap(&mut s.arrival_events, &mut self.stats.arrival_events);
            s
        };
        // Schedule the fault script before any `on_start` runs: the fault
        // events' queue positions are then a pure function of the plan,
        // identical in every queue and delivery-event mode. Late joiners are
        // parked dormant here so the start loop skips them.
        for i in 0..self.fault_actions.len() {
            let t = self.fault_actions[i].0;
            let join = match &self.fault_actions[i].1 {
                FaultAction::Join(node) => Some(*node),
                _ => None,
            };
            if let Some(node) = join {
                let slot = &mut self.nodes[node.0 as usize];
                if let Some(stack) = slot.stack.take() {
                    slot.dormant = Some(stack);
                }
            }
            self.push_event(t, EventKind::Fault { idx: i as u32 });
        }
        for i in 0..self.nodes.len() {
            self.with_stack(NodeId(i as u32), |stack, ctx| stack.on_start(ctx));
        }
    }

    /// Runs the event loop until `deadline` (inclusive of events at it).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.stats.event_dispatches += 1;
            self.dispatch(ev.kind);
        }
        self.now = deadline.max(self.now);
    }

    /// Runs until `pred` returns true or until `deadline`. Returns `true`
    /// when the predicate fired.
    ///
    /// The predicate is consulted at *instant boundaries*: every event
    /// scheduled at the current simulation instant — a whole transmission's
    /// delivery fan-out included — is dispatched before `pred` runs. Both
    /// [`DeliveryEvents`] granularities therefore expose the exact same
    /// sequence of states to early-stopping predicates; a per-receiver
    /// fan-out can no longer be interrupted mid-transmission.
    pub fn run_until_cond<F: FnMut(&World) -> bool>(
        &mut self,
        deadline: SimTime,
        mut pred: F,
    ) -> bool {
        self.ensure_started();
        if pred(self) {
            return true;
        }
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                break;
            }
            // Drain the instant completely (including events the dispatches
            // themselves push at the same time) before checking `pred`.
            loop {
                let ev = self.queue.pop().expect("peeked");
                self.now = ev.time;
                self.stats.event_dispatches += 1;
                self.dispatch(ev.kind);
                match self.queue.next_time() {
                    Some(next) if next == t => {}
                    _ => break,
                }
            }
            if pred(self) {
                return true;
            }
        }
        self.now = deadline.max(self.now);
        false
    }

    /// Timers currently armed (set but not yet fired or popped-cancelled).
    /// Exposed so tests can assert the timer slab does not leak.
    pub fn live_timers(&self) -> usize {
        self.timers.live()
    }

    /// Timer slots ever allocated — bounded by peak concurrent timers, not
    /// by the total number armed over the run (the no-leak property).
    pub fn timer_slots_allocated(&self) -> usize {
        self.timers.allocated()
    }

    /// Installs the regions of the field occupied by other shards'
    /// receivers (already expanded by radio range plus mobility slack).
    /// A finished transmission whose disc touches one of them is exported
    /// through [`World::take_border_outbox`]. The shard coordinator
    /// refreshes these each synchronization window.
    pub fn set_export_regions(&mut self, regions: Vec<Rect>) {
        self.export_regions = regions;
    }

    /// Drains the border-crossing transmissions recorded since the last
    /// call, in transmission order.
    pub fn take_border_outbox(&mut self) -> Vec<ForeignFrame> {
        std::mem::take(&mut self.border_outbox)
    }

    /// Schedules a border-crossing transmission from another shard for
    /// delivery at `at` (the next window boundary). Receivers get the same
    /// range/partition/loss checks as local deliveries; carrier sense and
    /// collision interference do not couple across shards.
    pub fn inject_foreign(&mut self, at: SimTime, frame: ForeignFrame) {
        self.push_event(at.max(self.now), EventKind::Foreign(Box::new(frame)));
    }

    /// Bounding box of this shard's own (non-shadow) nodes at the current
    /// time, or `None` when the shard owns no nodes. The coordinator
    /// expands these by radio range plus a mobility slack to build the
    /// export regions other shards filter against.
    pub fn local_node_bounds(&self) -> Option<Rect> {
        let mut bounds: Option<Rect> = None;
        for slot in &self.nodes {
            if slot.shadow {
                continue;
            }
            let p = slot.mobility.position(self.now);
            match &mut bounds {
                Some(r) => r.include(p),
                None => bounds = Some(Rect::new(p, p)),
            }
        }
        bounds
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Timer {
                node,
                token,
                handle,
                epoch,
            } => {
                // Fire (freeing the slab slot) unconditionally; run the
                // callback only for the incarnation that armed the timer.
                if self.timers.fire(handle) {
                    if self.nodes[node.0 as usize].epoch == epoch {
                        self.with_stack(node, |stack, ctx| stack.on_timer(ctx, token));
                    } else {
                        self.stats.stale_events_suppressed += 1;
                    }
                }
            }
            EventKind::MacEnqueue { node, epoch, frame } => {
                if self.nodes[node.0 as usize].epoch != epoch {
                    self.stats.stale_events_suppressed += 1;
                    return;
                }
                self.nodes[node.0 as usize].mac.queue.push_back(*frame);
                self.mac_try(node);
            }
            EventKind::MacTry { node } => {
                // This wake-up *is* the recorded retry (or an earlier one
                // that supersedes it); a fresh deferral may schedule anew.
                self.nodes[node.0 as usize].mac.retry_at = None;
                self.mac_try(node);
            }
            EventKind::TxEnd { tx_id } => self.finish_tx(tx_id),
            EventKind::DeliverBatch(batch) => self.dispatch_batch(*batch),
            EventKind::Deliver { receiver, frame } => {
                self.with_stack(receiver, |stack, ctx| stack.on_frame(ctx, &frame));
            }
            EventKind::TxDone { node, outcome } => {
                self.with_stack(node, |stack, ctx| stack.on_tx_done(ctx, outcome));
            }
            EventKind::Fault { idx } => self.apply_fault(idx as usize),
            EventKind::Foreign(frame) => self.deliver_foreign(*frame),
            EventKind::MobilityChange { node } => {
                let field = self.cfg.field;
                let slot = &mut self.nodes[node.0 as usize];
                slot.mobility.on_change(self.now, &mut self.rng, field);
                let (a, b) = segment_bounds(slot.mobility.as_ref(), self.now);
                if let Some(t) = slot.mobility.next_change() {
                    let t = t.max(self.now + SimDuration::from_micros(1));
                    self.push_event(t, EventKind::MobilityChange { node });
                }
                self.grid.update(node, a, b);
            }
        }
    }

    fn apply_fault(&mut self, idx: usize) {
        let action = self.fault_actions[idx].1.clone();
        match action {
            FaultAction::Crash(node) => self.fault_crash(node, true),
            FaultAction::Leave(node) => self.fault_crash(node, false),
            FaultAction::Restart(node) => self.fault_restart(node),
            FaultAction::Join(node) => self.fault_join(node),
            FaultAction::Cut { a, b } => {
                for &x in &a {
                    for &y in &b {
                        if x != y {
                            self.links_cut.insert(link_key(x, y));
                        }
                    }
                }
                self.stats.partitions_cut += 1;
            }
            FaultAction::Heal { a, b } => {
                for &x in &a {
                    for &y in &b {
                        self.links_cut.remove(&link_key(x, y));
                    }
                }
                self.stats.partitions_healed += 1;
            }
        }
    }

    /// Kills a node: the stack leaves the dispatch path, queued MAC frames
    /// are discarded, and the epoch bump suppresses every timer or delayed
    /// send armed by the dead incarnation when it pops. A frame already on
    /// the air completes — `finish_tx` clears `transmitting` as usual, and
    /// its follow-up `MacTry` finds an empty queue. Crashing an already-dead
    /// node is a no-op.
    fn fault_crash(&mut self, node: NodeId, restartable: bool) {
        let idx = node.0 as usize;
        let Some(stack) = self.nodes[idx].stack.take() else {
            return;
        };
        let slot = &mut self.nodes[idx];
        slot.epoch = slot.epoch.wrapping_add(1);
        slot.mac.queue.clear();
        slot.mac.retry_at = None;
        slot.mac.cw = self.cfg.phy.cw_min;
        if restartable {
            // Parked outside the dispatch path: receives no callbacks, and
            // exists only so a restart factory can salvage its state.
            slot.dormant = Some(stack);
            self.stats.node_crashes += 1;
        } else {
            slot.dormant = None;
            self.stats.node_leaves += 1;
        }
    }

    /// Boots a fresh stack (from the world's factory) at a crashed node's
    /// position. State is lost except what the factory salvages from the
    /// wreck. Restarting a live node is a no-op.
    fn fault_restart(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.nodes[idx].stack.is_some() {
            return;
        }
        let wreck = self.nodes[idx].dormant.take();
        let mut factory = self
            .stack_factory
            .take()
            .expect("FaultAction::Restart requires World::set_stack_factory");
        let fresh = factory(node, wreck.as_deref());
        self.stack_factory = Some(factory);
        self.nodes[idx].stack = Some(fresh);
        self.stats.node_restarts += 1;
        self.with_stack(node, |stack, ctx| stack.on_start(ctx));
    }

    /// First boot of a late joiner parked dormant since world start.
    fn fault_join(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.nodes[idx].stack.is_some() {
            return;
        }
        let Some(stack) = self.nodes[idx].dormant.take() else {
            return;
        };
        self.nodes[idx].stack = Some(stack);
        self.stats.node_joins += 1;
        self.with_stack(node, |stack, ctx| stack.on_start(ctx));
    }

    fn with_stack<F: FnOnce(&mut dyn NetStack, &mut NodeCtx<'_>)>(&mut self, node: NodeId, f: F) {
        let idx = node.0 as usize;
        let mut stack = match self.nodes[idx].stack.take() {
            Some(s) => s,
            None => return,
        };
        // Recycle the command buffer through the free list: callbacks never
        // nest, so steady state is a single warm allocation for the whole
        // run. The heap baseline allocates fresh per callback, reproducing
        // the pre-pool cost model (every callback counts as a pool miss).
        let pooled = self.cfg.exec.queue == QueueMode::Wheel;
        let buf = if pooled { self.cmd_pool.pop() } else { None };
        let buf = match buf {
            Some(b) => {
                self.stats.cmd_pool_hits += 1;
                b
            }
            None => {
                self.stats.cmd_pool_misses += 1;
                Vec::new()
            }
        };
        let mut commands = {
            let mut ctx = NodeCtx {
                now: self.now,
                node,
                rng: &mut self.rng,
                commands: buf,
                timers: &mut self.timers,
                api_calls: &mut self.stats.api_calls,
                state_inserts: &mut self.stats.state_inserts,
            };
            f(stack.as_mut(), &mut ctx);
            ctx.commands
        };
        self.nodes[idx].stack = Some(stack);
        self.apply_commands(node, &mut commands);
        if pooled {
            commands.clear();
            self.cmd_pool.push(commands);
        }
    }

    /// Executes one transmission's whole delivery fan-out — every receiver's
    /// `on_frame` plus the sender's `on_tx_done` — inside a single
    /// stack-entry round trip: one command buffer is claimed once and reused
    /// across every callback, where the per-receiver baseline pays a queue
    /// round trip and a buffer claim per receiver. Callbacks and their
    /// buffered commands run in exactly the per-receiver order (receivers
    /// ascending, sender outcome last), so the RNG stream is identical.
    fn dispatch_batch(&mut self, batch: DeliveryBatch) {
        let DeliveryBatch {
            frame,
            mut receivers,
            sender,
            outcome,
        } = batch;
        let pooled = self.cfg.exec.queue == QueueMode::Wheel;
        let mut commands = match if pooled { self.cmd_pool.pop() } else { None } {
            Some(b) => {
                self.stats.cmd_pool_hits += 1;
                b
            }
            None => {
                self.stats.cmd_pool_misses += 1;
                Vec::new()
            }
        };
        for &receiver in &receivers {
            let idx = receiver.0 as usize;
            let Some(mut stack) = self.nodes[idx].stack.take() else {
                continue;
            };
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    node: receiver,
                    rng: &mut self.rng,
                    commands: std::mem::take(&mut commands),
                    timers: &mut self.timers,
                    api_calls: &mut self.stats.api_calls,
                    state_inserts: &mut self.stats.state_inserts,
                };
                stack.on_frame(&mut ctx, &frame);
                commands = ctx.commands;
            }
            self.nodes[idx].stack = Some(stack);
            self.apply_commands(receiver, &mut commands);
        }
        if let Some(mut stack) = self.nodes[sender.0 as usize].stack.take() {
            {
                let mut ctx = NodeCtx {
                    now: self.now,
                    node: sender,
                    rng: &mut self.rng,
                    commands: std::mem::take(&mut commands),
                    timers: &mut self.timers,
                    api_calls: &mut self.stats.api_calls,
                    state_inserts: &mut self.stats.state_inserts,
                };
                stack.on_tx_done(&mut ctx, outcome);
                commands = ctx.commands;
            }
            self.nodes[sender.0 as usize].stack = Some(stack);
            self.apply_commands(sender, &mut commands);
        }
        if pooled {
            commands.clear();
            self.cmd_pool.push(commands);
        }
        receivers.clear();
        self.recv_pool.push(receivers);
    }

    /// Delivers a border-crossing transmission from another shard: the same
    /// range / partition / Bernoulli-loss checks as a local delivery (in
    /// ascending node order, against this shard's own RNG stream), then one
    /// `on_frame` per surviving receiver. No carrier-sense or collision
    /// coupling — the documented cross-shard tolerance.
    fn deliver_foreign(&mut self, f: ForeignFrame) {
        self.stats.border_rx_injected += 1;
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        match self.cfg.exec.delivery {
            DeliveryMode::Grid => {
                self.grid
                    .candidates_into(f.src_pos, self.cfg.range, &mut candidates)
            }
            DeliveryMode::BruteForce => {
                candidates.clear();
                candidates.extend((0..self.nodes.len() as u32).map(NodeId));
            }
        }
        let mut deliveries: Vec<NodeId> = self.recv_pool.pop().unwrap_or_default();
        for &receiver in &candidates {
            let j = receiver.0 as usize;
            if receiver == f.src || self.nodes[j].stack.is_none() {
                continue;
            }
            let rpos = self.nodes[j].mobility.position(self.now);
            if !f.src_pos.within(&rpos, self.cfg.range) {
                continue;
            }
            if !self.links_cut.is_empty() && self.links_cut.contains(&link_key(f.src, receiver)) {
                self.stats.partition_drops += 1;
                continue;
            }
            if self.cfg.phy.loss_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.phy.loss_rate {
                self.stats.channel_losses += 1;
                continue;
            }
            self.stats.record_delivery(f.kind, f.payload.len());
            deliveries.push(receiver);
        }
        self.candidate_buf = candidates;
        let frame = Frame {
            src: f.src,
            kind: f.kind,
            payload: f.payload,
            seq: f.seq,
        };
        for &receiver in &deliveries {
            self.with_stack(receiver, |stack, ctx| stack.on_frame(ctx, &frame));
        }
        deliveries.clear();
        self.recv_pool.push(deliveries);
    }

    fn apply_commands(&mut self, node: NodeId, commands: &mut Vec<Command>) {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send {
                    payload,
                    kind,
                    token,
                    delay,
                } => {
                    let frame = PendingFrame {
                        payload,
                        kind,
                        token,
                    };
                    if delay == SimDuration::ZERO {
                        self.nodes[node.0 as usize].mac.queue.push_back(frame);
                        self.mac_try(node);
                    } else {
                        self.push_event(
                            self.now + delay,
                            EventKind::MacEnqueue {
                                node,
                                epoch: self.nodes[node.0 as usize].epoch,
                                frame: Box::new(frame),
                            },
                        );
                    }
                }
                Command::SetTimer { handle, at, token } => {
                    self.push_event(
                        at.max(self.now),
                        EventKind::Timer {
                            node,
                            token,
                            handle,
                            epoch: self.nodes[node.0 as usize].epoch,
                        },
                    );
                }
                Command::CancelTimer { handle } => {
                    self.timers.cancel(handle);
                }
            }
        }
    }

    /// Latest end time of any transmission currently audible at `pos`
    /// (excluding transmissions by `except`). A transmission only becomes
    /// audible to carrier sense `sense_delay` after it starts, so two nodes
    /// deciding to transmit within that window of each other will collide.
    fn medium_busy_until(&self, pos: Point, except: NodeId) -> Option<SimTime> {
        self.active_tx
            .iter()
            .filter(|tx| tx.end > self.now && tx.sender != except)
            .filter(|tx| tx.start + self.cfg.phy.sense_delay <= self.now)
            .filter(|tx| tx.sender_pos.within(&pos, self.cfg.range))
            .map(|tx| tx.end)
            .max()
    }

    fn mac_try(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.nodes[idx].mac.transmitting || self.nodes[idx].mac.queue.is_empty() {
            return;
        }
        let pos = self.nodes[idx].mobility.position(self.now);
        if let Some(busy_until) = self.medium_busy_until(pos, node) {
            // Carrier sense: defer to after the busy period plus backoff.
            self.stats.mac_deferrals += 1;
            let mac = &mut self.nodes[idx].mac;
            mac.cw = (mac.cw * 2).min(self.cfg.phy.cw_max);
            let slots = self.rng.gen_range(0..self.nodes[idx].mac.cw) as u64;
            let retry = busy_until + self.cfg.phy.difs + self.cfg.phy.slot * slots;
            // Batch onto an already-queued retry unless this one is
            // strictly earlier — one wake-up per busy burst, not one per
            // deferral.
            if self.nodes[idx].mac.retry_at.is_none_or(|at| retry < at) {
                self.nodes[idx].mac.retry_at = Some(retry);
                self.push_event(retry, EventKind::MacTry { node });
            }
            return;
        }
        let frame = self.nodes[idx]
            .mac
            .queue
            .pop_front()
            .expect("checked non-empty");
        self.nodes[idx].mac.cw = self.cfg.phy.cw_min;
        self.nodes[idx].mac.transmitting = true;

        let duration = self.cfg.phy.tx_duration(frame.payload.len());
        self.longest_air = self.longest_air.max(duration);
        self.next_tx_id += 1;
        self.next_frame_seq += 1;
        let tx_id = self.next_tx_id;
        self.stats.record_tx(idx, frame.kind, frame.payload.len());
        self.active_tx.push(ActiveTx {
            id: tx_id,
            sender: node,
            sender_pos: pos,
            start: self.now,
            end: self.now + duration,
            kind: frame.kind,
            payload: frame.payload,
            token: frame.token,
            seq: self.next_frame_seq,
        });
        self.push_event(self.now + duration, EventKind::TxEnd { tx_id });
    }

    fn finish_tx(&mut self, tx_id: u64) {
        let tx_idx = match self.active_tx.iter().position(|t| t.id == tx_id) {
            Some(i) => i,
            None => return,
        };
        let sender = self.active_tx[tx_idx].sender;
        let sender_pos = self.active_tx[tx_idx].sender_pos;
        let (start, end) = (self.active_tx[tx_idx].start, self.active_tx[tx_idx].end);
        let kind = self.active_tx[tx_idx].kind;
        let token = self.active_tx[tx_idx].token;

        self.nodes[sender.0 as usize].mac.transmitting = false;

        // Work out per-receiver outcomes before dispatching any callbacks so
        // that reactions to this frame cannot affect its own delivery. The
        // grid returns a sorted candidate superset, so the per-receiver
        // checks — and therefore the loss draws from the shared RNG — run
        // in the same node order as the brute-force scan.
        let payload_len = self.active_tx[tx_idx].payload.len() as u64;
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        match self.cfg.exec.delivery {
            DeliveryMode::Grid => {
                self.grid
                    .candidates_into(sender_pos, self.cfg.range, &mut candidates)
            }
            DeliveryMode::BruteForce => {
                candidates.clear();
                candidates.extend((0..self.nodes.len() as u32).map(NodeId));
            }
        }
        let mut deliveries: Vec<NodeId> = self.recv_pool.pop().unwrap_or_default();
        // The time-overlap half of the interference test is per-transmission,
        // not per-receiver: filter the history down to the transmissions that
        // actually overlap [start, end) once, so every receiver below only
        // pays a distance check per *overlapping* sender.
        let mut overlapping = std::mem::take(&mut self.overlap_buf);
        overlapping.clear();
        overlapping.extend(
            self.active_tx
                .iter()
                .filter(|o| o.id != tx_id && o.start < end && o.end > start)
                .map(|o| o.sender_pos),
        );
        for &receiver in &candidates {
            let j = receiver.0 as usize;
            if receiver == sender || self.nodes[j].stack.is_none() {
                continue;
            }
            let rpos = self.nodes[j].mobility.position(self.now);
            if !sender_pos.within(&rpos, self.cfg.range) {
                continue;
            }
            // A cut link suppresses delivery at the receiver without
            // consuming a loss draw — the partition is an addressing/trust
            // severance, not a channel effect, so it must not perturb the
            // RNG stream of unrelated receivers.
            if !self.links_cut.is_empty() && self.links_cut.contains(&link_key(sender, receiver)) {
                self.stats.partition_drops += 1;
                continue;
            }
            // Interference: any other transmission overlapping [start, end)
            // whose sender is audible at the receiver. A transmission by the
            // receiver itself trivially satisfies the distance test, which
            // models half-duplex radios.
            let collided = overlapping.iter().any(|p| p.within(&rpos, self.cfg.range));
            if collided {
                self.stats.collision_drops += 1;
                continue;
            }
            if self.cfg.phy.loss_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.phy.loss_rate {
                self.stats.channel_losses += 1;
                continue;
            }
            self.stats.record_delivery(kind, payload_len as usize);
            deliveries.push(receiver);
        }
        self.candidate_buf = candidates;

        // Sender-side collision feedback: another overlapping transmission
        // whose sender we could hear.
        let sender_collided = overlapping
            .iter()
            .any(|p| p.within(&sender_pos, self.cfg.range));
        if sender_collided {
            self.stats.tx_collisions += 1;
        }
        self.overlap_buf = overlapping;

        // Cheap Arc clone: the same buffer the sender encoded is observed
        // by every receiver.
        let frame = Frame {
            src: sender,
            kind,
            payload: self.active_tx[tx_idx].payload.clone(),
            seq: self.active_tx[tx_idx].seq,
        };
        let outcome = TxOutcome {
            kind,
            token,
            collided: sender_collided,
        };

        // A transmission whose radio disc reaches into another shard's
        // receiver region is exported for window-boundary injection there.
        // The local delivery below is unaffected, so a single-shard run
        // (empty regions) is bit-identical to the pre-sharding engine.
        if !self.export_regions.is_empty()
            && self
                .export_regions
                .iter()
                .any(|r| r.intersects_disc(sender_pos, self.cfg.range))
        {
            self.stats.border_tx_exported += 1;
            self.border_outbox.push(ForeignFrame {
                src: sender,
                src_pos: sender_pos,
                kind,
                payload: frame.payload.clone(),
                seq: frame.seq,
            });
        }

        // Outcomes (and therefore the loss draws) are already settled above;
        // what remains is handing the frame to each receiver's stack. Both
        // event granularities dispatch the exact same callback sequence —
        // receivers ascending, then the sender's outcome — so the toggle is
        // invisible to protocol traces.
        match self.cfg.exec.delivery_events {
            DeliveryEvents::Batched => {
                self.stats.arrival_events += 1;
                self.push_event(
                    self.now,
                    EventKind::DeliverBatch(Box::new(DeliveryBatch {
                        frame,
                        receivers: deliveries,
                        sender,
                        outcome,
                    })),
                );
            }
            DeliveryEvents::PerReceiver => {
                let shared = std::sync::Arc::new(frame);
                for &receiver in &deliveries {
                    self.stats.arrival_events += 1;
                    self.push_event(
                        self.now,
                        EventKind::Deliver {
                            receiver,
                            frame: std::sync::Arc::clone(&shared),
                        },
                    );
                }
                self.push_event(
                    self.now,
                    EventKind::TxDone {
                        node: sender,
                        outcome,
                    },
                );
                deliveries.clear();
                self.recv_pool.push(deliveries);
            }
        }

        // Keep finished transmissions for interference history exactly as
        // long as they can still matter. A finished transmission A affects
        // a later check only if some frame B with `B.start < A.end`
        // overlaps it; any frame still in flight started no earlier than
        // `now - longest_air`, so entries with `A.end + longest_air <= now`
        // can never overlap another check and are pruned. This keeps the
        // per-delivery collision scan O(frames actually concurrent) even in
        // saturated swarms, where a fixed 100 ms horizon retained hundreds
        // of dead entries.
        let horizon = self.longest_air;
        let now = self.now;
        self.active_tx.retain(|t| t.end + horizon > now);
        // Drain the sender's queue if more frames wait.
        self.push_event(self.now, EventKind::MacTry { node: sender });
    }
}

/// Start and end positions of a mobility model's current segment, used to
/// register the node in the spatial grid. Every mobility model moves each
/// coordinate monotonically within a segment (straight-line motion, possibly
/// clamped to the field), so the bounding box of the two endpoints contains
/// the node's exact position at every instant of the segment.
fn segment_bounds(mobility: &dyn Mobility, now: SimTime) -> (Point, Point) {
    let a = mobility.position(now);
    let b = match mobility.next_change() {
        Some(t) => mobility.position(t.max(now)),
        None => a,
    };
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::Stationary;
    use std::any::Any;

    /// Test stack: broadcasts `n` beacons at fixed intervals and records
    /// everything it hears.
    #[derive(Debug, Default)]
    struct Chatter {
        beacons: u32,
        interval_ms: u64,
        heard: Vec<(u64, NodeId)>,
        outcomes: Vec<TxOutcome>,
    }

    impl Chatter {
        fn new(beacons: u32, interval_ms: u64) -> Self {
            Chatter {
                beacons,
                interval_ms,
                ..Chatter::default()
            }
        }
    }

    impl NetStack for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.beacons > 0 {
                ctx.set_timer(SimDuration::from_millis(self.interval_ms), 1);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: &Frame) {
            self.heard.push((frame.seq, frame.src));
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            assert_eq!(token, 1);
            ctx.send_frame(vec![0xAB; 100], FrameKind(9), 0, SimDuration::ZERO);
            self.beacons -= 1;
            if self.beacons > 0 {
                ctx.set_timer(SimDuration::from_millis(self.interval_ms), 1);
            }
        }
        fn on_tx_done(&mut self, _ctx: &mut NodeCtx<'_>, outcome: TxOutcome) {
            self.outcomes.push(outcome);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn lossless() -> WorldConfig {
        let mut cfg = WorldConfig::default();
        cfg.phy.loss_rate = 0.0;
        cfg
    }

    #[test]
    fn in_range_nodes_receive_frames() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(3, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(30.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(1));
        let b_stack: &Chatter = w.stack(b).expect("chatter");
        assert_eq!(b_stack.heard.len(), 3);
        assert!(b_stack.heard.iter().all(|&(_, src)| src == a));
    }

    #[test]
    fn out_of_range_nodes_hear_nothing() {
        let mut w = World::new(lossless());
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(3, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(100.0, 0.0))), // > 60 m range
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.stack::<Chatter>(b).expect("chatter").heard.is_empty());
    }

    #[test]
    fn simultaneous_transmissions_collide() {
        // Both transmitters fire at exactly t=10ms; the observer, in range
        // of both, must receive neither.
        let mut w = World::new(lossless());
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let _b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let c = w.add_node(
            Box::new(Stationary::new(Point::new(5.0, 5.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.stack::<Chatter>(c).expect("chatter").heard.is_empty());
        assert!(w.stats().collision_drops >= 1 || w.stats().mac_deferrals >= 1);
    }

    #[test]
    fn hidden_terminal_collision_at_middle_receiver() {
        // A and B are out of range of each other (120 m apart, 60 m range)
        // but both in range of C in the middle: the classic hidden-terminal
        // case that carrier sensing cannot prevent.
        let mut w = World::new(lossless());
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let _b = w.add_node(
            Box::new(Stationary::new(Point::new(120.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let c = w.add_node(
            Box::new(Stationary::new(Point::new(60.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.stack::<Chatter>(c).expect("chatter").heard.is_empty());
        assert_eq!(w.stats().collision_drops, 2);
    }

    #[test]
    fn carrier_sense_serializes_audible_transmitters() {
        // A and B are in range of each other; B wants to transmit while A's
        // frame is on the air, so B defers and both frames arrive at C.
        let mut cfg = lossless();
        cfg.phy.rate_mbps = 0.1; // stretch air time so overlap would be certain
        let mut w = World::new(cfg);
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let _b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(1, 11)), // 1 ms later: inside A's long frame
        );
        let c = w.add_node(
            Box::new(Stationary::new(Point::new(5.0, 5.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.stack::<Chatter>(c).expect("chatter").heard.len(), 2);
        assert!(w.stats().mac_deferrals >= 1);
    }

    #[test]
    fn batched_mac_retries_never_strand_queued_frames() {
        // B enqueues a burst of beacons while A's long slow frame keeps the
        // medium busy: every beacon's carrier-sense deferral lands in the
        // same busy period, so the retries collapse onto one wake-up event.
        // The batching must still drain B's whole queue once the air clears.
        let mut cfg = lossless();
        cfg.phy.rate_mbps = 0.05; // ~16 ms of air per 100-byte frame
        let mut w = World::new(cfg);
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(5, 1)), // all 5 fall inside A's frame
        );
        let c = w.add_node(
            Box::new(Stationary::new(Point::new(5.0, 5.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(5));
        assert!(w.stats().mac_deferrals >= 4, "burst must hit carrier sense");
        let heard = &w.stack::<Chatter>(c).expect("chatter").heard;
        let from_b = heard.iter().filter(|(_, src)| *src == b).count();
        assert_eq!(from_b, 5, "batched retries must still send every frame");
    }

    #[test]
    fn sender_collision_feedback_reaches_stack() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        w.run_until(SimTime::from_secs(1));
        // Identical start instants: carrier sense cannot help (neither frame
        // was on the air when the other checked), so both collide.
        let oa = &w.stack::<Chatter>(a).expect("chatter").outcomes;
        let ob = &w.stack::<Chatter>(b).expect("chatter").outcomes;
        assert_eq!(oa.len(), 1);
        assert_eq!(ob.len(), 1);
        assert!(oa[0].collided && ob[0].collided);
    }

    #[test]
    fn loss_rate_drops_some_frames() {
        let mut cfg = WorldConfig::default();
        cfg.phy.loss_rate = 0.5;
        cfg.seed = 7;
        let mut w = World::new(cfg);
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(200, 5)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(10));
        let heard = w.stack::<Chatter>(b).expect("chatter").heard.len();
        assert!(
            heard > 50 && heard < 150,
            "heard {heard} of 200 at 50% loss"
        );
        assert!(w.stats().channel_losses > 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let mut w = World::new(WorldConfig {
                seed,
                ..WorldConfig::default()
            });
            for i in 0..6 {
                w.add_node(
                    Box::new(Stationary::new(Point::new(10.0 * i as f64, 0.0))),
                    Box::new(Chatter::new(20, 7 + i as u64)),
                );
            }
            w.run_until(SimTime::from_secs(5));
            (
                w.stats().tx_frames,
                w.stats().delivered,
                w.stats().channel_losses,
                w.stats().collision_drops,
            )
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100)); // different seed, different losses
    }

    #[test]
    fn stats_count_transmissions_per_node_and_kind() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(5, 10)),
        );
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.stats().tx_frames, 5);
        assert_eq!(w.stats().tx_per_node[a.0 as usize], 5);
        assert_eq!(w.stats().tx_by_kind[&FrameKind(9)], 5);
    }

    #[test]
    fn run_until_cond_stops_early() {
        let mut w = World::new(lossless());
        w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(100, 10)),
        );
        let fired = w.run_until_cond(SimTime::from_secs(10), |w| w.stats().tx_frames >= 3);
        assert!(fired);
        assert!(w.now() < SimTime::from_secs(10));
        assert_eq!(w.stats().tx_frames, 3);
    }

    #[test]
    fn neighbors_reflect_positions() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(30.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        let c = w.add_node(
            Box::new(Stationary::new(Point::new(200.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        assert_eq!(w.neighbors_of(a), vec![b]);
        assert_eq!(w.neighbors_of(c), Vec::<NodeId>::new());
    }

    #[test]
    fn timers_cancel() {
        #[derive(Debug, Default)]
        struct Canceller {
            fired: Vec<u64>,
        }
        impl NetStack for Canceller {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let h = ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(h);
            }
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: &Frame) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Canceller::default()),
        );
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.stack::<Canceller>(a).expect("stack").fired, vec![2]);
    }

    /// Runs a mixed stationary/mobile chatter world and returns its trace
    /// fingerprint.
    fn chatter_trace(delivery: DeliveryMode, seed: u64) -> (u64, u64, u64, u64, u64) {
        chatter_trace_with(delivery, QueueMode::default(), seed)
    }

    fn chatter_trace_with(
        delivery: DeliveryMode,
        queue: QueueMode,
        seed: u64,
    ) -> (u64, u64, u64, u64, u64) {
        chatter_trace_full(delivery, queue, DeliveryEvents::default(), seed)
    }

    fn chatter_trace_full(
        delivery: DeliveryMode,
        queue: QueueMode,
        delivery_events: DeliveryEvents,
        seed: u64,
    ) -> (u64, u64, u64, u64, u64) {
        let mut w = World::new(WorldConfig {
            seed,
            exec: ExecProfile {
                delivery,
                queue,
                delivery_events,
                ..ExecProfile::default()
            },
            ..WorldConfig::default()
        });
        for i in 0..12 {
            let p = Point::new(25.0 * i as f64, 10.0 * (i % 3) as f64);
            let mobility: Box<dyn Mobility> = if i % 2 == 0 {
                Box::new(Stationary::new(p))
            } else {
                Box::new(crate::mobility::RandomDirection::new(p))
            };
            w.add_node(mobility, Box::new(Chatter::new(20, 7 + i as u64)));
        }
        w.run_until(SimTime::from_secs(30));
        (
            w.stats().tx_frames,
            w.stats().delivered,
            w.stats().channel_losses,
            w.stats().collision_drops,
            w.stats().delivered_payload_bytes,
        )
    }

    #[test]
    fn grid_and_brute_force_delivery_traces_are_identical() {
        for seed in [1, 7, 99] {
            assert_eq!(
                chatter_trace(DeliveryMode::Grid, seed),
                chatter_trace(DeliveryMode::BruteForce, seed),
                "delivery modes diverged for seed {seed}"
            );
        }
    }

    #[test]
    fn wheel_and_heap_queue_traces_are_identical() {
        for seed in [1, 7, 99] {
            assert_eq!(
                chatter_trace_with(DeliveryMode::Grid, QueueMode::Wheel, seed),
                chatter_trace_with(DeliveryMode::Grid, QueueMode::Heap, seed),
                "queue modes diverged for seed {seed}"
            );
        }
    }

    #[test]
    fn batched_and_per_receiver_delivery_traces_are_identical() {
        for seed in [1, 7, 99] {
            for queue in [QueueMode::Wheel, QueueMode::Heap] {
                assert_eq!(
                    chatter_trace_full(DeliveryMode::Grid, queue, DeliveryEvents::Batched, seed),
                    chatter_trace_full(
                        DeliveryMode::Grid,
                        queue,
                        DeliveryEvents::PerReceiver,
                        seed
                    ),
                    "delivery-event modes diverged for seed {seed} under {queue:?}"
                );
            }
        }
    }

    /// The tentpole invariant: batched mode schedules exactly one arrival
    /// event per transmission, regardless of how many receivers it reaches;
    /// the per-receiver baseline schedules one per successful delivery.
    #[test]
    fn batched_mode_enqueues_one_arrival_event_per_transmission() {
        let run = |delivery_events: DeliveryEvents| {
            let mut cfg = lossless();
            cfg.exec.delivery_events = delivery_events;
            let mut w = World::new(cfg);
            w.add_node(
                Box::new(Stationary::new(Point::new(0.0, 0.0))),
                Box::new(Chatter::new(5, 10)),
            );
            for i in 0..4 {
                w.add_node(
                    Box::new(Stationary::new(Point::new(10.0 + i as f64, 0.0))),
                    Box::new(Chatter::new(0, 0)),
                );
            }
            w.run_until(SimTime::from_secs(1));
            (
                w.stats().tx_frames,
                w.stats().delivered,
                w.stats().arrival_events,
            )
        };
        let (tx, delivered, arrivals) = run(DeliveryEvents::Batched);
        assert_eq!(tx, 5);
        assert_eq!(delivered, 20, "4 receivers x 5 beacons");
        assert_eq!(arrivals, tx, "batched: one arrival event per transmission");
        let (tx, delivered, arrivals) = run(DeliveryEvents::PerReceiver);
        assert_eq!(
            arrivals, delivered,
            "per-receiver: one arrival event per delivery"
        );
        assert_eq!(tx, 5);
    }

    #[test]
    fn batched_delivery_claims_one_command_buffer_per_transmission() {
        // One transmission reaching 4 receivers: the batch claims the pooled
        // buffer once; per-receiver mode claims it once per callback.
        let run = |delivery_events: DeliveryEvents| {
            let mut cfg = lossless();
            cfg.exec.delivery_events = delivery_events;
            let mut w = World::new(cfg);
            w.add_node(
                Box::new(Stationary::new(Point::new(0.0, 0.0))),
                Box::new(Chatter::new(1, 10)),
            );
            for i in 0..4 {
                w.add_node(
                    Box::new(Stationary::new(Point::new(10.0 + i as f64, 0.0))),
                    Box::new(Chatter::new(0, 0)),
                );
            }
            w.run_until(SimTime::from_secs(1));
            w.stats().cmd_pool_hits + w.stats().cmd_pool_misses
        };
        let batched = run(DeliveryEvents::Batched);
        let per_receiver = run(DeliveryEvents::PerReceiver);
        assert!(
            batched + 4 <= per_receiver,
            "batched {batched} claims must undercut per-receiver {per_receiver} \
             by at least the receiver count"
        );
    }

    #[test]
    fn command_pool_recycles_one_buffer() {
        let mut w = World::new(lossless());
        w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(10, 10)),
        );
        w.run_until(SimTime::from_secs(1));
        let s = w.stats();
        assert_eq!(s.cmd_pool_misses, 1, "callbacks never nest: one buffer");
        assert!(s.cmd_pool_hits > 0);
    }

    #[test]
    fn heap_mode_disables_the_command_pool() {
        let mut cfg = lossless();
        cfg.exec.queue = QueueMode::Heap;
        let mut w = World::new(cfg);
        w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(10, 10)),
        );
        w.run_until(SimTime::from_secs(1));
        let s = w.stats();
        assert_eq!(s.cmd_pool_hits, 0);
        assert!(s.cmd_pool_misses > 1, "legacy model allocates per callback");
    }

    /// Regression for the `cancelled_timers` leak: a stack that arms and
    /// cancels a timer every round used to grow the cancellation set without
    /// bound when cancels raced fires; the slab must keep allocation at peak
    /// concurrency and free every slot once its event pops.
    #[test]
    fn cancelled_timers_do_not_accumulate() {
        #[derive(Debug, Default)]
        struct Churner {
            rounds: u32,
            doomed: Option<TimerHandle>,
        }
        impl NetStack for Churner {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: &Frame) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                if token != 1 {
                    return;
                }
                // Cancel last round's decoy (already fired-or-popped by now
                // in some rounds, still pending in others) and arm a new one.
                if let Some(h) = self.doomed.take() {
                    ctx.cancel_timer(h);
                }
                self.doomed = Some(ctx.set_timer(SimDuration::from_millis(3), 2));
                self.rounds += 1;
                if self.rounds < 2_000 {
                    ctx.set_timer(SimDuration::from_millis(1), 1);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        for queue in [QueueMode::Wheel, QueueMode::Heap] {
            let mut cfg = lossless();
            cfg.exec.queue = queue;
            let mut w = World::new(cfg);
            let a = w.add_node(
                Box::new(Stationary::new(Point::new(0.0, 0.0))),
                Box::new(Churner::default()),
            );
            w.run_until(SimTime::from_secs(10));
            assert_eq!(w.stack::<Churner>(a).expect("stack").rounds, 2_000);
            assert_eq!(
                w.live_timers(),
                0,
                "{queue:?}: every armed timer's slot must be freed by run end"
            );
            assert!(
                w.timer_slots_allocated() <= 4,
                "{queue:?}: slot allocation {} exceeds peak concurrency",
                w.timer_slots_allocated()
            );
        }
    }

    #[test]
    fn grid_neighbors_match_brute_force_during_mobile_run() {
        let mut w = World::new(WorldConfig::default());
        for i in 0..20 {
            let p = Point::new(15.0 * i as f64, 280.0 - 14.0 * i as f64);
            w.add_node(
                Box::new(crate::mobility::RandomDirection::new(p)),
                Box::new(Chatter::new(0, 0)),
            );
        }
        for step in 1..=20u64 {
            w.run_until(SimTime::from_secs(step * 3));
            for i in 0..w.node_count() as u32 {
                let n = NodeId(i);
                assert_eq!(
                    w.neighbors_of(n),
                    w.neighbors_of_brute(n),
                    "node {n} at t={}s",
                    step * 3
                );
            }
        }
    }

    #[test]
    fn delivered_frames_share_one_payload_allocation() {
        #[derive(Debug, Default)]
        struct Keeper {
            payloads: Vec<Payload>,
        }
        impl NetStack for Keeper {
            fn on_start(&mut self, _: &mut NodeCtx<'_>) {}
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, frame: &Frame) {
                self.payloads.push(frame.payload.clone());
            }
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(lossless());
        let _tx = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(1, 10)),
        );
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Keeper::default()),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 10.0))),
            Box::new(Keeper::default()),
        );
        w.run_until(SimTime::from_secs(1));
        let pa = &w.stack::<Keeper>(a).expect("keeper").payloads;
        let pb = &w.stack::<Keeper>(b).expect("keeper").payloads;
        assert_eq!(pa.len(), 1);
        assert_eq!(pb.len(), 1);
        assert!(
            Payload::ptr_eq(&pa[0], &pb[0]),
            "receivers must share the sender's buffer"
        );
        assert_eq!(w.stats().delivered_payload_bytes, 200);
    }

    #[test]
    fn zero_range_world_runs_and_delivers_nothing() {
        let mut cfg = lossless();
        cfg.range = 0.0;
        let mut w = World::new(cfg);
        let _a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(3, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(1.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.stack::<Chatter>(b).expect("chatter").heard.is_empty());
        assert_eq!(w.stats().tx_frames, 3);
    }

    #[test]
    fn mobile_node_moves_between_queries() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(crate::mobility::RandomDirection::new(Point::new(
                150.0, 150.0,
            ))),
            Box::new(Chatter::new(0, 0)),
        );
        let p0 = w.position_of(a);
        w.run_until(SimTime::from_secs(30));
        let p1 = w.position_of(a);
        assert!(
            p0.distance(&p1) > 1.0,
            "node did not move: {p0:?} -> {p1:?}"
        );
    }

    /// Satellite regression: a node crashed with armed timers (and a delayed
    /// send in flight toward its MAC queue) must have every pending event's
    /// slab slot freed when it pops — suppressed, not fired into a dead or
    /// restarted incarnation — under both queue modes.
    #[test]
    fn crash_with_armed_timers_frees_slots_and_suppresses_fires() {
        #[derive(Debug, Default)]
        struct Armer;
        impl NetStack for Armer {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                // Retx-style ladder: timers at 100..500 ms plus one delayed
                // send that would hit the MAC queue at 250 ms.
                for i in 1..=5u64 {
                    ctx.set_timer(SimDuration::from_millis(100 * i), i);
                }
                ctx.send_frame(
                    vec![0xCD; 50],
                    FrameKind(9),
                    0,
                    SimDuration::from_millis(250),
                );
            }
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: &Frame) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
                // Only the 100 ms rung fires before the 150 ms crash; it
                // transmits so the test can count pre-crash activity.
                ctx.send_frame(vec![0xEE; 20], FrameKind(9), 0, SimDuration::ZERO);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        for queue in [QueueMode::Wheel, QueueMode::Heap] {
            let mut cfg = lossless();
            cfg.exec.queue = queue;
            let mut w = World::new(cfg);
            let a = w.add_node(Box::new(Stationary::new(Point::new(0.0, 0.0))), {
                Box::new(Armer) as Box<dyn NetStack>
            });
            w.set_fault_plan(FaultPlan::new().crash_at(SimTime::from_micros(150_000), a));
            w.run_until(SimTime::from_secs(2));
            assert_eq!(w.stats().node_crashes, 1);
            assert_eq!(
                w.stats().tx_frames,
                1,
                "{queue:?}: only the pre-crash timer's frame may air"
            );
            // Four timers (200..500 ms) plus the 250 ms delayed send pop
            // after the crash: all suppressed, none lost.
            assert_eq!(w.stats().stale_events_suppressed, 5, "{queue:?}");
            assert_eq!(
                w.live_timers(),
                0,
                "{queue:?}: suppressed timers must still free their slab slots"
            );
        }
    }

    #[test]
    fn restart_reboots_a_fresh_stack_and_hands_over_the_wreck() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let mut w = World::new(lossless());
        // 20 beacons every 50 ms; crashed at 220 ms after 4 made the air.
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(20, 50)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        let wreck_beacons = Arc::new(AtomicU32::new(u32::MAX));
        let seen = Arc::clone(&wreck_beacons);
        w.set_stack_factory(Box::new(move |_node, wreck| {
            if let Some(old) = wreck.and_then(|s| s.as_any().downcast_ref::<Chatter>()) {
                seen.store(old.beacons, Ordering::Relaxed);
            }
            Box::new(Chatter::new(3, 10))
        }));
        w.set_fault_plan(
            FaultPlan::new()
                .crash_at(SimTime::from_micros(220_000), a)
                .restart_at(SimTime::from_secs(1), a),
        );
        w.run_until(SimTime::from_micros(600_000));
        assert!(!w.node_alive(a), "crashed node must read as dead");
        assert_eq!(w.stack::<Chatter>(b).expect("listener").heard.len(), 4);
        w.run_until(SimTime::from_secs(2));
        assert!(w.node_alive(a));
        assert_eq!(w.stats().node_crashes, 1);
        assert_eq!(w.stats().node_restarts, 1);
        assert_eq!(
            wreck_beacons.load(Ordering::Relaxed),
            16,
            "factory must receive the wreck with its surviving state"
        );
        // 4 pre-crash beacons + 3 from the fresh incarnation; the dead
        // window contributes nothing.
        assert_eq!(w.stack::<Chatter>(b).expect("listener").heard.len(), 7);
    }

    #[test]
    fn late_joiner_stays_dormant_until_its_join_time() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(5, 10)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.set_fault_plan(FaultPlan::new().join_at(SimTime::from_secs(1), a));
        w.run_until(SimTime::from_micros(500_000));
        assert!(!w.node_alive(a), "joiner must be dormant before join time");
        assert!(w.stack::<Chatter>(b).expect("listener").heard.is_empty());
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.stats().node_joins, 1);
        assert_eq!(w.stack::<Chatter>(b).expect("listener").heard.len(), 5);
    }

    #[test]
    fn leave_silences_a_node_permanently() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(100, 50)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.set_fault_plan(FaultPlan::new().leave_at(SimTime::from_micros(320_000), a));
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.stats().node_leaves, 1);
        assert!(!w.node_alive(a));
        assert_eq!(
            w.stack::<Chatter>(b).expect("listener").heard.len(),
            6,
            "only the pre-leave beacons (50..300 ms) may arrive"
        );
    }

    #[test]
    fn partition_blocks_in_range_delivery_until_heal() {
        let mut w = World::new(lossless());
        let a = w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            Box::new(Chatter::new(20, 100)),
        );
        let b = w.add_node(
            Box::new(Stationary::new(Point::new(10.0, 0.0))),
            Box::new(Chatter::new(0, 0)),
        );
        w.set_fault_plan(FaultPlan::new().partition(
            SimTime::ZERO,
            SimTime::from_secs(1),
            [a],
            [b],
        ));
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.stats().partitions_cut, 1);
        assert_eq!(w.stats().partitions_healed, 1);
        let drops = w.stats().partition_drops;
        assert!((8..=10).contains(&drops), "cut window drops: {drops}");
        let heard = w.stack::<Chatter>(b).expect("listener").heard.len() as u64;
        assert_eq!(heard + drops, 20, "every beacon is delivered or cut");
        assert_eq!(w.stats().tx_frames, 20, "the cut must not silence the MAC");
    }

    /// Chatter fingerprint with a full fault plan applied: crash+restart,
    /// late join, permanent leave, and a group partition — the determinism
    /// contract must hold with faults exactly as it does without.
    fn chatter_fault_trace(
        delivery: DeliveryMode,
        queue: QueueMode,
        delivery_events: DeliveryEvents,
        seed: u64,
    ) -> (u64, u64, u64, u64, u64, u64, u64) {
        let mut w = World::new(WorldConfig {
            seed,
            exec: ExecProfile {
                delivery,
                queue,
                delivery_events,
                ..ExecProfile::default()
            },
            ..WorldConfig::default()
        });
        for i in 0..12 {
            let p = Point::new(25.0 * i as f64, 10.0 * (i % 3) as f64);
            let mobility: Box<dyn Mobility> = if i % 2 == 0 {
                Box::new(Stationary::new(p))
            } else {
                Box::new(crate::mobility::RandomDirection::new(p))
            };
            w.add_node(mobility, Box::new(Chatter::new(20, 7 + i as u64)));
        }
        w.set_stack_factory(Box::new(|node, _wreck| {
            Box::new(Chatter::new(20, 7 + node.0 as u64))
        }));
        let group_a = [NodeId(0), NodeId(1), NodeId(2)];
        let group_b = [NodeId(3), NodeId(4), NodeId(5)];
        w.set_fault_plan(
            FaultPlan::new()
                .join_at(SimTime::from_secs(2), NodeId(11))
                .crash_at(SimTime::from_secs(5), NodeId(3))
                .partition(
                    SimTime::from_secs(8),
                    SimTime::from_secs(15),
                    group_a,
                    group_b,
                )
                .restart_at(SimTime::from_secs(12), NodeId(3))
                .leave_at(SimTime::from_secs(20), NodeId(9)),
        );
        w.run_until(SimTime::from_secs(30));
        (
            w.stats().tx_frames,
            w.stats().delivered,
            w.stats().channel_losses,
            w.stats().collision_drops,
            w.stats().delivered_payload_bytes,
            w.stats().partition_drops,
            w.stats().stale_events_suppressed,
        )
    }

    #[test]
    fn fault_traces_identical_across_queue_modes() {
        for seed in [1, 7, 99] {
            assert_eq!(
                chatter_fault_trace(
                    DeliveryMode::Grid,
                    QueueMode::Wheel,
                    DeliveryEvents::default(),
                    seed
                ),
                chatter_fault_trace(
                    DeliveryMode::Grid,
                    QueueMode::Heap,
                    DeliveryEvents::default(),
                    seed
                ),
                "fault-plan queue modes diverged for seed {seed}"
            );
        }
    }

    #[test]
    fn fault_traces_identical_across_delivery_event_modes() {
        for seed in [1, 7] {
            for queue in [QueueMode::Wheel, QueueMode::Heap] {
                assert_eq!(
                    chatter_fault_trace(DeliveryMode::Grid, queue, DeliveryEvents::Batched, seed),
                    chatter_fault_trace(
                        DeliveryMode::Grid,
                        queue,
                        DeliveryEvents::PerReceiver,
                        seed
                    ),
                    "fault-plan delivery-event modes diverged for seed {seed} under {queue:?}"
                );
            }
        }
    }

    #[test]
    fn fault_traces_identical_across_delivery_modes() {
        for seed in [1, 7] {
            assert_eq!(
                chatter_fault_trace(
                    DeliveryMode::Grid,
                    QueueMode::Wheel,
                    DeliveryEvents::default(),
                    seed
                ),
                chatter_fault_trace(
                    DeliveryMode::BruteForce,
                    QueueMode::Wheel,
                    DeliveryEvents::default(),
                    seed
                ),
                "fault-plan delivery modes diverged for seed {seed}"
            );
        }
    }
}
