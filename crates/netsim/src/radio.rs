//! Radio/PHY modelling: frames, frame kinds, and 802.11b-flavoured timing.

use crate::node::NodeId;
use crate::payload::Payload;
use crate::time::SimDuration;
use std::fmt;

/// Protocol-assigned tag identifying what a frame carries, used for the
/// per-kind overhead breakdowns of the paper's Fig. 9b/9h/10b.
///
/// Kind values are allocated by the protocol crates; the simulator treats
/// them opaquely. By convention `0` is "unknown".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FrameKind(pub u16);

impl FrameKind {
    /// The default "unclassified" kind.
    pub const UNKNOWN: FrameKind = FrameKind(0);
}

impl fmt::Debug for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kind#{}", self.0)
    }
}

/// A broadcast MAC frame in flight or delivered.
///
/// The payload is a shared immutable buffer: one broadcast is encoded once
/// and the same allocation is observed by every receiver (and by any
/// upper-layer wire cache that re-forwards it), instead of being cloned per
/// receiver.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Protocol tag for accounting.
    pub kind: FrameKind,
    /// Upper-layer bytes (e.g. an NDN Interest/Data wire encoding).
    pub payload: Payload,
    /// Globally unique transmission sequence number.
    pub seq: u64,
}

impl Frame {
    /// Bytes on the air including the MAC overhead.
    pub fn air_bytes(&self, phy: &PhyConfig) -> usize {
        self.payload.len() + phy.mac_header_bytes
    }
}

/// Physical/MAC layer parameters.
///
/// Defaults model IEEE 802.11b at 11 Mb/s as used in the paper (§VI-B1):
/// 192 µs PLCP preamble+header, 20 µs slots, 50 µs DIFS, 34-byte MAC
/// header+FCS, and a 10 % independent loss rate.
#[derive(Clone, Debug)]
pub struct PhyConfig {
    /// Payload bit rate in megabits per second.
    pub rate_mbps: f64,
    /// PLCP preamble + header duration prepended to every frame.
    pub preamble: SimDuration,
    /// MAC slot time (backoff quantum).
    pub slot: SimDuration,
    /// DIFS idle period before transmission after busy medium.
    pub difs: SimDuration,
    /// How long a transmission must have been on the air before other nodes'
    /// carrier sense detects it. Two nodes starting within this window of
    /// each other collide — the effect PEBA's slotting is designed around.
    pub sense_delay: SimDuration,
    /// MAC header + FCS bytes added to every payload.
    pub mac_header_bytes: usize,
    /// Independent per-receiver loss probability in `[0, 1]`.
    pub loss_rate: f64,
    /// Initial contention window in slots (doubles on deferral).
    pub cw_min: u32,
    /// Maximum contention window in slots.
    pub cw_max: u32,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            rate_mbps: 11.0,
            preamble: SimDuration::from_micros(192),
            slot: SimDuration::from_micros(20),
            difs: SimDuration::from_micros(50),
            sense_delay: SimDuration::from_micros(15),
            mac_header_bytes: 34,
            loss_rate: 0.10,
            cw_min: 32,
            cw_max: 1024,
        }
    }
}

impl PhyConfig {
    /// Air time of a frame with `payload_len` upper-layer bytes.
    pub fn tx_duration(&self, payload_len: usize) -> SimDuration {
        let bits = ((payload_len + self.mac_header_bytes) * 8) as f64;
        let micros = bits / self.rate_mbps; // Mb/s == bits/µs
        self.preamble + SimDuration::from_micros(micros.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_80211b() {
        let phy = PhyConfig::default();
        assert_eq!(phy.rate_mbps, 11.0);
        assert_eq!(phy.loss_rate, 0.10);
    }

    #[test]
    fn tx_duration_scales_with_size() {
        let phy = PhyConfig::default();
        let small = phy.tx_duration(100);
        let large = phy.tx_duration(1000);
        assert!(large > small);
        // 1 KB + 34 B header at 11 Mb/s ≈ 753 µs + 192 µs preamble.
        let expect = 192 + ((1024 + 34) * 8) as u64 * 100 / 1100;
        let got = phy.tx_duration(1024).as_micros();
        assert!(
            (got as i64 - expect as i64).abs() <= 2,
            "got {got}, expect ~{expect}"
        );
    }

    #[test]
    fn zero_payload_still_costs_preamble_and_header() {
        let phy = PhyConfig::default();
        assert!(phy.tx_duration(0) > phy.preamble);
    }

    #[test]
    fn air_bytes_includes_header() {
        let phy = PhyConfig::default();
        let f = Frame {
            src: NodeId(0),
            kind: FrameKind(1),
            payload: vec![0; 100].into(),
            seq: 0,
        };
        assert_eq!(f.air_bytes(&phy), 134);
    }
}
