//! Scripted fault injection: node crash/restart/join/leave and link-level
//! partitions, scheduled as ordinary world events so traces stay
//! deterministic across every queue and delivery mode.
//!
//! A [`FaultPlan`] is a time-ordered script attached to a [`World`] before
//! the run starts ([`World::set_fault_plan`]). Each action becomes one
//! event in the shared `(time, seq)`-ordered queue — the same ordering both
//! [`QueueMode`] implementations pop — so a crash at `t` lands at exactly
//! the same point of the event stream in every mode, and equal seeds keep
//! giving bit-identical traces with the plan applied.
//!
//! Semantics:
//!
//! * **Crash** — the node's radio goes dead and its protocol stack is
//!   dropped from the dispatch path: queued MAC frames are discarded,
//!   armed timers are suppressed when they pop (their slab slots are still
//!   freed — no leak), and the node neither receives nor transmits. A
//!   frame already on the air completes (the radio died, the photons did
//!   not). The dead stack is retained out-of-band solely as the salvage
//!   source for a later restart.
//! * **Restart** — a fresh stack from the world's
//!   [`World::set_stack_factory`] factory replaces the crashed one at the
//!   same position; `on_start` runs as if the node had just booted. The
//!   factory receives the wreck so applications can salvage persisted
//!   state (e.g. a downloader's held segments).
//! * **Join** — the node exists from construction (ids are stable) but its
//!   stack stays dormant until the join time, when `on_start` first runs.
//! * **Leave** — a permanent crash: the stack is dropped for good.
//! * **Cut / heal** — every link between set A and set B is severed at the
//!   delivery layer: an in-range receiver across the cut counts a
//!   `partition_drops` instead of a delivery. Carrier sense and collision
//!   interference are *not* affected — a partition models key/trust or
//!   addressing separation, not RF shielding.
//!
//! [`World`]: crate::world::World
//! [`World::set_fault_plan`]: crate::world::World::set_fault_plan
//! [`World::set_stack_factory`]: crate::world::World::set_stack_factory
//! [`QueueMode`]: crate::world::QueueMode

use crate::node::NodeId;
use crate::time::SimTime;

/// One scripted fault, applied at its scheduled instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the node: radio dead, stack dropped from dispatch.
    Crash(NodeId),
    /// Boot a fresh stack (via the world's stack factory) at the crashed
    /// node's position.
    Restart(NodeId),
    /// First boot of a node that sat dormant since construction.
    Join(NodeId),
    /// Permanent crash; the node never comes back.
    Leave(NodeId),
    /// Sever every link between the two node sets.
    Cut {
        /// One side of the partition.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
    /// Restore every link between the two node sets.
    Heal {
        /// One side of the healed partition.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
}

/// A deterministic, time-ordered fault script for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub(crate) actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Schedules an arbitrary action.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.actions.push((time, action));
        self
    }

    /// Crashes `node` at `time`.
    pub fn crash_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::Crash(node))
    }

    /// Restarts `node` at `time` (requires a stack factory on the world).
    pub fn restart_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::Restart(node))
    }

    /// Boots `node` for the first time at `time`; it sits dormant before.
    pub fn join_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::Join(node))
    }

    /// Removes `node` permanently at `time`.
    pub fn leave_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::Leave(node))
    }

    /// Cuts every link between `a` and `b` at `cut`, healing at `heal`.
    pub fn partition<IA, IB>(self, cut: SimTime, heal: SimTime, a: IA, b: IB) -> Self
    where
        IA: IntoIterator<Item = NodeId>,
        IB: IntoIterator<Item = NodeId>,
    {
        assert!(cut <= heal, "partition must heal at or after its cut");
        let a: Vec<NodeId> = a.into_iter().collect();
        let b: Vec<NodeId> = b.into_iter().collect();
        self.at(
            cut,
            FaultAction::Cut {
                a: a.clone(),
                b: b.clone(),
            },
        )
        .at(heal, FaultAction::Heal { a, b })
    }

    /// The time of the plan's last action (`ZERO` for an empty plan) —
    /// harnesses extend completion deadlines by at least this much.
    pub fn last_event(&self) -> SimTime {
        self.actions
            .iter()
            .map(|&(t, _)| t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether the plan ever joins `node` late (such nodes stay dormant
    /// from world start until their join time).
    pub fn joins(&self, node: NodeId) -> bool {
        self.actions
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::Join(n) if *n == node))
    }

    /// Whether the plan ever restarts `node`.
    pub fn restarts(&self, node: NodeId) -> bool {
        self.actions
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::Restart(n) if *n == node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_actions_in_insertion_order() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(5), NodeId(1))
            .restart_at(SimTime::from_secs(9), NodeId(1))
            .partition(
                SimTime::from_secs(2),
                SimTime::from_secs(12),
                [NodeId(0)],
                [NodeId(1), NodeId(2)],
            );
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.last_event(), SimTime::from_secs(12));
        assert!(plan.restarts(NodeId(1)));
        assert!(!plan.restarts(NodeId(2)));
        assert!(!plan.joins(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "heal")]
    fn partition_rejects_heal_before_cut() {
        let _ = FaultPlan::new().partition(
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            [NodeId(0)],
            [NodeId(1)],
        );
    }
}
