//! Criterion micro-benchmarks for the hot paths of the DAPES stack:
//! bitmap algebra, rarity computation, wire codecs, forwarder pipeline,
//! Merkle verification, and SHA-256.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dapes_core::prelude::*;
use dapes_crypto::merkle::MerkleTree;
use dapes_crypto::sha256::sha256;
use dapes_crypto::signing::TrustAnchor;
use dapes_ndn::prelude::*;
use dapes_netsim::time::SimTime;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("sha256_1kb", |b| b.iter(|| sha256(black_box(&data))));
}

fn bench_bitmap(c: &mut Criterion) {
    let n = 10_240; // the paper's default collection
    let mut a = Bitmap::new(n);
    let mut b = Bitmap::new(n);
    for i in (0..n).step_by(3) {
        a.set(i);
    }
    for i in (0..n).step_by(2) {
        b.set(i);
    }
    c.bench_function("bitmap_marginal_10k", |bch| {
        bch.iter(|| black_box(&a).count_set_and_missing_from(black_box(&b)))
    });
    c.bench_function("bitmap_wire_roundtrip_10k", |bch| {
        bch.iter(|| Bitmap::from_wire(&black_box(&a).to_wire()))
    });
}

fn bench_rarity(c: &mut Criterion) {
    let n = 10_240;
    let bitmaps: Vec<Bitmap> = (0..8)
        .map(|k| {
            let mut b = Bitmap::new(n);
            for i in (k..n).step_by(5) {
                b.set(i);
            }
            b
        })
        .collect();
    c.bench_function("rarity_10k_8peers", |bch| {
        bch.iter(|| dapes_core::rpf::rarity_counts(n, black_box(bitmaps.iter())))
    });
}

fn bench_wire(c: &mut Criterion) {
    let anchor = TrustAnchor::from_seed(b"bench");
    let key = anchor.keypair("p");
    let data = Data::new(
        Name::from_uri("/damaged-bridge-1533783192/file-0/42"),
        vec![0u8; 1024],
    )
    .signed(&key);
    let wire = data.encode();
    c.bench_function("data_encode_1kb", |b| b.iter(|| black_box(&data).encode()));
    c.bench_function("data_decode_1kb", |b| {
        b.iter(|| Data::decode(black_box(&wire)).expect("ok"))
    });
    let interest = Interest::new(Name::from_uri("/damaged-bridge-1533783192/file-0/42"))
        .with_nonce(7)
        .with_app_parameters(vec![0u8; 1288]);
    let iwire = interest.encode();
    c.bench_function("interest_decode_with_bitmap", |b| {
        b.iter(|| Interest::decode(black_box(&iwire)).expect("ok"))
    });
}

fn bench_forwarder(c: &mut Criterion) {
    c.bench_function("forwarder_interest_pipeline", |b| {
        let mut fwd = Forwarder::new(ForwarderConfig::default());
        fwd.fib_mut()
            .register(Name::from_uri("/"), FaceId::WIRELESS);
        let mut nonce = 0u32;
        b.iter(|| {
            nonce = nonce.wrapping_add(1);
            let i = Interest::new(Name::from_uri("/col/f/1")).with_nonce(nonce);
            fwd.process_interest(SimTime::ZERO, black_box(&i), FaceId::APP)
        })
    });
    c.bench_function("cs_prefix_lookup_4k", |b| {
        let mut cs = ContentStore::new(4096);
        for i in 0..4096u32 {
            cs.insert(
                Data::new(Name::from_uri(&format!("/col/f/{i}")), vec![0; 32]),
                SimTime::ZERO,
            );
        }
        let prefix = Name::from_uri("/col/f/2048");
        b.iter(|| cs.lookup(black_box(&prefix), true, false, SimTime::ZERO))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..977u32).map(|i| i.to_be_bytes().to_vec()).collect();
    c.bench_function("merkle_build_977", |b| {
        b.iter(|| MerkleTree::from_leaves(black_box(&leaves).iter().map(|v| v.as_slice())))
    });
    let tree = MerkleTree::from_leaves(leaves.iter().map(|v| v.as_slice()));
    let root = tree.root();
    let hashes: Vec<_> = (0..leaves.len())
        .map(|i| dapes_crypto::merkle::leaf_hash(&leaves[i]))
        .collect();
    c.bench_function("merkle_verify_file_977", |b| {
        b.iter(|| MerkleTree::verify_leaves(black_box(&root), black_box(hashes.clone())))
    });
}

fn bench_peba(c: &mut Criterion) {
    use dapes_netsim::time::SimDuration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut sched = AdvertScheduler::new(
        true,
        SimDuration::from_millis(20),
        SimDuration::from_millis(2),
    );
    let mut union = Bitmap::new(10_240);
    for i in (0..10_240).step_by(2) {
        union.set(i);
    }
    sched.record_transmitted(&union);
    let mut mine = Bitmap::new(10_240);
    for i in (1..10_240).step_by(4) {
        mine.set(i);
    }
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("peba_delay_decision_10k", |b| {
        b.iter(|| sched.delay_for(black_box(&mine), &mut rng))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    use dapes_netsim::wheel::TimerWheel;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // The steady-state scheduler mix at scale: a large standing population
    // of far-future (tombstoned) timers, with near-future events pushed and
    // popped through it. This is the workload where the heap pays O(log n)
    // with cache misses per pop and the wheel stays O(1).
    const STANDING: u64 = 100_000;
    c.bench_function("queue_heap_push_pop_100k_standing", |b| {
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for i in 0..STANDING {
            heap.push(Reverse((30_000_000 + i * 37, i)));
        }
        let mut now = 0u64;
        let mut seq = STANDING;
        b.iter(|| {
            seq += 1;
            now += 13;
            heap.push(Reverse((now, seq)));
            black_box(heap.pop())
        })
    });
    c.bench_function("queue_wheel_push_pop_100k_standing", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        for i in 0..STANDING {
            wheel.push(30_000_000 + i * 37, i, i);
        }
        let mut now = 0u64;
        let mut seq = STANDING;
        b.iter(|| {
            seq += 1;
            now += 13;
            wheel.push(now, seq, seq);
            black_box(wheel.pop())
        })
    });
}

fn bench_peek_vs_decode(c: &mut Criterion) {
    use dapes_netsim::payload::Payload;
    let anchor = TrustAnchor::from_seed(b"bench");
    let key = anchor.keypair("p");
    let interest = Interest::new(Name::from_uri("/damaged-bridge-1533783192/file-0/42"))
        .with_nonce(7)
        .with_hop_limit(4);
    let iwire = Payload::from(interest.encode());
    c.bench_function("interest_decode_payload", |b| {
        b.iter(|| Interest::decode_payload(black_box(&iwire)).expect("ok"))
    });
    c.bench_function("interest_peek_header", |b| {
        b.iter(|| Packet::peek_header(black_box(&iwire)).expect("ok"))
    });
    let data = Data::new(
        Name::from_uri("/damaged-bridge-1533783192/file-0/42"),
        vec![0u8; 1024],
    )
    .signed(&key);
    let dwire = Payload::from(data.encode());
    c.bench_function("data_decode_payload_1kb", |b| {
        b.iter(|| Data::decode_payload(black_box(&dwire)).expect("ok"))
    });
    c.bench_function("data_peek_header_1kb", |b| {
        b.iter(|| Packet::peek_header(black_box(&dwire)).expect("ok"))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_bitmap,
    bench_rarity,
    bench_wire,
    bench_forwarder,
    bench_merkle,
    bench_peba,
    bench_event_queue,
    bench_peek_vs_decode
);
criterion_main!(benches);
