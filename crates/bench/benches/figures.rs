//! Criterion wrapper around a miniature end-to-end scenario: measures the
//! wall-clock cost of simulating one DAPES trial and one trial of each
//! baseline, so regressions in the protocol or simulator hot paths surface
//! in CI. (The *paper figures* are produced by the `fig*`/`table1`
//! binaries, not by this bench.)

use criterion::{criterion_group, criterion_main, Criterion};
use dapes_bench::{run_trial, Protocol, ScenarioParams};
use dapes_netsim::time::SimTime;

fn tiny() -> ScenarioParams {
    ScenarioParams {
        range: 80.0,
        n_files: 1,
        file_size: 8 * 1024,
        packet_size: 1024,
        seed: 9,
        max_sim: SimTime::from_secs(400),
        stationary: 2,
        mobile_downloaders: 3,
        intermediates: 1,
        pure_forwarders: 1,
    }
}

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_trial");
    group.sample_size(10);
    group.bench_function("dapes_tiny_swarm", |b| {
        b.iter(|| run_trial(&Protocol::Dapes(Box::default()), &tiny()))
    });
    group.bench_function("bithoc_tiny_swarm", |b| {
        b.iter(|| run_trial(&Protocol::Bithoc, &tiny()))
    });
    group.bench_function("ekta_tiny_swarm", |b| {
        b.iter(|| run_trial(&Protocol::Ekta, &tiny()))
    });
    group.finish();
}

criterion_group!(benches, bench_trials);
criterion_main!(benches);
