//! The paper's simulation scenario (§VI-B1), parameterized.
//!
//! Topology: a 300 m × 300 m field with 4 stationary nodes (repositories)
//! and 40 mobile nodes (random direction, 2–10 m/s). One stationary node
//! seeds the collection; the remaining 3 stationary and 20 mobile nodes
//! download it; 10 mobile nodes are pure forwarders and 10 are intermediate
//! nodes that understand the protocol's semantics (DAPES) or plain routers
//! (baselines).

use dapes_baselines::prelude::{
    BithocConfig, BithocPeer, BithocRole, EktaConfig, EktaPeer, EktaRole, SwarmSpec,
};
use dapes_core::prelude::*;
use dapes_crypto::signing::TrustAnchor;
use dapes_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which protocol stack populates the swarm.
#[derive(Clone, Debug)]
pub enum Protocol {
    /// DAPES with the given configuration.
    Dapes(Box<DapesConfig>),
    /// The Bithoc baseline (DSDV + HELLO floods + TCP-lite).
    Bithoc,
    /// The Ekta baseline (DSR + DHT + UDP).
    Ekta,
}

/// Scenario parameters (defaults follow the paper).
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Radio range in metres.
    pub range: f64,
    /// Files in the collection.
    pub n_files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Packet/piece payload size.
    pub packet_size: usize,
    /// RNG seed (one per trial).
    pub seed: u64,
    /// Hard cap on simulated time.
    pub max_sim: SimTime,
    /// Stationary nodes (first one seeds).
    pub stationary: usize,
    /// Mobile downloaders.
    pub mobile_downloaders: usize,
    /// Intermediate protocol-aware nodes (DAPES) / routers (baselines).
    pub intermediates: usize,
    /// Pure forwarders (DAPES) / routers (baselines).
    pub pure_forwarders: usize,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            range: 60.0,
            n_files: 10,
            file_size: 1_000_000,
            packet_size: 1024,
            seed: 1,
            max_sim: SimTime::from_secs(4_000),
            stationary: 4,
            mobile_downloaders: 20,
            intermediates: 10,
            pure_forwarders: 10,
        }
    }
}

impl ScenarioParams {
    /// Total nodes in the world.
    pub fn total_nodes(&self) -> usize {
        self.stationary + self.mobile_downloaders + self.intermediates + self.pure_forwarders
    }

    /// Number of nodes whose download time is measured.
    pub fn downloader_count(&self) -> usize {
        // All stationary nodes except the seed, plus the mobile downloaders.
        self.stationary.saturating_sub(1) + self.mobile_downloaders
    }
}

/// Outcome of one simulated trial.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Mean download completion time over the measured downloaders, in
    /// seconds; incomplete downloads count as the simulation cap.
    pub avg_download_time_s: f64,
    /// Downloaders that finished within the cap.
    pub completed: usize,
    /// Downloaders measured.
    pub downloaders: usize,
    /// Total frames transmitted by all nodes.
    pub transmissions: u64,
    /// Transmissions by protocol frame kind.
    pub tx_by_kind: BTreeMap<u16, u64>,
    /// Fraction of forwarded Interests that brought data back (DAPES only).
    pub forward_accuracy: Option<f64>,
    /// Peak observed live protocol state in bytes (Table I memory proxy).
    pub memory_bytes: usize,
    /// Event dispatches (Table I context-switch proxy).
    pub event_dispatches: u64,
    /// Layer-boundary API calls (Table I system-call proxy).
    pub api_calls: u64,
    /// State-table insertions (Table I page-fault proxy).
    pub state_inserts: u64,
}

fn stationary_positions(n: usize) -> Vec<Point> {
    // Spread repositories over the field interior.
    let spots = [
        Point::new(75.0, 75.0),
        Point::new(225.0, 75.0),
        Point::new(75.0, 225.0),
        Point::new(225.0, 225.0),
        Point::new(150.0, 150.0),
    ];
    (0..n).map(|i| spots[i % spots.len()]).collect()
}

fn random_point(rng: &mut SmallRng) -> Point {
    Point::new(rng.gen_range(0.0..300.0), rng.gen_range(0.0..300.0))
}

/// Runs one trial of the paper's scenario and collects the metrics.
pub fn run_trial(protocol: &Protocol, params: &ScenarioParams) -> TrialResult {
    let mut world = World::new(WorldConfig {
        range: params.range,
        seed: params.seed,
        ..WorldConfig::default()
    });
    let mut placement_rng = SmallRng::seed_from_u64(params.seed ^ 0x9e3779b97f4a7c15);

    let collection_name = "/damaged-bridge-1533783192";
    let anchor = TrustAnchor::from_seed(b"rural-area-anchor");

    let stationary = stationary_positions(params.stationary);
    let mut downloader_nodes: Vec<NodeId> = Vec::new();

    match protocol {
        Protocol::Dapes(cfg) => {
            let collection = Arc::new(Collection::build(CollectionSpec {
                name: dapes_ndn::name::Name::from_uri(collection_name),
                files: (0..params.n_files)
                    .map(|i| {
                        dapes_core::collection::FileSpec::new(format!("file-{i}"), params.file_size)
                    })
                    .collect(),
                packet_size: params.packet_size,
                format: cfg.metadata_format,
                producer: "resident-a".into(),
            }));
            let want =
                WantPolicy::Collections(vec![dapes_ndn::name::Name::from_uri(collection_name)]);
            let mut next_id = 0u32;
            // Stationary: node 0 seeds, the rest download.
            for (i, pos) in stationary.iter().enumerate() {
                let mut peer = if i == 0 {
                    DapesPeer::new(
                        next_id,
                        (**cfg).clone(),
                        anchor.clone(),
                        WantPolicy::Nothing,
                    )
                } else {
                    DapesPeer::new(next_id, (**cfg).clone(), anchor.clone(), want.clone())
                };
                if i == 0 {
                    peer.add_production(collection.clone());
                }
                let id = world.add_node(Box::new(Stationary::new(*pos)), Box::new(peer));
                if i != 0 {
                    downloader_nodes.push(id);
                }
                next_id += 1;
            }
            // Mobile downloaders.
            for _ in 0..params.mobile_downloaders {
                let peer = DapesPeer::new(next_id, (**cfg).clone(), anchor.clone(), want.clone());
                let id = world.add_node(
                    Box::new(RandomDirection::new(random_point(&mut placement_rng))),
                    Box::new(peer),
                );
                downloader_nodes.push(id);
                next_id += 1;
            }
            // Intermediate DAPES nodes.
            for _ in 0..params.intermediates {
                let peer = DapesPeer::new(
                    next_id,
                    (**cfg).clone(),
                    anchor.clone(),
                    WantPolicy::Nothing,
                );
                world.add_node(
                    Box::new(RandomDirection::new(random_point(&mut placement_rng))),
                    Box::new(peer),
                );
                next_id += 1;
            }
            // Pure forwarders.
            for _ in 0..params.pure_forwarders {
                let peer = DapesPeer::pure_forwarder(next_id, (**cfg).clone(), anchor.clone());
                world.add_node(
                    Box::new(RandomDirection::new(random_point(&mut placement_rng))),
                    Box::new(peer),
                );
                next_id += 1;
            }
        }
        Protocol::Bithoc | Protocol::Ekta => {
            let total_pieces = params.n_files * params.file_size.div_ceil(params.packet_size);
            let spec = SwarmSpec {
                total_pieces,
                pieces_per_file: params.file_size.div_ceil(params.packet_size),
                piece_size: params.packet_size,
            };
            let is_bithoc = matches!(protocol, Protocol::Bithoc);
            // For Ekta, DHT members = all swarm participants (seed + downloaders).
            let member_count = params.stationary + params.mobile_downloaders;
            let members: Vec<u32> = (0..member_count as u32).collect();
            let mut next_id = 0u32;
            let add = |world: &mut World,
                       mobility: Box<dyn Mobility>,
                       brole: BithocRole,
                       erole: EktaRole,
                       next_id: &mut u32| {
                let id = if is_bithoc {
                    world.add_node(
                        mobility,
                        Box::new(BithocPeer::new(
                            *next_id,
                            brole,
                            spec.clone(),
                            BithocConfig::default(),
                        )),
                    )
                } else {
                    world.add_node(
                        mobility,
                        Box::new(EktaPeer::new(
                            *next_id,
                            erole,
                            spec.clone(),
                            members.clone(),
                            EktaConfig::default(),
                        )),
                    )
                };
                *next_id += 1;
                id
            };
            for (i, pos) in stationary.iter().enumerate() {
                let (brole, erole) = if i == 0 {
                    (BithocRole::Seed, EktaRole::Seed)
                } else {
                    (BithocRole::Downloader, EktaRole::Downloader)
                };
                let id = add(
                    &mut world,
                    Box::new(Stationary::new(*pos)),
                    brole,
                    erole,
                    &mut next_id,
                );
                if i != 0 {
                    downloader_nodes.push(id);
                }
            }
            for _ in 0..params.mobile_downloaders {
                let id = add(
                    &mut world,
                    Box::new(RandomDirection::new(random_point(&mut placement_rng))),
                    BithocRole::Downloader,
                    EktaRole::Downloader,
                    &mut next_id,
                );
                downloader_nodes.push(id);
            }
            for _ in 0..(params.intermediates + params.pure_forwarders) {
                add(
                    &mut world,
                    Box::new(RandomDirection::new(random_point(&mut placement_rng))),
                    BithocRole::Router,
                    EktaRole::Router,
                    &mut next_id,
                );
            }
        }
    }

    // Run until every downloader finished (or the cap), sampling memory.
    let mut memory_peak = 0usize;
    let step = SimDuration::from_secs(5);
    let mut now = SimTime::ZERO;
    let all_done = |world: &World, nodes: &[NodeId], protocol: &Protocol| -> bool {
        nodes.iter().all(|&n| match protocol {
            Protocol::Dapes(_) => world
                .stack::<DapesPeer>(n)
                .is_some_and(|p| p.downloads_complete()),
            Protocol::Bithoc => world
                .stack::<BithocPeer>(n)
                .is_some_and(|p| p.is_complete()),
            Protocol::Ekta => world.stack::<EktaPeer>(n).is_some_and(|p| p.is_complete()),
        })
    };
    loop {
        now = (now + step).min(params.max_sim);
        world.run_until(now);
        memory_peak = memory_peak.max(world.live_state_bytes());
        if all_done(&world, &downloader_nodes, protocol) || now >= params.max_sim {
            break;
        }
    }

    // Collect completion times.
    let cap_s = params.max_sim.as_secs_f64();
    let mut completed = 0usize;
    let mut sum_time = 0.0f64;
    let mut fwd_success = 0u64;
    let mut fwd_total = 0u64;
    for &n in &downloader_nodes {
        let t = match protocol {
            Protocol::Dapes(_) => world.stack::<DapesPeer>(n).and_then(|p| p.completed_at()),
            Protocol::Bithoc => world.stack::<BithocPeer>(n).and_then(|p| p.completed_at()),
            Protocol::Ekta => world.stack::<EktaPeer>(n).and_then(|p| p.completed_at()),
        };
        match t {
            Some(t) => {
                completed += 1;
                sum_time += t.as_secs_f64();
            }
            None => sum_time += cap_s,
        }
    }
    if let Protocol::Dapes(_) = protocol {
        for i in 0..world.node_count() {
            if let Some(p) = world.stack::<DapesPeer>(NodeId(i as u32)) {
                let (s, f) = p.forward_counts();
                fwd_success += s;
                fwd_total += s + f;
            }
        }
    }

    let stats = world.stats();
    TrialResult {
        avg_download_time_s: sum_time / downloader_nodes.len().max(1) as f64,
        completed,
        downloaders: downloader_nodes.len(),
        transmissions: stats.tx_frames,
        tx_by_kind: stats.tx_by_kind.iter().map(|(k, v)| (k.0, *v)).collect(),
        forward_accuracy: if fwd_total > 0 {
            Some(fwd_success as f64 / fwd_total as f64)
        } else {
            None
        },
        memory_bytes: memory_peak,
        event_dispatches: stats.event_dispatches,
        api_calls: stats.api_calls,
        state_inserts: stats.state_inserts,
    }
}

/// Runs `trials` seeded trials and reports the 90th percentile of the mean
/// download time and of the transmission count (the paper reports the 90th
/// percentile over ten trials).
pub fn run_trials(protocol: &Protocol, base: &ScenarioParams, trials: usize) -> Summary {
    let mut results = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut p = base.clone();
        p.seed = base.seed + t as u64 * 7919;
        results.push(run_trial(protocol, &p));
    }
    Summary::from_results(results)
}

/// Aggregated trial results.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Per-trial raw results.
    pub trials: Vec<TrialResult>,
    /// 90th percentile of per-trial mean download time (seconds).
    pub p90_download_time_s: f64,
    /// 90th percentile of per-trial transmissions.
    pub p90_transmissions: u64,
    /// Mean forwarding accuracy across trials reporting one.
    pub forward_accuracy: Option<f64>,
}

impl Summary {
    /// Builds the summary from raw trials.
    pub fn from_results(trials: Vec<TrialResult>) -> Self {
        let p90_download_time_s =
            percentile(trials.iter().map(|t| t.avg_download_time_s).collect(), 0.90);
        let p90_transmissions = percentile(
            trials.iter().map(|t| t.transmissions as f64).collect(),
            0.90,
        ) as u64;
        let accs: Vec<f64> = trials.iter().filter_map(|t| t.forward_accuracy).collect();
        let forward_accuracy = if accs.is_empty() {
            None
        } else {
            Some(accs.iter().sum::<f64>() / accs.len() as f64)
        };
        Summary {
            trials,
            p90_download_time_s,
            p90_transmissions,
            forward_accuracy,
        }
    }
}

/// Nearest-rank percentile of `values` (q in `[0, 1]`).
pub fn percentile(mut values: Vec<f64>, q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params(seed: u64) -> ScenarioParams {
        ScenarioParams {
            range: 80.0,
            n_files: 1,
            file_size: 4 * 1024,
            packet_size: 1024,
            seed,
            max_sim: SimTime::from_secs(1500),
            stationary: 2,
            mobile_downloaders: 2,
            intermediates: 1,
            pure_forwarders: 1,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(percentile(v.clone(), 0.90), 9.0);
        assert_eq!(percentile(v, 0.5), 5.0);
        assert_eq!(percentile(vec![3.0], 0.9), 3.0);
        assert_eq!(percentile(vec![], 0.9), 0.0);
    }

    #[test]
    fn dapes_tiny_scenario_completes() {
        let r = run_trial(&Protocol::Dapes(Box::default()), &tiny_params(11));
        assert_eq!(r.downloaders, 3);
        assert!(
            r.completed >= 2,
            "expected most downloaders to finish, got {}/{}",
            r.completed,
            r.downloaders
        );
        assert!(r.transmissions > 0);
        assert!(r.memory_bytes > 0);
    }

    #[test]
    fn bithoc_tiny_scenario_completes() {
        let r = run_trial(&Protocol::Bithoc, &tiny_params(12));
        assert!(
            r.completed >= 2,
            "bithoc: {}/{} complete",
            r.completed,
            r.downloaders
        );
    }

    #[test]
    fn ekta_tiny_scenario_completes() {
        let r = run_trial(&Protocol::Ekta, &tiny_params(13));
        assert!(
            r.completed >= 2,
            "ekta: {}/{} complete",
            r.completed,
            r.downloaders
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let p = tiny_params(14);
        let a = run_trial(&Protocol::Dapes(Box::default()), &p);
        let b = run_trial(&Protocol::Dapes(Box::default()), &p);
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.avg_download_time_s, b.avg_download_time_s);
    }
}
