//! A minimal JSON reader for the committed `BENCH_*.json` reports.
//!
//! The workspace is fully offline (no serde), and the reports are small and
//! machine-written, so a compact recursive-descent parser is all the
//! `checkjson` gate needs: parse, then assert the schema (keys present,
//! speedup fields numeric) and render the step-summary table.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the reports stay well inside the
    /// exact-integer range).
    Number(f64),
    /// A string (escape sequences decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with key order normalized.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal(b"true", Value::Bool(true)),
            b'f' => self.literal(b"false", Value::Bool(false)),
            b'n' => self.literal(b"null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad unicode escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar worth of bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Number(-125.0));
        assert_eq!(
            parse(r#""a\"b\nc""#).unwrap(),
            Value::String("a\"b\nc".into())
        );
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(2.0));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_the_report_shapes() {
        let params = crate::sched::SchedParams {
            nodes: 4,
            ..crate::sched::SchedParams::dense()
        };
        let sched = crate::sched::render_report(
            &params,
            &[
                dummy_result(crate::sched::SchedMode::baseline()),
                dummy_result(crate::sched::SchedMode::optimized()),
            ],
            &params,
            &[
                dummy_result(crate::sched::SchedMode::optimized()),
                dummy_result(crate::sched::SchedMode::optimized().with_cores(2)),
            ],
        );
        let v = parse(&sched).expect("sched report parses");
        assert_eq!(
            v.get("scenario").and_then(Value::as_str),
            Some("perf_sched")
        );
        assert!(v
            .get("speedup_events_per_sec")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(v.get("modes").and_then(Value::as_array).unwrap().len(), 2);
        assert_eq!(
            v.get("cores_axis").and_then(Value::as_array).unwrap().len(),
            2
        );
        assert!(v
            .get("shard_speedup_events_per_sec")
            .and_then(Value::as_f64)
            .is_some());
    }

    fn dummy_result(mode: crate::sched::SchedMode) -> crate::sched::SchedResult {
        crate::sched::SchedResult {
            mode,
            wall_secs: 1.0,
            events: 10,
            sim_events: 12,
            events_per_sec: 12.0,
            tx_frames: 1,
            delivered: 2,
            cmd_pool_hits: 0,
            cmd_pool_misses: 0,
            frames_peek_resolved: 0,
            peek_fib_drops: 0,
            peek_prefix_hits: 0,
            frames_relay_patched: 0,
            full_decodes: 0,
            pit_arena_live: 0,
            cs_arena_live: 0,
            arrival_events: 1,
            timer_slots_allocated: 0,
            cores: mode.exec.cores as u64,
            border_tx_exported: 0,
            border_rx_injected: 0,
            sync_windows: 0,
            stats: Default::default(),
        }
    }
}
