//! The fault-injection benchmark: completion rate and time-to-completion
//! under crash-rate × partition-duration sweeps, recorded in
//! `BENCH_faults.json`.
//!
//! Every cell shares one honest layout — a producer and two downloaders,
//! all in radio range — and differs only in the fault plan:
//!
//! * the **crash axis** reboots `crashes` downloaders mid-transfer
//!   (staggered crash instants, each restarting after a fixed outage) and
//!   exercises the salvage/resume path: a restarted downloader re-derives
//!   its missing-segment bitmap and must never re-fetch a held segment;
//! * the **partition axis** cuts downloader 0 off from every other node
//!   for `partition_secs`, healing afterwards. The 30 s cell outlasts the
//!   full retransmission backoff ladder (0.5 s doubling to the 4 s cap
//!   over `max_retx` tries ≈ 23.5 s), so the give-up counter must fire
//!   before the heal.
//!
//! The gate each cell is judged on: every transfer completes after the
//! heal, resumed downloaders re-fetch **zero** held segments, the fault
//! counters account exactly for the plan (crashes, restarts, cuts, heals),
//! and a second run of the cell is bit-identical. Across the sweep at
//! least one cell must exercise each recovery mechanism (resume skips,
//! partition drops, backoff give-ups).

use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

/// Shared workload knobs for every cell.
#[derive(Clone, Debug)]
pub struct FaultParams {
    /// World seed.
    pub seed: u64,
    /// Files in the shared collection.
    pub files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// First crash instant, in simulated microseconds. Staggered by
    /// [`CRASH_STAGGER_US`] per additional crashed downloader; must land
    /// inside the fault-free transfer so salvage has partial state.
    pub crash_at_us: u64,
    /// Outage length between a crash and its restart, in microseconds.
    pub restart_gap_us: u64,
    /// Partition cut instant, in simulated microseconds.
    pub cut_at_us: u64,
    /// Per-cell completion deadline in simulated seconds.
    pub deadline_secs: u64,
}

/// Gap between successive crash instants when several downloaders crash.
pub const CRASH_STAGGER_US: u64 = 400_000;

/// The crash axis: how many downloaders crash and restart.
pub const CRASH_COUNTS: [usize; 3] = [0, 1, 2];

/// The partition axis: how long downloader 0 stays cut off (0 = no cut).
/// The longest cell outlasts the backoff ladder so give-ups must fire.
pub const PARTITION_SECS: [u64; 3] = [0, 8, 30];

impl FaultParams {
    /// The committed-report workload: a ~1.3 s fault-free transfer, so
    /// faults at 0.6–1.6 s land mid-stream.
    pub fn dense() -> Self {
        FaultParams {
            seed: 9,
            files: 4,
            file_size: 32 * 1024,
            crash_at_us: 800_000,
            restart_gap_us: 2_500_000,
            cut_at_us: 600_000,
            deadline_secs: 240,
        }
    }

    /// The CI smoke workload: a smaller collection (fault-free transfer
    /// ~0.9 s) with proportionally earlier fault instants.
    pub fn smoke() -> Self {
        FaultParams {
            seed: 9,
            files: 2,
            file_size: 32 * 1024,
            crash_at_us: 400_000,
            restart_gap_us: 2_500_000,
            cut_at_us: 300_000,
            deadline_secs: 240,
        }
    }

    /// The fault plan for one `(crashes, partition_secs)` cell.
    fn profiles(&self, crashes: usize, partition_secs: u64) -> Vec<FaultProfile> {
        let mut faults = Vec::new();
        for i in 0..crashes {
            let crash = self.crash_at_us + CRASH_STAGGER_US * i as u64;
            faults.push(FaultProfile::CrashRestartDownloader {
                index: i,
                crash: SimTime::from_micros(crash),
                restart: SimTime::from_micros(crash + self.restart_gap_us),
            });
        }
        if partition_secs > 0 {
            faults.push(FaultProfile::IsolateDownloader {
                index: 0,
                cut: SimTime::from_micros(self.cut_at_us),
                heal: SimTime::from_micros(self.cut_at_us + partition_secs * 1_000_000),
            });
        }
        faults
    }
}

/// Outcome of one `(crashes, partition_secs)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultOutcome {
    /// The stable report label, e.g. `crash1-part30`.
    pub label: String,
    /// Downloaders crashed and restarted in this cell.
    pub crashes: usize,
    /// Seconds downloader 0 spent cut off (0 = no partition).
    pub partition_secs: u64,
    /// Whether every downloader finished the transfer.
    pub completed: bool,
    /// Completion time of the slowest downloader, in simulated seconds
    /// (the deadline if incomplete).
    pub completion_secs: f64,
    /// Frames on the air over the whole run.
    pub tx_frames: u64,
    /// Crashes the simulator executed.
    pub node_crashes: u64,
    /// Restarts the simulator executed.
    pub node_restarts: u64,
    /// Partition cuts applied.
    pub partitions_cut: u64,
    /// Partition heals applied.
    pub partitions_healed: u64,
    /// In-range frames dropped on cut links.
    pub partition_drops: u64,
    /// Timer/MAC events from pre-crash stack incarnations that were
    /// suppressed at dispatch.
    pub stale_events_suppressed: u64,
    /// Interest retransmissions across every honest peer.
    pub retransmissions: u64,
    /// Fetches abandoned after the backoff ladder ran dry.
    pub retx_give_ups: u64,
    /// Segments a restarted downloader kept from salvage instead of
    /// re-downloading.
    pub resumed_segments_skipped: u64,
    /// Interests sent for segments salvage already held — a resume bug if
    /// ever non-zero.
    pub resumed_refetch: u64,
    /// Whether a second run of the cell was bit-identical.
    pub deterministic: bool,
    /// Prometheus text-format dump of the cell (simulator counters plus
    /// aggregated peer counters), via [`crate::prom::export`].
    pub prometheus: String,
}

/// Builds and runs one cell (twice — the second run checks determinism).
pub fn run_cell(params: &FaultParams, crashes: usize, partition_secs: u64) -> FaultOutcome {
    let run = || {
        let mut sc = ScenarioBuilder::new(params.seed)
            .collection(params.files, params.file_size)
            .producer_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .downloader_at(0.0, 20.0)
            .faults(params.profiles(crashes, partition_secs))
            .build();
        let done = sc.run_until_complete(SimTime::from_secs(params.deadline_secs));
        (done, sc)
    };
    let (completed, sc) = run();
    let (completed2, sc2) = run();
    let fingerprint = |sc: &Scenario| {
        (
            sc.world.stats().tx_frames,
            sc.world.stats().stale_events_suppressed,
            sc.completion_times(),
        )
    };
    let deterministic = completed == completed2 && fingerprint(&sc) == fingerprint(&sc2);
    let completion_secs = if completed {
        sc.completion_times()
            .into_iter()
            .flatten()
            .map(|t| t.as_micros() as f64 / 1e6)
            .fold(0.0f64, f64::max)
    } else {
        params.deadline_secs as f64
    };
    let stats = sc.world.stats();
    FaultOutcome {
        label: format!("crash{crashes}-part{partition_secs}"),
        crashes,
        partition_secs,
        completed,
        completion_secs,
        tx_frames: stats.tx_frames,
        node_crashes: stats.node_crashes,
        node_restarts: stats.node_restarts,
        partitions_cut: stats.partitions_cut,
        partitions_healed: stats.partitions_healed,
        partition_drops: stats.partition_drops,
        stale_events_suppressed: stats.stale_events_suppressed,
        retransmissions: sc.defense_total(|s| s.retransmissions),
        retx_give_ups: sc.defense_total(|s| s.retx_give_ups),
        resumed_segments_skipped: sc.defense_total(|s| s.resumed_segments_skipped),
        resumed_refetch: sc.defense_total(|s| s.resumed_refetch),
        deterministic,
        prometheus: crate::prom::export(stats, &crate::prom::peer_totals(&sc)),
    }
}

/// Runs the full crash-rate × partition-duration sweep.
pub fn run_all(params: &FaultParams) -> Vec<FaultOutcome> {
    let mut outcomes = Vec::new();
    for &crashes in &CRASH_COUNTS {
        for &secs in &PARTITION_SECS {
            outcomes.push(run_cell(params, crashes, secs));
        }
    }
    outcomes
}

/// The golden gate: completion after heal everywhere, zero resumed
/// re-fetches, exact fault accounting, double-run determinism, and every
/// recovery mechanism exercised somewhere in the sweep. Returns the first
/// violation.
pub fn gate(outcomes: &[FaultOutcome]) -> Result<(), String> {
    if outcomes.is_empty() {
        return Err("the sweep ran no cells".into());
    }
    for o in outcomes {
        let label = &o.label;
        if !o.completed {
            return Err(format!("[{label}] a transfer never completed after heal"));
        }
        if !o.deterministic {
            return Err(format!("[{label}] the double run was not bit-identical"));
        }
        if o.resumed_refetch != 0 {
            return Err(format!(
                "[{label}] a resumed downloader re-fetched {} held segments",
                o.resumed_refetch
            ));
        }
        let crashes = o.crashes as u64;
        if o.node_crashes != crashes || o.node_restarts != crashes {
            return Err(format!(
                "[{label}] fault accounting: {} crashes / {} restarts executed, plan had {crashes}",
                o.node_crashes, o.node_restarts
            ));
        }
        let cuts = u64::from(o.partition_secs > 0);
        if o.partitions_cut != cuts || o.partitions_healed != cuts {
            return Err(format!(
                "[{label}] fault accounting: {} cuts / {} heals executed, plan had {cuts}",
                o.partitions_cut, o.partitions_healed
            ));
        }
        if o.crashes == 0 && (o.resumed_segments_skipped != 0 || o.stale_events_suppressed != 0) {
            return Err(format!(
                "[{label}] crash-free cell shows crash side effects: {} skipped, {} stale",
                o.resumed_segments_skipped, o.stale_events_suppressed
            ));
        }
        if o.partition_secs == 0 && o.partition_drops != 0 {
            return Err(format!(
                "[{label}] partition-free cell dropped {} frames on cut links",
                o.partition_drops
            ));
        }
    }
    // Each recovery mechanism must actually run somewhere in the sweep —
    // a sweep whose faults land outside the transfer proves nothing.
    if !outcomes.iter().any(|o| o.resumed_segments_skipped > 0) {
        return Err("no cell resumed a transfer from salvage".into());
    }
    if !outcomes.iter().any(|o| o.partition_drops > 0) {
        return Err("no cell dropped frames on a cut link".into());
    }
    if !outcomes.iter().any(|o| o.retx_give_ups > 0) {
        return Err("no cell exhausted the backoff ladder".into());
    }
    Ok(())
}

/// Renders the `BENCH_faults.json` document.
pub fn render_report(params: &FaultParams, outcomes: &[FaultOutcome]) -> String {
    fn entry(o: &FaultOutcome) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"label\": \"{}\",\n",
                "    \"crashes\": {},\n",
                "    \"partition_secs\": {},\n",
                "    \"completed\": {},\n",
                "    \"completion_secs\": {:.3},\n",
                "    \"tx_frames\": {},\n",
                "    \"node_crashes\": {},\n",
                "    \"node_restarts\": {},\n",
                "    \"partitions_cut\": {},\n",
                "    \"partitions_healed\": {},\n",
                "    \"partition_drops\": {},\n",
                "    \"stale_events_suppressed\": {},\n",
                "    \"retransmissions\": {},\n",
                "    \"retx_give_ups\": {},\n",
                "    \"resumed_segments_skipped\": {},\n",
                "    \"resumed_refetch\": {},\n",
                "    \"deterministic\": {}\n",
                "  }}"
            ),
            o.label,
            o.crashes,
            o.partition_secs,
            o.completed,
            o.completion_secs,
            o.tx_frames,
            o.node_crashes,
            o.node_restarts,
            o.partitions_cut,
            o.partitions_healed,
            o.partition_drops,
            o.stale_events_suppressed,
            o.retransmissions,
            o.retx_give_ups,
            o.resumed_segments_skipped,
            o.resumed_refetch,
            o.deterministic,
        )
    }
    let entries: Vec<String> = outcomes.iter().map(entry).collect();
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"faults\",\n",
            "  \"nodes\": 3,\n",
            "  \"seed\": {},\n",
            "  \"files\": {},\n",
            "  \"file_size\": {},\n",
            "  \"cells\": [{}]\n",
            "}}\n"
        ),
        params.seed,
        params.files,
        params.file_size,
        entries.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_cell_completes_with_clean_fault_counters() {
        let o = run_cell(&FaultParams::smoke(), 0, 0);
        assert!(o.completed);
        assert!(o.deterministic);
        assert_eq!(o.node_crashes, 0);
        assert_eq!(o.partition_drops, 0);
        assert_eq!(o.resumed_segments_skipped, 0);
        assert_eq!(o.resumed_refetch, 0);
    }

    #[test]
    fn crash_cell_resumes_without_refetching() {
        let o = run_cell(&FaultParams::smoke(), 1, 0);
        assert!(o.completed, "{o:?}");
        assert_eq!(o.node_crashes, 1);
        assert_eq!(o.node_restarts, 1);
        assert!(o.resumed_segments_skipped > 0, "{o:?}");
        assert_eq!(o.resumed_refetch, 0, "{o:?}");
    }

    #[test]
    fn long_partition_cell_gives_up_and_recovers() {
        let o = run_cell(&FaultParams::smoke(), 0, 30);
        assert!(o.completed, "{o:?}");
        assert!(o.partition_drops > 0, "{o:?}");
        assert!(o.retx_give_ups > 0, "{o:?}");
    }

    #[test]
    fn full_sweep_passes_the_gate_and_renders_valid_json() {
        let outcomes = run_all(&FaultParams::smoke());
        gate(&outcomes).expect("gate");
        let json = render_report(&FaultParams::smoke(), &outcomes);
        let doc = crate::json::parse(&json).expect("report parses");
        crate::check::validate(&doc).expect("report validates");
        assert_eq!(
            doc.get("cells").and_then(|c| c.as_array()).map(|c| c.len()),
            Some(CRASH_COUNTS.len() * PARTITION_SECS.len())
        );
    }
}
