//! Experiment harness reproducing every table and figure of the DAPES
//! paper's evaluation (§VI).
//!
//! Each figure has a binary (`cargo run --release -p dapes-bench --bin
//! fig9a`) and all of them run via the `all` binary. Two profiles exist:
//!
//! * `--profile quick` (default) — the same 44-node topology and sweep axes
//!   with a scaled-down collection, finishing in minutes;
//! * `--profile paper` — the paper's exact workload (10 × 1 MB files, ten
//!   trials), which takes hours.
//!
//! The measured numbers land next to the paper's qualitative expectations;
//! `EXPERIMENTS.md` in the repository root records a full measured-vs-paper
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod check;
pub mod cs;
pub mod faults;
pub mod figures;
pub mod hotpath;
pub mod json;
pub mod profile;
pub mod prom;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod table1;

pub use figures::{run_figure, ALL_EXPERIMENTS};
pub use profile::Profile;
pub use scenario::{run_trial, run_trials, Protocol, ScenarioParams, Summary, TrialResult};
