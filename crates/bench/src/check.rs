//! Schema validation and step-summary rendering for the committed
//! `BENCH_*.json` reports — the library behind the `checkjson` binary.
//!
//! Validation asserts: `scenario` is a string, `nodes` and `seed` are
//! numeric, `speedup_events_per_sec` is a *finite positive* number (NaN and
//! ±Inf — e.g. from a zero-wall-clock division — are rejected, not
//! round-tripped into CI), and every mode entry (the `modes` array for the
//! scheduler report, the `baseline`/`optimized` objects for the hot-path
//! report) carries a string `mode` plus numeric `wall_secs`,
//! `events_per_sec`, `tx_frames` and `delivered`. An empty `modes` array is
//! an error: a report that measured nothing must not pass the gate.

use crate::json::Value;

/// Pulls a required *finite* numeric field out of an object.
fn require_num(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key).map(|f| (f, f.as_f64())) {
        Some((_, Some(n))) if n.is_finite() => Ok(n),
        Some((f, _)) => Err(format!("\"{key}\" must be a finite number, got {f:?}")),
        None => Err(format!("missing \"{key}\"")),
    }
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

/// The mode entries of either report shape, in document order.
pub fn mode_entries(doc: &Value) -> Result<Vec<&Value>, String> {
    if let Some(modes) = doc.get("modes").and_then(Value::as_array) {
        if modes.is_empty() {
            return Err("\"modes\" array is empty — the report measured nothing".into());
        }
        return Ok(modes.iter().collect());
    }
    match (doc.get("baseline"), doc.get("optimized")) {
        (Some(b), Some(o)) => Ok(vec![b, o]),
        _ => Err("neither \"modes\" nor \"baseline\"/\"optimized\" present".into()),
    }
}

/// Validates one parsed report document against the CI schema.
pub fn validate(doc: &Value) -> Result<(), String> {
    require_str(doc, "scenario")?;
    require_num(doc, "nodes")?;
    require_num(doc, "seed")?;
    let speedup = require_num(doc, "speedup_events_per_sec")?;
    if speedup <= 0.0 {
        return Err(format!(
            "\"speedup_events_per_sec\" must be positive, got {speedup}"
        ));
    }
    for entry in mode_entries(doc)? {
        let mode = require_str(entry, "mode")?;
        for key in ["wall_secs", "events_per_sec", "tx_frames", "delivered"] {
            require_num(entry, key).map_err(|e| format!("mode \"{mode}\": {e}"))?;
        }
    }
    Ok(())
}

/// Renders the GitHub-flavoured markdown speedup table for one report.
/// Reports that carry the decode-free relay and arena counters (the
/// scheduler shape) get them as extra columns; older shapes render `-`.
pub fn summary(doc: &Value) -> Result<String, String> {
    let scenario = require_str(doc, "scenario")?;
    let nodes = require_num(doc, "nodes")?;
    let speedup = require_num(doc, "speedup_events_per_sec")?;
    let mut out = format!(
        "### `{scenario}` ({nodes} nodes) — {speedup:.2}x events/sec\n\n\
         | mode | events/sec | wall (s) | vs baseline | relay-patched | PIT live | CS live |\n\
         | --- | ---: | ---: | ---: | ---: | ---: | ---: |\n"
    );
    let entries = mode_entries(doc)?;
    let base_eps = require_num(entries[0], "events_per_sec")?.max(1e-9);
    let opt_u64 = |entry: &Value, key: &str| -> String {
        entry
            .get(key)
            .and_then(Value::as_f64)
            .map_or_else(|| "-".into(), |n| format!("{n:.0}"))
    };
    for entry in entries {
        let mode = require_str(entry, "mode")?;
        let eps = require_num(entry, "events_per_sec")?;
        let wall = require_num(entry, "wall_secs")?;
        out.push_str(&format!(
            "| `{mode}` | {eps:.0} | {wall:.3} | {:.2}x | {} | {} | {} |\n",
            eps / base_eps,
            opt_u64(entry, "frames_relay_patched"),
            opt_u64(entry, "pit_arena_live"),
            opt_u64(entry, "cs_arena_live"),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sched_doc(speedup: &str, modes_body: &str) -> String {
        format!(
            "{{\"scenario\": \"perf_sched\", \"nodes\": 4, \"seed\": 1, \
             \"speedup_events_per_sec\": {speedup}, \"modes\": [{modes_body}]}}"
        )
    }

    fn mode_entry() -> &'static str {
        "{\"mode\": \"heap_eager_perrecv\", \"wall_secs\": 1.0, \
          \"events_per_sec\": 10.0, \"tx_frames\": 5, \"delivered\": 9}"
    }

    #[test]
    fn accepts_a_well_formed_report() {
        let doc = parse(&sched_doc("2.5", mode_entry())).expect("parses");
        assert_eq!(validate(&doc), Ok(()));
        let table = summary(&doc).expect("summary renders");
        assert!(table.contains("`heap_eager_perrecv`"));
        assert!(table.contains("2.50x"));
    }

    #[test]
    fn rejects_nan_and_infinite_speedups() {
        // The report writer formats floats with {:.2}, which renders NaN
        // and infinities as bare words — exactly what a zero-wall-clock
        // division would commit. The parser reads them as nulls/errors;
        // either way validation must name the field.
        for bad in ["null", "\"NaN\"", "\"inf\"", "1e999"] {
            let doc_text = sched_doc(bad, mode_entry());
            let Ok(doc) = parse(&doc_text) else {
                continue; // unparseable is an even earlier failure
            };
            let err = validate(&doc).expect_err(&format!("speedup {bad} must fail"));
            assert!(
                err.contains("speedup_events_per_sec"),
                "error must name the field: {err}"
            );
        }
    }

    #[test]
    fn rejects_zero_and_negative_speedups() {
        for bad in ["0", "-3.5"] {
            let doc = parse(&sched_doc(bad, mode_entry())).expect("parses");
            let err = validate(&doc).expect_err("non-positive speedup");
            assert!(err.contains("must be positive"), "{err}");
        }
    }

    #[test]
    fn rejects_an_empty_modes_array() {
        let doc = parse(&sched_doc("2.0", "")).expect("parses");
        let err = validate(&doc).expect_err("empty modes");
        assert!(err.contains("\"modes\" array is empty"), "{err}");
    }

    #[test]
    fn rejects_non_finite_mode_fields() {
        let entry = "{\"mode\": \"m\", \"wall_secs\": 1e999, \
                     \"events_per_sec\": 10.0, \"tx_frames\": 5, \"delivered\": 9}";
        let doc = parse(&sched_doc("2.0", entry)).expect("parses");
        let err = validate(&doc).expect_err("infinite wall_secs");
        assert!(err.contains("wall_secs") && err.contains("\"m\""), "{err}");
    }

    #[test]
    fn summary_surfaces_relay_and_arena_counters_when_present() {
        let entry = "{\"mode\": \"wheel_lazy_batched_patch\", \"wall_secs\": 0.5, \
                     \"events_per_sec\": 40.0, \"tx_frames\": 5, \"delivered\": 9, \
                     \"frames_relay_patched\": 123, \"pit_arena_live\": 7, \
                     \"cs_arena_live\": 11}";
        let doc = parse(&sched_doc("4.0", entry)).expect("parses");
        let table = summary(&doc).expect("renders");
        assert!(table.contains("| 123 | 7 | 11 |"), "{table}");
        // A report without the counters still renders, with placeholders.
        let old = parse(&sched_doc("4.0", mode_entry())).expect("parses");
        assert!(summary(&old).expect("renders").contains("| - | - | - |"));
    }
}
