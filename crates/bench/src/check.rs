//! Schema validation and step-summary rendering for the committed
//! `BENCH_*.json` reports — the library behind the `checkjson` binary.
//!
//! Validation asserts: `scenario` is a string, `nodes` and `seed` are
//! numeric, `speedup_events_per_sec` is a *finite positive* number (NaN and
//! ±Inf — e.g. from a zero-wall-clock division — are rejected, not
//! round-tripped into CI), and every mode entry (the `modes` array for the
//! scheduler report, the `baseline`/`optimized` objects for the hot-path
//! report) carries a string `mode` plus numeric `wall_secs`,
//! `events_per_sec`, `tx_frames` and `delivered`. An empty `modes` array is
//! an error: a report that measured nothing must not pass the gate.

use crate::json::Value;

/// Pulls a required *finite* numeric field out of an object.
fn require_num(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key).map(|f| (f, f.as_f64())) {
        Some((_, Some(n))) if n.is_finite() => Ok(n),
        Some((f, _)) => Err(format!("\"{key}\" must be a finite number, got {f:?}")),
        None => Err(format!("missing \"{key}\"")),
    }
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

/// The mode entries of either report shape, in document order.
pub fn mode_entries(doc: &Value) -> Result<Vec<&Value>, String> {
    if let Some(modes) = doc.get("modes").and_then(Value::as_array) {
        if modes.is_empty() {
            return Err("\"modes\" array is empty — the report measured nothing".into());
        }
        return Ok(modes.iter().collect());
    }
    match (doc.get("baseline"), doc.get("optimized")) {
        (Some(b), Some(o)) => Ok(vec![b, o]),
        _ => Err("neither \"modes\" nor \"baseline\"/\"optimized\" present".into()),
    }
}

/// The attack modes an adversarial report must cover, exactly once each.
pub const REQUIRED_ATTACK_MODES: [&str; 5] = ["benign", "spoof", "tamper", "replay", "flood"];

/// Per-attack-entry defense counters; all must be present and non-negative.
const ATTACK_COUNTERS: [&str; 8] = [
    "adverts_rejected_bad_sig",
    "adverts_rejected_replay",
    "peers_expired",
    "segments_rejected_tamper",
    "interests_rejected_replay",
    "flood_frames_dropped",
    "hostile_delivered",
    "hostile_sent",
];

/// Validates the adversarial report shape: header fields, one entry per
/// required attack mode, non-negative counters, boolean `completed` and
/// `exact_accounting` flags that are both `true`.
fn validate_adversarial(doc: &Value) -> Result<(), String> {
    require_num(doc, "nodes")?;
    require_num(doc, "seed")?;
    let window = require_num(doc, "replay_window_ms")?;
    if window <= 0.0 {
        return Err(format!(
            "\"replay_window_ms\" must be positive, got {window}"
        ));
    }
    let attacks = doc
        .get("attacks")
        .and_then(Value::as_array)
        .ok_or("\"attacks\" must be an array")?;
    let mut seen = Vec::new();
    for entry in attacks {
        let mode = require_str(entry, "mode")?;
        if seen.contains(&mode.to_string()) {
            return Err(format!("duplicate attack mode \"{mode}\""));
        }
        seen.push(mode.to_string());
        for key in ["completed", "exact_accounting"] {
            match entry.get(key) {
                Some(Value::Bool(true)) => {}
                Some(Value::Bool(false)) => {
                    return Err(format!(
                        "mode \"{mode}\": \"{key}\" is false — gate violated"
                    ))
                }
                _ => return Err(format!("mode \"{mode}\": missing or non-bool \"{key}\"")),
            }
        }
        for key in ["completion_secs", "tx_frames", "overhead_ratio"] {
            let n = require_num(entry, key).map_err(|e| format!("mode \"{mode}\": {e}"))?;
            if n < 0.0 {
                return Err(format!("mode \"{mode}\": \"{key}\" is negative ({n})"));
            }
        }
        for key in ATTACK_COUNTERS {
            let n = require_num(entry, key).map_err(|e| format!("mode \"{mode}\": {e}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "mode \"{mode}\": counter \"{key}\" must be a non-negative integer, got {n}"
                ));
            }
        }
    }
    for required in REQUIRED_ATTACK_MODES {
        if !seen.iter().any(|m| m == required) {
            return Err(format!("missing required attack mode \"{required}\""));
        }
    }
    Ok(())
}

/// Per-cell counters of the fault-injection report; all must be present,
/// non-negative integers.
const FAULT_COUNTERS: [&str; 11] = [
    "crashes",
    "partition_secs",
    "node_crashes",
    "node_restarts",
    "partitions_cut",
    "partitions_healed",
    "partition_drops",
    "stale_events_suppressed",
    "retransmissions",
    "retx_give_ups",
    "resumed_segments_skipped",
];

/// Validates the fault-injection report shape: header fields, per-cell
/// entries with true `completed`/`deterministic` gate flags, non-negative
/// integer counters, a `resumed_refetch` that is exactly zero (any resumed
/// re-fetch is a recovery bug), and sweep-level coverage: at least one
/// cell each with resume skips, partition drops and backoff give-ups.
fn validate_faults(doc: &Value) -> Result<(), String> {
    require_num(doc, "nodes")?;
    require_num(doc, "seed")?;
    let cells = doc
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("\"cells\" must be an array")?;
    if cells.is_empty() {
        return Err("\"cells\" array is empty — the sweep measured nothing".into());
    }
    let mut seen = Vec::new();
    let mut any_resume = false;
    let mut any_drop = false;
    let mut any_give_up = false;
    for entry in cells {
        let label = require_str(entry, "label")?;
        if seen.contains(&label.to_string()) {
            return Err(format!("duplicate cell \"{label}\""));
        }
        seen.push(label.to_string());
        for key in ["completed", "deterministic"] {
            match entry.get(key) {
                Some(Value::Bool(true)) => {}
                Some(Value::Bool(false)) => {
                    return Err(format!(
                        "cell \"{label}\": \"{key}\" is false — gate violated"
                    ))
                }
                _ => return Err(format!("cell \"{label}\": missing or non-bool \"{key}\"")),
            }
        }
        for key in ["completion_secs", "tx_frames"] {
            let n = require_num(entry, key).map_err(|e| format!("cell \"{label}\": {e}"))?;
            if n < 0.0 {
                return Err(format!("cell \"{label}\": \"{key}\" is negative ({n})"));
            }
        }
        for key in FAULT_COUNTERS {
            let n = require_num(entry, key).map_err(|e| format!("cell \"{label}\": {e}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "cell \"{label}\": counter \"{key}\" must be a non-negative integer, got {n}"
                ));
            }
        }
        let refetch =
            require_num(entry, "resumed_refetch").map_err(|e| format!("cell \"{label}\": {e}"))?;
        if refetch != 0.0 {
            return Err(format!(
                "cell \"{label}\": \"resumed_refetch\" is {refetch} — a resumed \
                 downloader re-fetched held segments"
            ));
        }
        let get = |key: &str| entry.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        any_resume |= get("resumed_segments_skipped") > 0.0;
        any_drop |= get("partition_drops") > 0.0;
        any_give_up |= get("retx_give_ups") > 0.0;
    }
    if !any_resume {
        return Err("no cell resumed a transfer from salvage".into());
    }
    if !any_drop {
        return Err("no cell dropped frames on a cut link".into());
    }
    if !any_give_up {
        return Err("no cell exhausted the backoff ladder".into());
    }
    Ok(())
}

/// Validates a Prometheus text-format metrics dump: every non-empty line is
/// a `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// finite, non-negative value and a `dapes_`-prefixed metric name.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if !(rest.starts_with("HELP dapes_") || rest.starts_with("TYPE dapes_")) {
                return Err(format!("line {}: malformed comment {line:?}", i + 1));
            }
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in sample {line:?}", i + 1))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if !name.starts_with("dapes_")
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '{' || c == '}')
        {
            return Err(format!("line {}: bad metric name {name:?}", i + 1));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value_part:?}", i + 1))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "line {}: metric {name} has invalid value {value}",
                i + 1
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in the metrics dump".into());
    }
    Ok(())
}

/// Per-curve-entry counters of the Content Store report; all must be
/// present, non-negative integers.
const CURVE_COUNTERS: [&str; 10] = [
    "budget_bytes",
    "lookups",
    "hits",
    "misses",
    "insertions",
    "refreshes",
    "evictions",
    "rejected_oversize",
    "resident_entries",
    "resident_bytes",
];

/// Validates the Content Store report shape: header fields, a true
/// `fifo_trace_match` gate flag, and per-curve entries with at least
/// three distinct eviction policies, probability-range hit rates,
/// non-negative integer counters that decompose lookups exactly, and
/// true `deterministic`/`audit_clean` flags.
fn validate_cs(doc: &Value) -> Result<(), String> {
    require_num(doc, "nodes")?;
    require_num(doc, "seed")?;
    let objects = require_num(doc, "objects")?;
    if objects < 1.0 {
        return Err(format!("\"objects\" must be positive, got {objects}"));
    }
    match doc.get("fifo_trace_match") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => {
            return Err("\"fifo_trace_match\" is false — gate violated".into())
        }
        _ => return Err("missing or non-bool \"fifo_trace_match\"".into()),
    }
    let curves = doc
        .get("curves")
        .and_then(Value::as_array)
        .ok_or("\"curves\" must be an array")?;
    if curves.is_empty() {
        return Err("\"curves\" array is empty — the sweep measured nothing".into());
    }
    let mut policies: Vec<String> = Vec::new();
    for entry in curves {
        let policy = require_str(entry, "policy")?;
        if !policies.iter().any(|p| p == policy) {
            policies.push(policy.to_string());
        }
        for key in ["deterministic", "audit_clean"] {
            match entry.get(key) {
                Some(Value::Bool(true)) => {}
                Some(Value::Bool(false)) => {
                    return Err(format!(
                        "policy \"{policy}\": \"{key}\" is false — gate violated"
                    ))
                }
                _ => {
                    return Err(format!(
                        "policy \"{policy}\": missing or non-bool \"{key}\""
                    ))
                }
            }
        }
        let hit_rate =
            require_num(entry, "hit_rate").map_err(|e| format!("policy \"{policy}\": {e}"))?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(format!(
                "policy \"{policy}\": \"hit_rate\" must be in [0, 1], got {hit_rate}"
            ));
        }
        for key in CURVE_COUNTERS {
            let n = require_num(entry, key).map_err(|e| format!("policy \"{policy}\": {e}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "policy \"{policy}\": counter \"{key}\" must be a non-negative integer, got {n}"
                ));
            }
        }
        let get = |key: &str| entry.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        if get("hits") + get("misses") != get("lookups") {
            return Err(format!(
                "policy \"{policy}\": hits + misses must equal lookups"
            ));
        }
    }
    if policies.len() < 3 {
        return Err(format!(
            "\"curves\" must cover at least 3 distinct policies, got {}",
            policies.len()
        ));
    }
    Ok(())
}

/// Per-cores-axis-entry counters of the scheduler report; all must be
/// present, non-negative integers.
const CORES_COUNTERS: [&str; 4] = [
    "cores",
    "border_tx_exported",
    "border_rx_injected",
    "sync_windows",
];

/// Validates the sharded cores axis of the scheduler report: a finite
/// positive `shard_speedup_events_per_sec`, a non-empty `cores_axis`
/// whose first entry is the sequential reference (`cores` = 1), and per
/// entry positive timings plus non-negative integer shard counters.
fn validate_cores_axis(doc: &Value) -> Result<(), String> {
    let shard_speedup = require_num(doc, "shard_speedup_events_per_sec")?;
    if shard_speedup <= 0.0 {
        return Err(format!(
            "\"shard_speedup_events_per_sec\" must be positive, got {shard_speedup}"
        ));
    }
    let axis = doc
        .get("cores_axis")
        .and_then(Value::as_array)
        .ok_or("\"cores_axis\" must be an array")?;
    if axis.is_empty() {
        return Err("\"cores_axis\" array is empty — the sharded engine measured nothing".into());
    }
    for (i, entry) in axis.iter().enumerate() {
        let mode = require_str(entry, "mode")?;
        for key in ["wall_secs", "events_per_sec"] {
            let n = require_num(entry, key).map_err(|e| format!("cores entry \"{mode}\": {e}"))?;
            if n <= 0.0 {
                return Err(format!(
                    "cores entry \"{mode}\": \"{key}\" must be positive, got {n}"
                ));
            }
        }
        for key in CORES_COUNTERS {
            let n = require_num(entry, key).map_err(|e| format!("cores entry \"{mode}\": {e}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "cores entry \"{mode}\": counter \"{key}\" must be a non-negative \
                     integer, got {n}"
                ));
            }
        }
        if i == 0 {
            let cores = entry.get("cores").and_then(Value::as_f64).unwrap_or(0.0);
            if cores != 1.0 {
                return Err(format!(
                    "the first cores-axis entry must be the sequential reference \
                     (cores = 1), got {cores}"
                ));
            }
        }
    }
    Ok(())
}

/// Validates one parsed report document against the CI schema. Documents
/// carrying an `attacks` key use the adversarial shape, documents with a
/// `curves` array the Content Store shape, documents with a `cells` array
/// the fault-injection shape; everything else is a perf report (scheduler
/// or hot-path shape).
pub fn validate(doc: &Value) -> Result<(), String> {
    require_str(doc, "scenario")?;
    if doc.get("attacks").is_some() {
        return validate_adversarial(doc);
    }
    if doc.get("curves").is_some() {
        return validate_cs(doc);
    }
    if doc.get("cells").is_some() {
        return validate_faults(doc);
    }
    require_num(doc, "nodes")?;
    require_num(doc, "seed")?;
    let speedup = require_num(doc, "speedup_events_per_sec")?;
    if speedup <= 0.0 {
        return Err(format!(
            "\"speedup_events_per_sec\" must be positive, got {speedup}"
        ));
    }
    for entry in mode_entries(doc)? {
        let mode = require_str(entry, "mode")?;
        for key in ["wall_secs", "events_per_sec", "tx_frames", "delivered"] {
            require_num(entry, key).map_err(|e| format!("mode \"{mode}\": {e}"))?;
        }
    }
    // The scheduler report additionally commits the sharded cores axis;
    // the hot-path shape has no sharded engine and carries neither key.
    if require_str(doc, "scenario")? == "perf_sched" {
        validate_cores_axis(doc)?;
    }
    Ok(())
}

/// Renders the GitHub-flavoured markdown speedup table for one report.
/// Reports that carry the decode-free relay and arena counters (the
/// scheduler shape) get them as extra columns; older shapes render `-`.
pub fn summary(doc: &Value) -> Result<String, String> {
    let scenario = require_str(doc, "scenario")?;
    let nodes = require_num(doc, "nodes")?;
    if let Some(attacks) = doc.get("attacks").and_then(Value::as_array) {
        let mut out = format!(
            "### `{scenario}` ({nodes} nodes) — defenses vs attack modes\n\n\
             | mode | done (s) | overhead | hostile rx | rejected | exact |\n\
             | --- | ---: | ---: | ---: | ---: | --- |\n"
        );
        for entry in attacks {
            let mode = require_str(entry, "mode")?;
            let rejected: f64 = [
                "adverts_rejected_bad_sig",
                "adverts_rejected_replay",
                "segments_rejected_tamper",
                "interests_rejected_replay",
                "flood_frames_dropped",
            ]
            .iter()
            .map(|k| entry.get(k).and_then(Value::as_f64).unwrap_or(0.0))
            .sum();
            out.push_str(&format!(
                "| `{mode}` | {:.2} | {:.1}% | {:.0} | {rejected:.0} | {} |\n",
                require_num(entry, "completion_secs")?,
                require_num(entry, "overhead_ratio")? * 100.0,
                require_num(entry, "hostile_delivered")?,
                if matches!(entry.get("exact_accounting"), Some(Value::Bool(true))) {
                    "yes"
                } else {
                    "NO"
                },
            ));
        }
        return Ok(out);
    }
    if let Some(curves) = doc.get("curves").and_then(Value::as_array) {
        let objects = require_num(doc, "objects")?;
        let mut out = format!(
            "### `{scenario}` ({objects:.0} cached objects) — hit rate vs memory budget\n\n\
             | policy | budget (MiB) | hit rate | evictions | resident | deterministic |\n\
             | --- | ---: | ---: | ---: | ---: | --- |\n"
        );
        for entry in curves {
            let policy = require_str(entry, "policy")?;
            out.push_str(&format!(
                "| `{policy}` | {:.1} | {:.4} | {:.0} | {:.0} | {} |\n",
                require_num(entry, "budget_bytes")? / (1024.0 * 1024.0),
                require_num(entry, "hit_rate")?,
                require_num(entry, "evictions")?,
                require_num(entry, "resident_entries")?,
                if matches!(entry.get("deterministic"), Some(Value::Bool(true))) {
                    "yes"
                } else {
                    "NO"
                },
            ));
        }
        return Ok(out);
    }
    if let Some(cells) = doc.get("cells").and_then(Value::as_array) {
        let mut out = format!(
            "### `{scenario}` ({nodes} nodes) — recovery under crash × partition sweeps\n\n\
             | cell | done (s) | part drops | retx (gave up) | resumed skip | refetch | det |\n\
             | --- | ---: | ---: | ---: | ---: | ---: | --- |\n"
        );
        for entry in cells {
            let label = require_str(entry, "label")?;
            out.push_str(&format!(
                "| `{label}` | {:.2} | {:.0} | {:.0} ({:.0}) | {:.0} | {:.0} | {} |\n",
                require_num(entry, "completion_secs")?,
                require_num(entry, "partition_drops")?,
                require_num(entry, "retransmissions")?,
                require_num(entry, "retx_give_ups")?,
                require_num(entry, "resumed_segments_skipped")?,
                require_num(entry, "resumed_refetch")?,
                if matches!(entry.get("deterministic"), Some(Value::Bool(true))) {
                    "yes"
                } else {
                    "NO"
                },
            ));
        }
        return Ok(out);
    }
    let speedup = require_num(doc, "speedup_events_per_sec")?;
    let mut out = format!(
        "### `{scenario}` ({nodes} nodes) — {speedup:.2}x events/sec\n\n\
         | mode | events/sec | wall (s) | vs baseline | relay-patched | PIT live | CS live |\n\
         | --- | ---: | ---: | ---: | ---: | ---: | ---: |\n"
    );
    let entries = mode_entries(doc)?;
    let base_eps = require_num(entries[0], "events_per_sec")?.max(1e-9);
    let opt_u64 = |entry: &Value, key: &str| -> String {
        entry
            .get(key)
            .and_then(Value::as_f64)
            .map_or_else(|| "-".into(), |n| format!("{n:.0}"))
    };
    for entry in entries {
        let mode = require_str(entry, "mode")?;
        let eps = require_num(entry, "events_per_sec")?;
        let wall = require_num(entry, "wall_secs")?;
        out.push_str(&format!(
            "| `{mode}` | {eps:.0} | {wall:.3} | {:.2}x | {} | {} | {} |\n",
            eps / base_eps,
            opt_u64(entry, "frames_relay_patched"),
            opt_u64(entry, "pit_arena_live"),
            opt_u64(entry, "cs_arena_live"),
        ));
    }
    if let Some(axis) = doc.get("cores_axis").and_then(Value::as_array) {
        if !axis.is_empty() {
            let shard_speedup = doc
                .get("shard_speedup_events_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(1.0);
            let axis_nodes = doc
                .get("cores_axis_nodes")
                .and_then(Value::as_f64)
                .unwrap_or(nodes);
            out.push_str(&format!(
                "\n**Sharded engine** ({axis_nodes:.0} nodes) — {shard_speedup:.2}x \
                 events/sec over the sequential run\n\n\
                 | mode | cores | events/sec | vs 1 core | border tx/rx | windows |\n\
                 | --- | ---: | ---: | ---: | ---: | ---: |\n"
            ));
            let seq_eps = require_num(&axis[0], "events_per_sec")?.max(1e-9);
            for entry in axis {
                let mode = require_str(entry, "mode")?;
                let eps = require_num(entry, "events_per_sec")?;
                out.push_str(&format!(
                    "| `{mode}` | {} | {eps:.0} | {:.2}x | {}/{} | {} |\n",
                    opt_u64(entry, "cores"),
                    eps / seq_eps,
                    opt_u64(entry, "border_tx_exported"),
                    opt_u64(entry, "border_rx_injected"),
                    opt_u64(entry, "sync_windows"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn cores_entry(cores: u64, eps: f64) -> String {
        format!(
            "{{\"mode\": \"wheel_lazy_batched_patch_c{cores}\", \"cores\": {cores}, \
              \"wall_secs\": 1.0, \"events_per_sec\": {eps}, \"tx_frames\": 5, \
              \"delivered\": 9, \"border_tx_exported\": 4, \
              \"border_rx_injected\": 4, \"sync_windows\": 12}}"
        )
    }

    fn sched_doc(speedup: &str, modes_body: &str) -> String {
        format!(
            "{{\"scenario\": \"perf_sched\", \"nodes\": 4, \"seed\": 1, \
             \"speedup_events_per_sec\": {speedup}, \"modes\": [{modes_body}], \
             \"shard_speedup_events_per_sec\": 1.5, \
             \"cores_axis_nodes\": 4, \"cores_axis\": [{}, {}]}}",
            cores_entry(1, 10.0),
            cores_entry(4, 15.0),
        )
    }

    fn mode_entry() -> &'static str {
        "{\"mode\": \"heap_eager_perrecv\", \"wall_secs\": 1.0, \
          \"events_per_sec\": 10.0, \"tx_frames\": 5, \"delivered\": 9}"
    }

    #[test]
    fn accepts_a_well_formed_report() {
        let doc = parse(&sched_doc("2.5", mode_entry())).expect("parses");
        assert_eq!(validate(&doc), Ok(()));
        let table = summary(&doc).expect("summary renders");
        assert!(table.contains("`heap_eager_perrecv`"));
        assert!(table.contains("2.50x"));
        // The sharded cores axis renders as its own table.
        assert!(table.contains("Sharded engine"), "{table}");
        assert!(table.contains("`wheel_lazy_batched_patch_c4`"), "{table}");
        assert!(table.contains("1.50x"), "{table}");
    }

    #[test]
    fn rejects_a_sched_report_without_the_cores_axis() {
        let doc_text = sched_doc("2.5", mode_entry())
            .replace(", \"cores_axis_nodes\": 4", "")
            .replace(
                &format!(
                    ", \"cores_axis\": [{}, {}]",
                    cores_entry(1, 10.0),
                    cores_entry(4, 15.0)
                ),
                "",
            );
        let doc = parse(&doc_text).expect("parses");
        let err = validate(&doc).expect_err("missing cores_axis");
        assert!(err.contains("cores_axis"), "{err}");
    }

    #[test]
    fn rejects_a_cores_axis_not_anchored_at_one_core() {
        let doc_text =
            sched_doc("2.5", mode_entry()).replace(&cores_entry(1, 10.0), &cores_entry(2, 10.0));
        let doc = parse(&doc_text).expect("parses");
        let err = validate(&doc).expect_err("first entry not sequential");
        assert!(err.contains("sequential reference"), "{err}");
    }

    #[test]
    fn rejects_fractional_border_counters() {
        let doc_text = sched_doc("2.5", mode_entry())
            .replace("\"border_tx_exported\": 4", "\"border_tx_exported\": 4.5");
        let doc = parse(&doc_text).expect("parses");
        let err = validate(&doc).expect_err("fractional border counter");
        assert!(err.contains("border_tx_exported"), "{err}");
    }

    #[test]
    fn rejects_a_non_positive_shard_speedup() {
        let doc_text = sched_doc("2.5", mode_entry()).replace(
            "\"shard_speedup_events_per_sec\": 1.5",
            "\"shard_speedup_events_per_sec\": 0",
        );
        let doc = parse(&doc_text).expect("parses");
        let err = validate(&doc).expect_err("zero shard speedup");
        assert!(err.contains("shard_speedup_events_per_sec"), "{err}");
    }

    #[test]
    fn hotpath_shape_needs_no_cores_axis() {
        let doc = parse(
            "{\"scenario\": \"perf_hotpath\", \"nodes\": 4, \"seed\": 1, \
             \"speedup_events_per_sec\": 2.0, \
             \"baseline\": {\"mode\": \"legacy\", \"wall_secs\": 1.0, \
              \"events_per_sec\": 10.0, \"tx_frames\": 5, \"delivered\": 9}, \
             \"optimized\": {\"mode\": \"zero_copy\", \"wall_secs\": 0.5, \
              \"events_per_sec\": 20.0, \"tx_frames\": 5, \"delivered\": 9}}",
        )
        .expect("parses");
        assert_eq!(validate(&doc), Ok(()));
    }

    #[test]
    fn rejects_nan_and_infinite_speedups() {
        // The report writer formats floats with {:.2}, which renders NaN
        // and infinities as bare words — exactly what a zero-wall-clock
        // division would commit. The parser reads them as nulls/errors;
        // either way validation must name the field.
        for bad in ["null", "\"NaN\"", "\"inf\"", "1e999"] {
            let doc_text = sched_doc(bad, mode_entry());
            let Ok(doc) = parse(&doc_text) else {
                continue; // unparseable is an even earlier failure
            };
            let err = validate(&doc).expect_err(&format!("speedup {bad} must fail"));
            assert!(
                err.contains("speedup_events_per_sec"),
                "error must name the field: {err}"
            );
        }
    }

    #[test]
    fn rejects_zero_and_negative_speedups() {
        for bad in ["0", "-3.5"] {
            let doc = parse(&sched_doc(bad, mode_entry())).expect("parses");
            let err = validate(&doc).expect_err("non-positive speedup");
            assert!(err.contains("must be positive"), "{err}");
        }
    }

    #[test]
    fn rejects_an_empty_modes_array() {
        let doc = parse(&sched_doc("2.0", "")).expect("parses");
        let err = validate(&doc).expect_err("empty modes");
        assert!(err.contains("\"modes\" array is empty"), "{err}");
    }

    #[test]
    fn rejects_non_finite_mode_fields() {
        let entry = "{\"mode\": \"m\", \"wall_secs\": 1e999, \
                     \"events_per_sec\": 10.0, \"tx_frames\": 5, \"delivered\": 9}";
        let doc = parse(&sched_doc("2.0", entry)).expect("parses");
        let err = validate(&doc).expect_err("infinite wall_secs");
        assert!(err.contains("wall_secs") && err.contains("\"m\""), "{err}");
    }

    fn attack_entry(mode: &str, extra: &str) -> String {
        format!(
            "{{\"mode\": \"{mode}\", \"completed\": true, \"completion_secs\": 9.5, \
              \"tx_frames\": 120, \"overhead_ratio\": 0.4, \
              \"adverts_rejected_bad_sig\": 0, \"adverts_rejected_replay\": 0, \
              \"peers_expired\": 1, \"segments_rejected_tamper\": 0, \
              \"interests_rejected_replay\": 0, \"flood_frames_dropped\": 0, \
              \"hostile_delivered\": 0, \"hostile_sent\": 0, \
              \"exact_accounting\": true{extra}}}"
        )
    }

    fn adversarial_doc(entries: &[String]) -> String {
        format!(
            "{{\"scenario\": \"adversarial\", \"nodes\": 3, \"seed\": 7, \
             \"replay_window_ms\": 5000, \"attacks\": [{}]}}",
            entries.join(", ")
        )
    }

    fn full_adversarial_doc() -> String {
        let entries: Vec<String> = REQUIRED_ATTACK_MODES
            .iter()
            .map(|m| attack_entry(m, ""))
            .collect();
        adversarial_doc(&entries)
    }

    #[test]
    fn accepts_a_well_formed_adversarial_report() {
        let doc = parse(&full_adversarial_doc()).expect("parses");
        assert_eq!(validate(&doc), Ok(()));
        let table = summary(&doc).expect("summary renders");
        assert!(
            table.contains("`flood`") && table.contains("yes"),
            "{table}"
        );
    }

    #[test]
    fn rejects_adversarial_report_missing_an_attack_mode() {
        let entries: Vec<String> = ["benign", "spoof", "tamper", "replay"]
            .iter()
            .map(|m| attack_entry(m, ""))
            .collect();
        let doc = parse(&adversarial_doc(&entries)).expect("parses");
        let err = validate(&doc).expect_err("missing flood");
        assert!(err.contains("\"flood\""), "{err}");
    }

    #[test]
    fn rejects_negative_and_fractional_defense_counters() {
        for bad in ["-1", "0.5"] {
            let mut entries: Vec<String> = ["benign", "spoof", "tamper", "replay"]
                .iter()
                .map(|m| attack_entry(m, ""))
                .collect();
            entries.push(attack_entry("flood", "").replace(
                "\"flood_frames_dropped\": 0",
                &format!("\"flood_frames_dropped\": {bad}"),
            ));
            let doc = parse(&adversarial_doc(&entries)).expect("parses");
            let err = validate(&doc).expect_err("bad counter");
            assert!(err.contains("flood_frames_dropped"), "{err}");
        }
    }

    #[test]
    fn rejects_failed_accounting_and_incomplete_transfers() {
        for (key, want) in [
            ("exact_accounting", "gate violated"),
            ("completed", "gate violated"),
        ] {
            let mut entries: Vec<String> = ["benign", "spoof", "tamper", "replay"]
                .iter()
                .map(|m| attack_entry(m, ""))
                .collect();
            entries.push(
                attack_entry("flood", "")
                    .replace(&format!("\"{key}\": true"), &format!("\"{key}\": false")),
            );
            let doc = parse(&adversarial_doc(&entries)).expect("parses");
            let err = validate(&doc).expect_err("false gate flag");
            assert!(err.contains(want), "{err}");
        }
    }

    #[test]
    fn rejects_duplicate_attack_modes() {
        let mut entries: Vec<String> = REQUIRED_ATTACK_MODES
            .iter()
            .map(|m| attack_entry(m, ""))
            .collect();
        entries.push(attack_entry("spoof", ""));
        let doc = parse(&adversarial_doc(&entries)).expect("parses");
        let err = validate(&doc).expect_err("duplicate spoof");
        assert!(err.contains("duplicate"), "{err}");
    }

    fn curve_entry(policy: &str) -> String {
        format!(
            "{{\"policy\": \"{policy}\", \"budget_bytes\": 1048576, \
              \"budget_frac\": 0.25, \"hit_rate\": 0.8125, \
              \"lookups\": 16, \"hits\": 13, \"misses\": 3, \
              \"insertions\": 20, \"refreshes\": 1, \"evictions\": 4, \
              \"rejected_oversize\": 0, \"resident_entries\": 16, \
              \"resident_bytes\": 900000, \"trace_fnv\": \"0x00ff\", \
              \"deterministic\": true, \"audit_clean\": true}}"
        )
    }

    fn cs_doc(curves: &[String]) -> String {
        format!(
            "{{\"scenario\": \"cs\", \"nodes\": 1, \"seed\": 42, \
             \"objects\": 1000, \"fifo_trace_match\": true, \
             \"curves\": [{}]}}",
            curves.join(", ")
        )
    }

    fn full_cs_doc() -> String {
        let curves: Vec<String> = ["fifo", "lru", "lfu", "cost"]
            .iter()
            .map(|p| curve_entry(p))
            .collect();
        cs_doc(&curves)
    }

    #[test]
    fn accepts_a_well_formed_cs_report() {
        let doc = parse(&full_cs_doc()).expect("parses");
        assert_eq!(validate(&doc), Ok(()));
        let table = summary(&doc).expect("summary renders");
        assert!(
            table.contains("`lfu`") && table.contains("0.8125"),
            "{table}"
        );
    }

    #[test]
    fn rejects_cs_report_with_fewer_than_three_policies() {
        let curves: Vec<String> = ["fifo", "lru"].iter().map(|p| curve_entry(p)).collect();
        let doc = parse(&cs_doc(&curves)).expect("parses");
        let err = validate(&doc).expect_err("two policies");
        assert!(err.contains("3 distinct policies"), "{err}");
    }

    #[test]
    fn rejects_cs_gate_flag_violations() {
        for (from, to, want) in [
            (
                "\"fifo_trace_match\": true",
                "\"fifo_trace_match\": false",
                "fifo_trace_match",
            ),
            (
                "\"deterministic\": true",
                "\"deterministic\": false",
                "gate violated",
            ),
            (
                "\"audit_clean\": true",
                "\"audit_clean\": false",
                "gate violated",
            ),
        ] {
            let text = full_cs_doc().replacen(from, to, 1);
            let doc = parse(&text).expect("parses");
            let err = validate(&doc).expect_err("false gate flag");
            assert!(err.contains(want), "{err}");
        }
    }

    #[test]
    fn rejects_cs_out_of_range_and_non_decomposing_counters() {
        for (from, to, want) in [
            ("\"hit_rate\": 0.8125", "\"hit_rate\": 1.5", "[0, 1]"),
            ("\"evictions\": 4", "\"evictions\": -4", "non-negative"),
            ("\"hits\": 13", "\"hits\": 12", "must equal lookups"),
        ] {
            let text = full_cs_doc().replacen(from, to, 1);
            let doc = parse(&text).expect("parses");
            let err = validate(&doc).expect_err("bad curve entry");
            assert!(err.contains(want), "{err}");
        }
    }

    fn fault_cell(label: &str, extra_counters: (u64, u64, u64)) -> String {
        let (drops, give_ups, skipped) = extra_counters;
        format!(
            "{{\"label\": \"{label}\", \"crashes\": 1, \"partition_secs\": 8, \
              \"completed\": true, \"completion_secs\": 12.5, \"tx_frames\": 300, \
              \"node_crashes\": 1, \"node_restarts\": 1, \
              \"partitions_cut\": 1, \"partitions_healed\": 1, \
              \"partition_drops\": {drops}, \"stale_events_suppressed\": 2, \
              \"retransmissions\": 9, \"retx_give_ups\": {give_ups}, \
              \"resumed_segments_skipped\": {skipped}, \"resumed_refetch\": 0, \
              \"deterministic\": true}}"
        )
    }

    fn faults_doc(cells: &[String]) -> String {
        format!(
            "{{\"scenario\": \"faults\", \"nodes\": 3, \"seed\": 9, \
             \"files\": 2, \"file_size\": 16384, \"cells\": [{}]}}",
            cells.join(", ")
        )
    }

    fn full_faults_doc() -> String {
        faults_doc(&[
            fault_cell("crash1-part8", (11, 0, 20)),
            fault_cell("crash1-part30", (40, 3, 0)),
        ])
    }

    #[test]
    fn accepts_a_well_formed_faults_report() {
        let doc = parse(&full_faults_doc()).expect("parses");
        assert_eq!(validate(&doc), Ok(()));
        let table = summary(&doc).expect("summary renders");
        assert!(
            table.contains("`crash1-part30`") && table.contains("yes"),
            "{table}"
        );
    }

    #[test]
    fn rejects_faults_gate_flag_violations() {
        for key in ["completed", "deterministic"] {
            let text = full_faults_doc().replacen(
                &format!("\"{key}\": true"),
                &format!("\"{key}\": false"),
                1,
            );
            let doc = parse(&text).expect("parses");
            let err = validate(&doc).expect_err("false gate flag");
            assert!(err.contains("gate violated"), "{err}");
        }
    }

    #[test]
    fn rejects_any_resumed_refetch() {
        let text =
            full_faults_doc().replacen("\"resumed_refetch\": 0", "\"resumed_refetch\": 3", 1);
        let doc = parse(&text).expect("parses");
        let err = validate(&doc).expect_err("non-zero refetch");
        assert!(err.contains("resumed_refetch"), "{err}");
    }

    #[test]
    fn rejects_faults_sweep_missing_a_recovery_mechanism() {
        for (cells, want) in [
            (
                vec![fault_cell("a", (5, 1, 0)), fault_cell("b", (2, 2, 0))],
                "resumed a transfer",
            ),
            (
                vec![fault_cell("a", (0, 1, 9)), fault_cell("b", (0, 2, 1))],
                "cut link",
            ),
            (
                vec![fault_cell("a", (5, 0, 9)), fault_cell("b", (2, 0, 1))],
                "backoff ladder",
            ),
        ] {
            let doc = parse(&faults_doc(&cells)).expect("parses");
            let err = validate(&doc).expect_err("uncovered mechanism");
            assert!(err.contains(want), "{err}");
        }
    }

    #[test]
    fn rejects_faults_bad_counters_and_duplicates() {
        let text =
            full_faults_doc().replacen("\"partition_drops\": 11", "\"partition_drops\": -1", 1);
        let err = validate(&parse(&text).expect("parses")).expect_err("negative counter");
        assert!(err.contains("partition_drops"), "{err}");
        let dup = faults_doc(&[fault_cell("a", (1, 1, 1)), fault_cell("a", (1, 1, 1))]);
        let err = validate(&parse(&dup).expect("parses")).expect_err("duplicate cell");
        assert!(err.contains("duplicate"), "{err}");
        let empty = faults_doc(&[]);
        let err = validate(&parse(&empty).expect("parses")).expect_err("empty cells");
        assert!(err.contains("measured nothing"), "{err}");
    }

    #[test]
    fn prometheus_validator_accepts_well_formed_dumps() {
        let text = "# HELP dapes_tx_frames Frames transmitted.\n\
                    # TYPE dapes_tx_frames counter\n\
                    dapes_tx_frames 42\n\
                    dapes_delivered_by_kind{kind=\"1\"} 7\n";
        assert_eq!(validate_prometheus(text), Ok(()));
    }

    #[test]
    fn prometheus_validator_rejects_bad_lines() {
        for (text, why) in [
            ("", "empty dump"),
            ("# HELP other_metric x\nother_metric 1\n", "foreign prefix"),
            ("dapes_tx_frames -1\n", "negative value"),
            ("dapes_tx_frames NaN\n", "non-finite value"),
            ("dapes_tx_frames\n", "no value"),
        ] {
            assert!(validate_prometheus(text).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn summary_surfaces_relay_and_arena_counters_when_present() {
        let entry = "{\"mode\": \"wheel_lazy_batched_patch\", \"wall_secs\": 0.5, \
                     \"events_per_sec\": 40.0, \"tx_frames\": 5, \"delivered\": 9, \
                     \"frames_relay_patched\": 123, \"pit_arena_live\": 7, \
                     \"cs_arena_live\": 11}";
        let doc = parse(&sched_doc("4.0", entry)).expect("parses");
        let table = summary(&doc).expect("renders");
        assert!(table.contains("| 123 | 7 | 11 |"), "{table}");
        // A report without the counters still renders, with placeholders.
        let old = parse(&sched_doc("4.0", mode_entry())).expect("parses");
        assert!(summary(&old).expect("renders").contains("| - | - | - |"));
    }
}
