//! The hot-path benchmark: measures the simulate-and-forward fast path and
//! records the perf trajectory in `BENCH_hotpath.json`.
//!
//! A dense swarm of beaconing/relaying nodes exercises exactly the three
//! paths this repository's zero-copy refactor attacked:
//!
//! 1. **receiver selection** — spatial grid (O(k)) vs. the original
//!    brute-force O(N) scan per transmission,
//! 2. **frame buffers** — one shared `Payload` per broadcast vs. per-hop
//!    deep copies,
//! 3. **packet encoding** — the encode-once wire cache (seeded by
//!    `decode_payload`) vs. re-encoding every relayed packet.
//!
//! Both modes run the *same protocol trace* (same seeds, same RNG draw
//! order, bit-identical frame counts — asserted by a test below); only the
//! per-event work differs. [`HotpathMode::Legacy`] reproduces the
//! pre-refactor cost model — brute-force delivery scans, fresh `encode()`
//! per transmission, and the deep per-packet clone the Content Store used
//! to make — so the recorded baseline is measured on the same machine and
//! binary as the optimized run.

use dapes_ndn::cs::ContentStore;
use dapes_ndn::name::{Component, Name};
use dapes_ndn::packet::Data;
use dapes_netsim::prelude::*;
use rand::Rng;
use std::any::Any;
use std::time::Instant;

/// Which cost model the run uses. Traces are bit-identical across modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotpathMode {
    /// Pre-refactor cost model: O(N) delivery scan, re-encode per hop,
    /// deep per-packet clones into the cache.
    Legacy,
    /// The zero-copy hot path: spatial grid, shared buffers, wire cache.
    ZeroCopy,
}

impl HotpathMode {
    fn delivery(self) -> DeliveryMode {
        match self {
            HotpathMode::Legacy => DeliveryMode::BruteForce,
            HotpathMode::ZeroCopy => DeliveryMode::Grid,
        }
    }

    /// Label used in the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            HotpathMode::Legacy => "legacy",
            HotpathMode::ZeroCopy => "zero_copy",
        }
    }
}

/// Parameters of the hot-path scenario.
#[derive(Clone, Debug)]
pub struct HotpathParams {
    /// Swarm size (the acceptance scenario uses ≥ 200).
    pub nodes: usize,
    /// Field side in metres (nodes are placed uniformly).
    pub field: f64,
    /// Radio range in metres.
    pub range: f64,
    /// Beacon payload size in bytes.
    pub payload_bytes: usize,
    /// Beacons each node emits, one per second plus jitter.
    pub beacons: u32,
    /// Probability a receiver relays a newly heard packet.
    pub relay_prob: f64,
    /// Nominal gap between a node's beacons in milliseconds (plus jitter).
    pub beacon_period_ms: u64,
    /// Fraction of nodes that random-walk (the rest are stationary).
    pub mobile_fraction: f64,
    /// World seed.
    pub seed: u64,
}

impl HotpathParams {
    /// The acceptance-criteria scenario: a dense 280-node swarm relaying
    /// bulk-transfer segments (16 KiB, aggregated-frame sized) at 50 %
    /// forwarding probability — the workload where per-hop copies and
    /// re-encodes hurt most.
    pub fn dense() -> Self {
        HotpathParams {
            nodes: 280,
            field: 520.0,
            range: 60.0,
            payload_bytes: 16384,
            beacons: 25,
            relay_prob: 0.5,
            beacon_period_ms: 2000,
            mobile_fraction: 0.25,
            seed: 1,
        }
    }

    /// A seconds-scale variant for CI smoke runs.
    pub fn smoke() -> Self {
        HotpathParams {
            nodes: 60,
            field: 240.0,
            beacons: 5,
            payload_bytes: 2048,
            beacon_period_ms: 1000,
            ..HotpathParams::dense()
        }
    }

    fn sim_deadline(&self) -> SimTime {
        // One beacon per period per node, plus drain time.
        SimTime::from_micros((self.beacons as u64 * (self.beacon_period_ms + 200) + 5_000) * 1_000)
    }
}

const KIND_BEACON: FrameKind = FrameKind(40);
const KIND_RELAY: FrameKind = FrameKind(41);

/// A beacon-and-relay stack: emits named Data beacons and floods each newly
/// heard packet onward with some probability, deduplicating via a real
/// [`ContentStore`]. The `mode` selects the legacy or zero-copy cost model;
/// both make identical RNG draws so the traces match.
#[derive(Debug)]
struct RelayStack {
    mode: HotpathMode,
    payload_bytes: usize,
    beacon_period_ms: u64,
    beacons_left: u32,
    seq: u64,
    relay_prob: f64,
    cs: ContentStore,
    /// Bytes this stack deep-copied (encode rebuilds + cache clones);
    /// structurally zero in [`HotpathMode::ZeroCopy`].
    bytes_cloned: u64,
    frames_seen: u64,
}

impl RelayStack {
    fn new(mode: HotpathMode, params: &HotpathParams) -> Self {
        RelayStack {
            mode,
            payload_bytes: params.payload_bytes,
            beacon_period_ms: params.beacon_period_ms,
            beacons_left: params.beacons,
            seq: 0,
            relay_prob: params.relay_prob,
            cs: ContentStore::new(4096),
            bytes_cloned: 0,
            frames_seen: 0,
        }
    }

    fn schedule_beacon(&self, ctx: &mut NodeCtx<'_>) {
        // Nominal period with ±10 % jitter so the swarm never phase-locks.
        let base = self.beacon_period_ms * 900; // 90 % of the period, in µs
        let jitter = ctx.rng().gen_range(0..self.beacon_period_ms * 200);
        ctx.set_timer(SimDuration::from_micros(base + jitter), 1);
    }

    /// Stores `data` in the Content Store under the active cost model: the
    /// pre-refactor insert deep-cloned the packet, so legacy mode rebuilds
    /// name components and content from their bytes to charge exactly the
    /// allocations the old `Data::clone` made; zero-copy mode inserts an
    /// `Arc`-sharing clone.
    fn store(&mut self, data: &Data, now: SimTime) {
        match self.mode {
            HotpathMode::Legacy => {
                let name = Name::from_components(
                    data.name()
                        .components()
                        .iter()
                        .map(|c| Component::from_bytes(c.as_bytes().to_vec()))
                        .collect(),
                );
                let copy = Data::new(name, data.content().to_vec());
                self.bytes_cloned += data.content().len() as u64;
                self.cs.insert(copy, now);
            }
            HotpathMode::ZeroCopy => {
                self.cs.insert(data.clone(), now);
            }
        }
    }
}

impl NetStack for RelayStack {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.schedule_beacon(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if self.beacons_left == 0 {
            return;
        }
        self.beacons_left -= 1;
        self.seq += 1;
        let name = Name::from_uri(&format!("/hotpath/n{}/{}", ctx.node.0, self.seq));
        let data = Data::new(name, vec![0xBE; self.payload_bytes]);
        self.store(&data, ctx.now);
        match self.mode {
            HotpathMode::Legacy => {
                let wire = data.encode();
                self.bytes_cloned += wire.len() as u64;
                ctx.send_frame(wire, KIND_BEACON, 0, SimDuration::ZERO);
            }
            HotpathMode::ZeroCopy => {
                ctx.send_frame(data.wire(), KIND_BEACON, 0, SimDuration::ZERO);
            }
        }
        if self.beacons_left > 0 {
            self.schedule_beacon(ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        self.frames_seen += 1;
        // Every received frame is decoded and cached — the pure-forwarder
        // overhearing behaviour (paper §V-A). The zero-copy decode borrows
        // the content straight out of the received buffer.
        let data = match self.mode {
            HotpathMode::Legacy => Data::decode(&frame.payload),
            HotpathMode::ZeroCopy => Data::decode_payload(&frame.payload),
        };
        let Ok(data) = data else { return };
        self.store(&data, ctx.now);
        // Only first-hand beacons are relayed (a relayed copy carries
        // KIND_RELAY and stops), which bounds the flood without any
        // mode-dependent control flow. One RNG draw per beacon frame in
        // both modes keeps the traces aligned.
        if frame.kind != KIND_BEACON {
            return;
        }
        let relay = ctx.rng().gen::<f64>() < self.relay_prob;
        if !relay {
            return;
        }
        let delay = SimDuration::from_micros(ctx.rng().gen_range(0..20_000));
        match self.mode {
            HotpathMode::Legacy => {
                let wire = data.encode(); // re-encode per hop
                self.bytes_cloned += wire.len() as u64;
                ctx.send_frame(wire, KIND_RELAY, 0, delay);
            }
            HotpathMode::ZeroCopy => {
                // Seeded by decode_payload: the received allocation goes
                // straight back on the air.
                ctx.send_frame(data.wire(), KIND_RELAY, 0, delay);
            }
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.cs.state_bytes()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Measured outcome of one hot-path run.
#[derive(Clone, Debug)]
pub struct HotpathResult {
    /// Which cost model ran.
    pub mode: HotpathMode,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Event dispatches in the run.
    pub events: u64,
    /// Events per wall-clock second — the headline throughput figure.
    pub events_per_sec: f64,
    /// Frames put on the air.
    pub tx_frames: u64,
    /// Per-receiver deliveries.
    pub delivered: u64,
    /// Payload bytes delivered (all via shared buffers).
    pub delivered_payload_bytes: u64,
    /// Bytes deep-copied by the stacks (re-encodes + cache clones).
    pub bytes_cloned: u64,
    /// The full simulator counters of the run, for the shared Prometheus
    /// export.
    pub stats: Stats,
}

/// Runs the hot-path scenario under one cost model.
pub fn run_hotpath(params: &HotpathParams, mode: HotpathMode) -> HotpathResult {
    let mut world = World::new(WorldConfig {
        field: (params.field, params.field),
        range: params.range,
        seed: params.seed,
        exec: ExecProfile::default().with_delivery(mode.delivery()),
        ..WorldConfig::default()
    });
    // Deterministic placement from the scenario seed, independent of the
    // world's RNG stream.
    let mut place = rand::rngs::SmallRng::seed_from_u64(params.seed ^ 0x5DEECE66D);
    use rand::SeedableRng;
    let mut ids = Vec::new();
    for i in 0..params.nodes {
        let p = Point::new(
            place.gen_range(0.0..params.field),
            place.gen_range(0.0..params.field),
        );
        let mobile = (i as f64) < params.mobile_fraction * params.nodes as f64;
        let mobility: Box<dyn Mobility> = if mobile {
            Box::new(RandomDirection::new(p))
        } else {
            Box::new(Stationary::new(p))
        };
        ids.push(world.add_node(mobility, Box::new(RelayStack::new(mode, params))));
    }
    let start = Instant::now();
    world.run_until(params.sim_deadline());
    let wall_secs = start.elapsed().as_secs_f64();
    let bytes_cloned = ids
        .iter()
        .filter_map(|&id| world.stack::<RelayStack>(id))
        .map(|s| s.bytes_cloned)
        .sum();
    let s = world.stats();
    HotpathResult {
        mode,
        wall_secs,
        events: s.event_dispatches,
        events_per_sec: s.event_dispatches as f64 / wall_secs.max(1e-9),
        tx_frames: s.tx_frames,
        delivered: s.delivered,
        delivered_payload_bytes: s.delivered_payload_bytes,
        bytes_cloned,
        stats: s.clone(),
    }
}

/// Renders the two runs plus their ratio as the `BENCH_hotpath.json`
/// document.
pub fn render_report(
    params: &HotpathParams,
    baseline: &HotpathResult,
    opt: &HotpathResult,
) -> String {
    fn entry(r: &HotpathResult) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"mode\": \"{}\",\n",
                "    \"wall_secs\": {:.4},\n",
                "    \"events\": {},\n",
                "    \"events_per_sec\": {:.0},\n",
                "    \"tx_frames\": {},\n",
                "    \"delivered\": {},\n",
                "    \"delivered_payload_bytes\": {},\n",
                "    \"bytes_cloned\": {}\n",
                "  }}"
            ),
            r.mode.label(),
            r.wall_secs,
            r.events,
            r.events_per_sec,
            r.tx_frames,
            r.delivered,
            r.delivered_payload_bytes,
            r.bytes_cloned,
        )
    }
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"perf_hotpath\",\n",
            "  \"nodes\": {},\n",
            "  \"field_m\": {},\n",
            "  \"range_m\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"beacons_per_node\": {},\n",
            "  \"relay_prob\": {},\n",
            "  \"seed\": {},\n",
            "  \"baseline\": {},\n",
            "  \"optimized\": {},\n",
            "  \"speedup_events_per_sec\": {:.2}\n",
            "}}\n"
        ),
        params.nodes,
        params.field,
        params.range,
        params.payload_bytes,
        params.beacons,
        params.relay_prob,
        params.seed,
        entry(baseline),
        entry(opt),
        opt.events_per_sec / baseline.events_per_sec.max(1e-9),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_produce_identical_traces() {
        let params = HotpathParams {
            nodes: 30,
            field: 180.0,
            beacons: 3,
            ..HotpathParams::dense()
        };
        let a = run_hotpath(&params, HotpathMode::Legacy);
        let b = run_hotpath(&params, HotpathMode::ZeroCopy);
        assert_eq!(a.tx_frames, b.tx_frames, "frame traces diverged");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.events, b.events);
        assert_eq!(a.delivered_payload_bytes, b.delivered_payload_bytes);
        assert!(a.bytes_cloned > 0, "legacy mode must pay for copies");
        assert_eq!(b.bytes_cloned, 0, "zero-copy mode must not copy");
    }

    #[test]
    fn report_is_well_formed_json_shape() {
        let params = HotpathParams {
            nodes: 10,
            field: 120.0,
            beacons: 1,
            ..HotpathParams::dense()
        };
        let a = run_hotpath(&params, HotpathMode::Legacy);
        let b = run_hotpath(&params, HotpathMode::ZeroCopy);
        let json = render_report(&params, &a, &b);
        assert!(json.contains("\"scenario\": \"perf_hotpath\""));
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"optimized\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
