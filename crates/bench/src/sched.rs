//! The scheduler benchmark: measures the simulator's control plane on a
//! timer-heavy advert/beacon swarm and records the perf trajectory in
//! `BENCH_sched.json`.
//!
//! Where `perf_hotpath` stressed the per-frame *data* path (buffers,
//! delivery scans, wire encoding), `perf_sched` stresses what is left once
//! that path is zero-copy:
//!
//! 1. **the event queue** — the hierarchical timer wheel
//!    ([`QueueMode::Wheel`], O(1) push/pop) vs. the original `BinaryHeap`
//!    (O(log n) on a queue holding several timers per node),
//! 2. **command buffers** — the pooled `Vec<Command>` free list vs. a fresh
//!    allocation per stack callback (the pool rides the queue toggle:
//!    `Heap` reproduces the full pre-refactor control-plane cost model),
//! 3. **overheard-frame decoding** — name-first [`Packet::peek_header`]
//!    resolution of CS hits (exact *and* CanBePrefix, via the ordered wire
//!    index), duplicate nonces, FIB no-route drops and unsolicited data
//!    vs. a full TLV decode of every frame; the same axis selects the
//!    PIT/CS table generation (wire-indexed slab arenas vs. the legacy
//!    `Name`-keyed maps the eager control plane ran on),
//! 4. **delivery events** — one batched arrival event per transmission
//!    executing the whole receiver fan-out in a single stack-entry round
//!    trip ([`DeliveryEvents::Batched`]) vs. the classic one-event-per-
//!    receiver model ([`DeliveryEvents::PerReceiver`]),
//! 5. **decode-free relays** — re-broadcasting relayable Interests straight
//!    from the received bytes with a copy-on-write hop-limit byte patch
//!    (never constructing an `Interest`) vs. the decode → decrement →
//!    re-encode relay the eager pipeline performs.
//!
//! All twelve mode combinations run the *same protocol trace* (same seeds,
//! same RNG draw order, bit-identical frame counts — asserted by a test
//! below and by the `sched` binary); only the per-event bookkeeping
//! differs.
//!
//! The scenario: a dense swarm where every node periodically floods a
//! 3-hop advert Interest for its own namespace, answers Interests for that
//! namespace from its application, relays neighbours' adverts through a
//! real NDN [`Forwarder`] (duplicate-nonce suppression doing the flood
//! control), retries unanswered adverts off a cancellable timer, and runs a
//! fast housekeeping tick that arms-and-cancels a decoy timer — the DAPES
//! §IV-D advert/beacon shape, dialled to make scheduler costs dominate.
//! Each round also broadcasts a CanBePrefix *probe* for the node's advert
//! prefix (answered from neighbours' Content Stores through the ordered
//! wire index) and a *noise* Interest in a namespace no FIB covers (the
//! not-for-me frame every receiver drops via the FIB wire index).

use dapes_ndn::face::FaceId;
use dapes_ndn::forwarder::{Action, Forwarder, ForwarderConfig, PeekOutcome};
use dapes_ndn::name::Name;
use dapes_ndn::packet::{Data, Interest, Packet, PacketHeader};
use dapes_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::time::Instant;

/// Frame kind for advert Interests.
const KIND_ADVERT: FrameKind = FrameKind(50);
/// Frame kind for advert replies (Data).
const KIND_REPLY: FrameKind = FrameKind(51);
/// Frame kind for not-for-me noise Interests (no FIB coverage anywhere).
const KIND_NOISE: FrameKind = FrameKind(52);
/// Frame kind for CanBePrefix probe Interests.
const KIND_PROBE: FrameKind = FrameKind(53);

const TOKEN_ADVERT: u64 = 1;
const TOKEN_RETRY: u64 = 2;
const TOKEN_TICK: u64 = 3;
const TOKEN_DECOY: u64 = 4;

/// One scheduler cost model: a thin wrapper over [`ExecProfile`], the
/// simulator's unified execution-strategy value. The bench keeps the
/// wrapper for its sweep/report vocabulary (`baseline`, `optimized`,
/// `sweep`), but every knob — queue, decode regime, delivery granularity,
/// relay patch, table generation, shard count — lives on the profile, and
/// report labels come from [`ExecProfile::label`]. Protocol traces are
/// bit-identical across all twelve single-core combinations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedMode {
    /// The execution profile this mode prices.
    pub exec: ExecProfile,
}

impl SchedMode {
    /// The pre-refactor control plane: binary heap, per-callback
    /// allocations, full decode of every frame into `Name`-keyed PIT/CS
    /// tables, one scheduled receive event per receiver.
    pub fn baseline() -> Self {
        SchedMode {
            exec: ExecProfile::baseline(),
        }
    }

    /// The optimized control plane: timer wheel, pooled buffers, lazy peek
    /// with decode-free relays, one batched arrival event per transmission
    /// (one core — the twelve-mode sweep prices single-core strategies;
    /// shard counts are the separate cores axis).
    pub fn optimized() -> Self {
        SchedMode {
            exec: ExecProfile::default(),
        }
    }

    /// This mode on `cores` spatial shards ([`ShardedWorld`] when `> 1`).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.exec = self.exec.with_cores(cores);
        self
    }

    /// All twelve combinations (the relay-patch axis only exists on top of
    /// lazy decoding; the decode axis selects the PIT/CS table generation),
    /// baseline first and optimized last.
    pub fn sweep() -> Vec<SchedMode> {
        let mut modes = Vec::new();
        for delivery_events in [DeliveryEvents::PerReceiver, DeliveryEvents::Batched] {
            for queue in [QueueMode::Heap, QueueMode::Wheel] {
                for (lazy, patch) in [(false, false), (true, false), (true, true)] {
                    modes.push(SchedMode {
                        exec: ExecProfile::default()
                            .with_queue(queue)
                            .with_delivery_events(delivery_events)
                            .with_lazy_peek(lazy)
                            .with_relay_patch(patch)
                            .with_legacy_tables(!lazy),
                    });
                }
            }
        }
        modes
    }

    /// Label used in the JSON report — [`ExecProfile::label`] verbatim.
    pub fn label(&self) -> String {
        self.exec.label()
    }
}

/// Parameters of the scheduler scenario.
#[derive(Clone, Copy, Debug)]
pub struct SchedParams {
    /// Swarm size (the acceptance scenario uses ≥ 2,000).
    pub nodes: usize,
    /// Field side in metres (nodes placed uniformly).
    pub field: f64,
    /// Radio range in metres.
    pub range: f64,
    /// Advert rounds each node runs.
    pub rounds: u32,
    /// Nominal gap between a node's adverts in milliseconds (plus jitter).
    pub advert_period_ms: u64,
    /// Housekeeping tick in milliseconds (each arms + cancels a decoy
    /// timer: pure scheduler churn).
    pub tick_ms: u64,
    /// Advert-reply payload size in bytes.
    pub reply_bytes: usize,
    /// Wire hop limit on advert Interests: a 3-hop flood covers the
    /// origin's two-hop neighbourhood with relayed re-broadcasts — the
    /// traffic shape the decode-free relay path exists for.
    pub advert_hops: u8,
    /// Size of the availability bitmap each advert carries as application
    /// parameters (the paper's adverts announce which segments the peer
    /// holds).
    pub advert_bitmap_bytes: usize,
    /// Retry timeout for unanswered adverts in milliseconds.
    pub retry_ms: u64,
    /// World seed.
    pub seed: u64,
}

impl SchedParams {
    /// The acceptance-criteria scenario: 2,400 nodes at ~30 neighbours
    /// each (an off-the-grid crowd, not a sparse field), every node
    /// beaconing 3-hop adverts — paper-shaped hierarchical names carrying
    /// a 64-byte availability bitmap, relayed across the two-hop
    /// neighbourhood — plus the noise/probe traffic, and ticking a 16 ms
    /// housekeeping timer whose decoy arm/cancel churn leaves over a
    /// million tombstoned entries in the queue: the workload where the
    /// heap's O(log n) pops, the per-callback allocations, the
    /// per-receiver event fan-out, and the eager decode of millions of
    /// overheard (mostly duplicate) frames dominate.
    pub fn dense() -> Self {
        SchedParams {
            nodes: 2_400,
            field: 900.0,
            range: 60.0,
            rounds: 3,
            advert_period_ms: 1_000,
            tick_ms: 16,
            reply_bytes: 256,
            advert_hops: 3,
            advert_bitmap_bytes: 64,
            retry_ms: 300,
            seed: 1,
        }
    }

    /// A seconds-scale variant for CI smoke runs (same density and tick
    /// regime, an order of magnitude fewer node-seconds).
    pub fn smoke() -> Self {
        SchedParams {
            nodes: 300,
            field: 320.0,
            rounds: 4,
            ..SchedParams::dense()
        }
    }

    fn sim_deadline(&self) -> SimTime {
        SimTime::from_micros(
            (self.rounds as u64 * self.advert_period_ms + self.retry_ms + 1_000) * 1_000,
        )
    }
}

/// The advert/beacon stack: a real NDN forwarder per node, flooding
/// multi-hop advert Interests and serving replies. Decode regime aside,
/// behaviour depends only on header-derivable facts, so lazy and eager
/// runs make identical RNG draws.
struct SchedStack {
    id: u32,
    lazy_decode: bool,
    forwarder: Forwarder,
    rounds_left: u32,
    round: u64,
    advert_period_ms: u64,
    tick_ms: u64,
    reply_bytes: usize,
    advert_hops: u8,
    advert_bitmap_bytes: usize,
    retry_ms: u64,
    deadline: SimTime,
    /// The outstanding advert: its name and the retry timer to cancel when
    /// a reply is overheard.
    outstanding: Option<(Name, TimerHandle)>,
    /// Last round's decoy timer, cancelled by the next tick.
    decoy: Option<TimerHandle>,
    /// Frames fully resolved from the peeked header (lazy mode only).
    peeks_resolved: u64,
    /// Peek-resolved Interests dropped through the FIB wire index.
    peek_fib_drops: u64,
    /// Peek-resolved CanBePrefix Interests answered through the CS's
    /// ordered wire index.
    peek_prefix_hits: u64,
    /// Frames re-broadcast decode-free with a copy-on-write hop-limit
    /// patch (relay-patch modes only).
    frames_relay_patched: u64,
    /// Frames that went through the full TLV decode.
    full_decodes: u64,
}

impl SchedStack {
    fn new(id: u32, mode: SchedMode, params: &SchedParams) -> Self {
        let mut forwarder = Forwarder::new(ForwarderConfig {
            cs_capacity: 64,
            // Count-capped FIFO on both table generations: the pre-budget
            // store, so the cross-mode trace stays byte-identical.
            cs_budget_bytes: None,
            cs_policy: Default::default(),
            cache_unsolicited: false,
            rebroadcast_faces: vec![FaceId::WIRELESS],
            deliver_on_aggregate: Vec::new(),
            relay_patch: mode.exec.relay_patch,
            // The eager modes price the pre-refactor control plane, whose
            // PIT/CS ran on `Name`-keyed tables; the lazy modes run the
            // wire-indexed slab arenas the peek ladder was built around.
            // Behaviour (and thus the cross-mode trace) is identical.
            legacy_tables: mode.exec.legacy_tables,
        });
        // The advert namespace is relayable; our own corner of it also
        // reaches the application so we can answer probes for it. Nothing
        // covers the noise namespace — those frames are the not-for-me
        // drops the FIB wire index classifies without a decode.
        forwarder
            .fib_mut()
            .register(Name::from_uri("/sched/adv"), FaceId::WIRELESS);
        let own = Name::from_uri(&format!("/sched/adv/n{id}"));
        forwarder.fib_mut().register(own.clone(), FaceId::APP);
        forwarder.fib_mut().register(own, FaceId::WIRELESS);
        SchedStack {
            id,
            lazy_decode: mode.exec.lazy_peek,
            forwarder,
            rounds_left: params.rounds,
            round: 0,
            advert_period_ms: params.advert_period_ms,
            tick_ms: params.tick_ms,
            reply_bytes: params.reply_bytes,
            advert_hops: params.advert_hops,
            advert_bitmap_bytes: params.advert_bitmap_bytes,
            retry_ms: params.retry_ms,
            deadline: params.sim_deadline(),
            outstanding: None,
            decoy: None,
            peeks_resolved: 0,
            peek_fib_drops: 0,
            peek_prefix_hits: 0,
            frames_relay_patched: 0,
            full_decodes: 0,
        }
    }

    /// Broadcasts a CanBePrefix probe for the hub's advert prefix (node 0,
    /// the one namespace every node probes). The hub answers the first
    /// probes through its application; the replies are cached along the PIT
    /// trails, after which neighbours answer later probes straight from
    /// their Content Store's ordered wire index (no decode in lazy mode).
    fn send_probe(&mut self, ctx: &mut NodeCtx<'_>) {
        let interest = Interest::new(Name::from_uri("/sched/adv/n0"))
            .with_can_be_prefix(true)
            .with_nonce(ctx.rng().gen())
            .with_lifetime_ms(300)
            .with_hop_limit(2);
        let delay = self.jitter(ctx);
        ctx.send_frame(interest.wire(), KIND_PROBE, 0, delay);
    }

    /// Broadcasts a fire-and-forget Interest in a namespace no FIB covers:
    /// every receiver classifies it as not-for-me — via the FIB wire index
    /// in lazy mode, via a full decode in the eager baseline.
    fn send_noise(&mut self, ctx: &mut NodeCtx<'_>) {
        let interest = Interest::new(Name::from_uri(&format!(
            "/sched/noise/n{}/{}",
            self.id, self.round
        )))
        .with_nonce(ctx.rng().gen())
        .with_lifetime_ms(300)
        .with_hop_limit(1);
        let delay = self.jitter(ctx);
        ctx.send_frame(interest.wire(), KIND_NOISE, 0, delay);
    }

    fn jitter(&self, ctx: &mut NodeCtx<'_>) -> SimDuration {
        SimDuration::from_micros(ctx.rng().gen_range(0..60_000))
    }

    fn send_advert(&mut self, ctx: &mut NodeCtx<'_>, name: Name) {
        let interest = Interest::new(name)
            .with_nonce(ctx.rng().gen())
            .with_lifetime_ms(self.retry_ms + 200)
            .with_hop_limit(self.advert_hops)
            .with_app_parameters(vec![0xB1; self.advert_bitmap_bytes]);
        let actions = self
            .forwarder
            .process_interest(ctx.now, &interest, FaceId::APP);
        let mut sent = false;
        for action in actions {
            if let Action::SendInterest {
                face: FaceId::WIRELESS,
                interest,
            } = action
            {
                let delay = self.jitter(ctx);
                ctx.send_frame(interest.wire(), KIND_ADVERT, 0, delay);
                sent = true;
            }
        }
        if !sent {
            // PIT aggregation (a retry): broadcast anyway, as consumers do.
            let delay = self.jitter(ctx);
            ctx.send_frame(interest.wire(), KIND_ADVERT, 0, delay);
        }
    }

    /// Applies forwarder actions for an overheard frame. Shared by the
    /// eager and lazy paths, so both make the same draws in the same order.
    fn apply_actions(&mut self, ctx: &mut NodeCtx<'_>, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendInterest {
                    face: FaceId::APP,
                    interest,
                } => {
                    // A probe for our namespace: serve a reply through the
                    // forwarder (consuming the PIT entry on the way out).
                    let reply = Data::new(interest.name().clone(), vec![0xAD; self.reply_bytes])
                        .with_freshness_ms(500);
                    let (out, _) = self.forwarder.process_data(ctx.now, &reply, FaceId::APP);
                    let mut sent = false;
                    for a in out {
                        if let Action::SendData {
                            face: FaceId::WIRELESS,
                            data,
                        } = a
                        {
                            if !sent {
                                let delay = self.jitter(ctx);
                                ctx.send_frame(data.wire(), KIND_REPLY, 0, delay);
                                sent = true;
                            }
                        }
                    }
                    if !sent {
                        let delay = self.jitter(ctx);
                        ctx.send_frame(reply.wire(), KIND_REPLY, 0, delay);
                    }
                }
                Action::SendInterest {
                    face: FaceId::WIRELESS,
                    mut interest,
                } => {
                    // Relay a neighbour's advert one hop onward.
                    if !interest.decrement_hop_limit() {
                        continue;
                    }
                    let delay = self.jitter(ctx);
                    ctx.send_frame(interest.wire(), KIND_ADVERT, 0, delay);
                }
                Action::RelayInterest {
                    face: FaceId::WIRELESS,
                    frame,
                    ..
                } => {
                    // Decode-free relay: the hop-limit byte was already
                    // patched copy-on-write; the bytes match what the arm
                    // above re-encodes, so the trace is identical.
                    self.frames_relay_patched += 1;
                    let delay = self.jitter(ctx);
                    ctx.send_frame(frame, KIND_ADVERT, 0, delay);
                }
                Action::SendData {
                    face: FaceId::WIRELESS,
                    data,
                } => {
                    // CS hit on someone's probe, or a reply relaying back
                    // along the PIT trail.
                    let delay = self.jitter(ctx);
                    ctx.send_frame(data.wire(), KIND_REPLY, 0, delay);
                }
                Action::SendData {
                    face: FaceId::APP,
                    data,
                } => {
                    // Our own advert was answered: the retry is moot.
                    if let Some((name, timer)) = self.outstanding.take() {
                        if &name == data.name() {
                            ctx.cancel_timer(timer);
                        } else {
                            self.outstanding = Some((name, timer));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn handle_interest(&mut self, ctx: &mut NodeCtx<'_>, interest: &Interest) {
        let actions = self
            .forwarder
            .process_interest(ctx.now, interest, FaceId::WIRELESS);
        self.apply_actions(ctx, actions);
    }

    fn handle_data(&mut self, ctx: &mut NodeCtx<'_>, data: &Data) {
        let (actions, _) = self.forwarder.process_data(ctx.now, data, FaceId::WIRELESS);
        self.apply_actions(ctx, actions);
    }
}

impl NetStack for SchedStack {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Stagger first adverts across a whole period; tick staggers too.
        let start = ctx.rng().gen_range(0..self.advert_period_ms * 1_000);
        ctx.set_timer(SimDuration::from_micros(start), TOKEN_ADVERT);
        let tick = ctx.rng().gen_range(0..self.tick_ms * 1_000);
        ctx.set_timer(SimDuration::from_micros(tick), TOKEN_TICK);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            TOKEN_ADVERT => {
                if self.rounds_left == 0 {
                    return;
                }
                self.rounds_left -= 1;
                self.round += 1;
                // Paper-shaped name depth: namespace / peer / collection /
                // file / segment-range / round.
                let name =
                    Name::from_uri(&format!("/sched/adv/n{}/c0/f0/s0/{}", self.id, self.round));
                self.send_advert(ctx, name.clone());
                // Every round also exercises the two overhearing fast
                // paths: a not-for-me noise beacon, and (every other
                // round) a CanBePrefix probe for our own prefix.
                self.send_noise(ctx);
                if self.round % 2 == 1 && self.id != 0 {
                    self.send_probe(ctx);
                }
                let retry = ctx.set_timer(SimDuration::from_millis(self.retry_ms), TOKEN_RETRY);
                self.outstanding = Some((name, retry));
                if self.rounds_left > 0 {
                    let period = self.advert_period_ms * 900
                        + ctx.rng().gen_range(0..self.advert_period_ms * 200);
                    ctx.set_timer(SimDuration::from_micros(period), TOKEN_ADVERT);
                }
            }
            TOKEN_RETRY => {
                // Unanswered: re-express once with a fresh nonce.
                if let Some((name, _)) = self.outstanding.take() {
                    self.send_advert(ctx, name);
                }
            }
            TOKEN_TICK => {
                // Pure scheduler churn: every tick cancels the previous
                // decoy and arms a new far-off one that (usually) never
                // fires — the arm/cancel pattern protocol housekeeping
                // produces at scale.
                if let Some(h) = self.decoy.take() {
                    ctx.cancel_timer(h);
                }
                self.decoy = Some(ctx.set_timer(SimDuration::from_secs(30), TOKEN_DECOY));
                if ctx.now + SimDuration::from_millis(self.tick_ms) < self.deadline {
                    ctx.set_timer(SimDuration::from_millis(self.tick_ms), TOKEN_TICK);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        if self.lazy_decode {
            let Ok(header) = Packet::peek_header(&frame.payload) else {
                return;
            };
            match header {
                PacketHeader::Interest(h) => {
                    if let Some((actions, outcome)) = self.forwarder.process_interest_header(
                        ctx.now,
                        &h,
                        &frame.payload,
                        FaceId::WIRELESS,
                    ) {
                        self.peeks_resolved += 1;
                        match outcome {
                            PeekOutcome::FibNoRoute => self.peek_fib_drops += 1,
                            PeekOutcome::CsPrefixHit => self.peek_prefix_hits += 1,
                            _ => {}
                        }
                        self.apply_actions(ctx, actions);
                        return;
                    }
                }
                PacketHeader::Data(h) => {
                    if self.forwarder.process_data_header(h.name_wire) {
                        self.peeks_resolved += 1;
                        return;
                    }
                }
            }
        }
        self.full_decodes += 1;
        match Packet::decode_payload(&frame.payload) {
            Ok(Packet::Interest(interest)) => self.handle_interest(ctx, &interest),
            Ok(Packet::Data(data)) => self.handle_data(ctx, &data),
            Err(_) => {}
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.forwarder.state_bytes()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Measured outcome of one scheduler run.
#[derive(Clone, Debug)]
pub struct SchedResult {
    /// Which cost model ran.
    pub mode: SchedMode,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Events popped from the queue.
    pub events: u64,
    /// Simulation events processed: queue pops plus the per-receiver
    /// deliveries a batched arrival event executes inside one pop. A
    /// delivery is one simulation event whether it rides its own queue
    /// entry (per-receiver mode) or a batch, so for a fixed protocol trace
    /// this count is identical across every mode — which is what makes
    /// `events_per_sec` comparable across delivery granularities instead
    /// of crediting the per-receiver baseline for its own event inflation.
    pub sim_events: u64,
    /// Simulation events per wall-clock second — the headline throughput
    /// figure (computed over `sim_events`).
    pub events_per_sec: f64,
    /// Frames put on the air.
    pub tx_frames: u64,
    /// Per-receiver deliveries.
    pub delivered: u64,
    /// Stack callbacks served from the command-buffer pool.
    pub cmd_pool_hits: u64,
    /// Stack callbacks that allocated a fresh command buffer.
    pub cmd_pool_misses: u64,
    /// Frames resolved from the peeked header alone, summed over nodes.
    pub frames_peek_resolved: u64,
    /// Peek-resolved Interests dropped through the FIB wire index.
    pub peek_fib_drops: u64,
    /// Peek-resolved CanBePrefix Interests answered through the ordered CS
    /// wire index.
    pub peek_prefix_hits: u64,
    /// Frames re-broadcast decode-free with a copy-on-write hop-limit
    /// patch, summed over nodes (relay-patch modes only).
    pub frames_relay_patched: u64,
    /// Frames that paid for a full TLV decode, summed over nodes.
    pub full_decodes: u64,
    /// Live PIT arena entries at the deadline, summed over nodes.
    pub pit_arena_live: usize,
    /// Live Content Store arena entries at the deadline, summed over nodes.
    pub cs_arena_live: usize,
    /// Arrival events enqueued (one per transmission when batched, one per
    /// successful receiver in the per-receiver baseline).
    pub arrival_events: u64,
    /// Timer slots ever allocated (peak concurrent timers, not volume).
    pub timer_slots_allocated: usize,
    /// Shards the run executed on (1 = the sequential engine).
    pub cores: u64,
    /// Frames whose radio disc crossed a shard border and were exported.
    pub border_tx_exported: u64,
    /// Foreign-frame injections received across shard borders.
    pub border_rx_injected: u64,
    /// Conservative synchronization windows the sharded run stepped.
    pub sync_windows: u64,
    /// The full simulator counters of the run (merged over shards), for
    /// the shared Prometheus export.
    pub stats: Stats,
}

/// Runs the scheduler scenario under one cost model. Modes with
/// `exec.cores > 1` run on the sharded engine; one core runs the (bit-
/// identical) sequential world through the same wrapper.
pub fn run_sched(params: &SchedParams, mode: SchedMode) -> SchedResult {
    let mut world = ShardedWorld::new(WorldConfig {
        field: (params.field, params.field),
        range: params.range,
        seed: params.seed,
        exec: mode.exec,
        ..WorldConfig::default()
    });
    let mut place = SmallRng::seed_from_u64(params.seed ^ 0x5DEECE66D);
    let mut ids = Vec::new();
    for i in 0..params.nodes {
        let p = Point::new(
            place.gen_range(0.0..params.field),
            place.gen_range(0.0..params.field),
        );
        ids.push(world.add_node(
            Box::new(Stationary::new(p)),
            Box::new(SchedStack::new(i as u32, mode, params)),
        ));
    }
    let start = Instant::now();
    world.run_until(params.sim_deadline());
    let wall_secs = start.elapsed().as_secs_f64();
    let (mut peeks, mut fib_drops, mut prefix_hits, mut decodes) = (0u64, 0u64, 0u64, 0u64);
    let mut relay_patched = 0u64;
    let (mut pit_live, mut cs_live) = (0usize, 0usize);
    for &id in &ids {
        if let Some(s) = world.stack::<SchedStack>(id) {
            peeks += s.peeks_resolved;
            fib_drops += s.peek_fib_drops;
            prefix_hits += s.peek_prefix_hits;
            relay_patched += s.frames_relay_patched;
            decodes += s.full_decodes;
            pit_live += s.forwarder.pit().arena_live();
            cs_live += s.forwarder.cs().arena_live();
        }
    }
    let s = world.stats();
    // Deliveries executed inside batched arrival events are simulation
    // events that never hit the queue; fold them back in so the throughput
    // numerator is mode-invariant (in per-receiver mode each of them *is* a
    // queue pop, already counted).
    let folded = match mode.exec.delivery_events {
        DeliveryEvents::Batched => s.delivered,
        DeliveryEvents::PerReceiver => 0,
    };
    SchedResult {
        mode,
        wall_secs,
        events: s.event_dispatches,
        sim_events: s.event_dispatches + folded,
        events_per_sec: (s.event_dispatches + folded) as f64 / wall_secs.max(1e-9),
        tx_frames: s.tx_frames,
        delivered: s.delivered,
        cmd_pool_hits: s.cmd_pool_hits,
        cmd_pool_misses: s.cmd_pool_misses,
        frames_peek_resolved: peeks,
        peek_fib_drops: fib_drops,
        peek_prefix_hits: prefix_hits,
        frames_relay_patched: relay_patched,
        full_decodes: decodes,
        pit_arena_live: pit_live,
        cs_arena_live: cs_live,
        arrival_events: s.arrival_events,
        timer_slots_allocated: world.timer_slots_allocated(),
        cores: s.shards.max(1),
        border_tx_exported: s.border_tx_exported,
        border_rx_injected: s.border_rx_injected,
        sync_windows: s.sync_windows,
        stats: s,
    }
}

/// The protocol-trace fingerprint every mode combination must agree on.
/// Raw queue-pop counts are deliberately excluded — the delivery-event
/// granularity changes how many queue entries carry the same protocol work
/// (that is the point), so they only match *within* a [`DeliveryEvents`]
/// class — but the normalized `sim_events` count is mode-invariant and is
/// part of the fingerprint.
pub fn trace_of(r: &SchedResult) -> (u64, u64, u64, u64) {
    (
        r.sim_events,
        r.tx_frames,
        r.delivered,
        r.frames_peek_resolved + r.full_decodes,
    )
}

/// Renders the twelve-mode sweep, the sharded cores axis, and the headline
/// ratios as the `BENCH_sched.json` document.
///
/// `cores_axis` holds runs of the optimized profile at increasing shard
/// counts (first entry `cores = 1`, the sequential engine), measured on the
/// scenario described by `cores_params` — the main sweep's params by
/// default, a density-preserving scaled swarm when the cores axis was run
/// at a different size.
pub fn render_report(
    params: &SchedParams,
    results: &[SchedResult],
    cores_params: &SchedParams,
    cores_axis: &[SchedResult],
) -> String {
    fn entry(r: &SchedResult) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"mode\": \"{}\",\n",
                "    \"cores\": {},\n",
                "    \"wall_secs\": {:.4},\n",
                "    \"events_popped\": {},\n",
                "    \"sim_events\": {},\n",
                "    \"events_per_sec\": {:.0},\n",
                "    \"tx_frames\": {},\n",
                "    \"delivered\": {},\n",
                "    \"arrival_events\": {},\n",
                "    \"cmd_pool_hits\": {},\n",
                "    \"cmd_pool_misses\": {},\n",
                "    \"frames_peek_resolved\": {},\n",
                "    \"peek_fib_drops\": {},\n",
                "    \"peek_prefix_hits\": {},\n",
                "    \"frames_relay_patched\": {},\n",
                "    \"full_decodes\": {},\n",
                "    \"pit_arena_live\": {},\n",
                "    \"cs_arena_live\": {},\n",
                "    \"timer_slots_allocated\": {},\n",
                "    \"border_tx_exported\": {},\n",
                "    \"border_rx_injected\": {},\n",
                "    \"sync_windows\": {}\n",
                "  }}"
            ),
            r.mode.label(),
            r.cores,
            r.wall_secs,
            r.events,
            r.sim_events,
            r.events_per_sec,
            r.tx_frames,
            r.delivered,
            r.arrival_events,
            r.cmd_pool_hits,
            r.cmd_pool_misses,
            r.frames_peek_resolved,
            r.peek_fib_drops,
            r.peek_prefix_hits,
            r.frames_relay_patched,
            r.full_decodes,
            r.pit_arena_live,
            r.cs_arena_live,
            r.timer_slots_allocated,
            r.border_tx_exported,
            r.border_rx_injected,
            r.sync_windows,
        )
    }
    // Fall back to the first run when the baseline was filtered out of the
    // sweep (the `sched` bin's `--only` debugging flag).
    let baseline = results
        .iter()
        .find(|r| r.mode == SchedMode::baseline())
        .or(results.first())
        .expect("at least one run");
    // Fall back to the last run when the fully-patched mode was filtered
    // out of the sweep (the CI `--relay-patch off` axis).
    let optimized = results
        .iter()
        .find(|r| r.mode == SchedMode::optimized())
        .or(results.last())
        .expect("at least one run");
    let modes: Vec<String> = results.iter().map(entry).collect();
    let cores_entries: Vec<String> = cores_axis.iter().map(entry).collect();
    // Shard speedup: best multi-shard throughput over the axis' sequential
    // run (1.0 when the axis holds fewer than two entries).
    let shard_speedup = match cores_axis.split_first() {
        Some((seq, rest)) if !rest.is_empty() => {
            rest.iter()
                .map(|r| r.events_per_sec)
                .fold(f64::NEG_INFINITY, f64::max)
                / seq.events_per_sec.max(1e-9)
        }
        _ => 1.0,
    };
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"perf_sched\",\n",
            "  \"nodes\": {},\n",
            "  \"field_m\": {},\n",
            "  \"range_m\": {},\n",
            "  \"rounds_per_node\": {},\n",
            "  \"advert_period_ms\": {},\n",
            "  \"tick_ms\": {},\n",
            "  \"reply_bytes\": {},\n",
            "  \"seed\": {},\n",
            "  \"modes\": [{}],\n",
            "  \"speedup_events_per_sec\": {:.2},\n",
            "  \"cores_axis_nodes\": {},\n",
            "  \"cores_axis_field_m\": {},\n",
            "  \"cores_axis\": [{}],\n",
            "  \"shard_speedup_events_per_sec\": {:.2}\n",
            "}}\n"
        ),
        params.nodes,
        params.field,
        params.range,
        params.rounds,
        params.advert_period_ms,
        params.tick_ms,
        params.reply_bytes,
        params.seed,
        modes.join(", "),
        optimized.events_per_sec / baseline.events_per_sec.max(1e-9),
        cores_params.nodes,
        cores_params.field,
        cores_entries.join(", "),
        shard_speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SchedParams {
        SchedParams {
            nodes: 40,
            field: 220.0,
            rounds: 3,
            ..SchedParams::dense()
        }
    }

    #[test]
    fn all_twelve_mode_combinations_produce_identical_traces() {
        let params = tiny();
        let runs: Vec<SchedResult> = SchedMode::sweep()
            .into_iter()
            .map(|m| run_sched(&params, m))
            .collect();
        for r in &runs[1..] {
            assert_eq!(
                trace_of(r),
                trace_of(&runs[0]),
                "{} diverged from {}",
                r.mode.label(),
                runs[0].mode.label()
            );
            // Event counts only match within a delivery-event class.
            if r.mode.exec.delivery_events == runs[0].mode.exec.delivery_events {
                assert_eq!(r.events, runs[0].events, "{}", r.mode.label());
            }
        }
        let base = runs.first().expect("baseline");
        assert_eq!(base.mode, SchedMode::baseline());
        let opt = runs.last().expect("optimized");
        assert_eq!(opt.mode, SchedMode::optimized());
        assert!(
            opt.frames_peek_resolved > opt.full_decodes,
            "the advert swarm must mostly resolve by peek: {} peeked vs {} decoded",
            opt.frames_peek_resolved,
            opt.full_decodes
        );
        assert!(
            opt.peek_fib_drops > 0,
            "noise beacons must resolve through the FIB wire index"
        );
        assert!(
            opt.peek_prefix_hits > 0,
            "CanBePrefix probes must resolve through the ordered CS index"
        );
        assert_eq!(base.frames_peek_resolved, 0, "eager never peeks");
        assert_eq!(base.frames_relay_patched, 0, "eager never byte-patches");
        assert!(
            opt.frames_relay_patched > 0,
            "the advert swarm must relay decode-free in patch mode"
        );
        assert!(opt.cmd_pool_hits > 0 && opt.cmd_pool_misses == 1);
        // The tentpole invariant, at bench scale: batched mode enqueues one
        // arrival event per transmission; the baseline one per delivery.
        assert_eq!(opt.arrival_events, opt.tx_frames);
        assert_eq!(base.arrival_events, base.delivered);
        assert!(
            base.events > opt.events,
            "per-receiver fan-out must inflate the event count"
        );
    }

    #[test]
    fn report_is_well_formed_json_shape() {
        let params = tiny();
        let runs = vec![
            run_sched(&params, SchedMode::baseline()),
            run_sched(&params, SchedMode::optimized()),
        ];
        let cores_axis = vec![
            run_sched(&params, SchedMode::optimized()),
            run_sched(&params, SchedMode::optimized().with_cores(2)),
        ];
        let json = render_report(&params, &runs, &params, &cores_axis);
        assert!(json.contains("\"scenario\": \"perf_sched\""));
        assert!(json.contains("\"heap_eager_perrecv\""));
        assert!(json.contains("\"wheel_lazy_batched_patch\""));
        assert!(json.contains("\"wheel_lazy_batched_patch_c2\""));
        assert!(json.contains("\"speedup_events_per_sec\""));
        assert!(json.contains("\"peek_fib_drops\""));
        assert!(json.contains("\"cores_axis\""));
        assert!(json.contains("\"shard_speedup_events_per_sec\""));
        assert!(json.contains("\"border_tx_exported\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sharded_run_exchanges_border_traffic_and_stays_metric_close() {
        let params = tiny();
        let seq = run_sched(&params, SchedMode::optimized());
        let sharded = run_sched(&params, SchedMode::optimized().with_cores(2));
        assert_eq!(seq.cores, 1);
        assert_eq!(sharded.cores, 2);
        assert!(sharded.border_tx_exported > 0, "bands must exchange frames");
        assert!(sharded.border_rx_injected >= sharded.border_tx_exported);
        assert!(sharded.sync_windows > 0);
        // The sharded trace is metric-equivalent, not bit-identical: the
        // same protocol runs, so aggregate traffic lands within a loose
        // envelope of the sequential run (tolerance documented in
        // `ShardedWorld`; the proptest suite tightens this per-metric).
        let ratio = sharded.tx_frames as f64 / seq.tx_frames.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "tx_frames diverged: sharded {} vs sequential {}",
            sharded.tx_frames,
            seq.tx_frames
        );
    }
}
