//! Shared Prometheus text-format export for the bench binaries.
//!
//! Every `BENCH_*` binary exposes a `--prom-out <path>` flag; the dump it
//! writes comes from one place — [`export`] — so the exposition format,
//! the `dapes_` metric namespace and the peer-counter coverage cannot
//! drift between benchmarks. The dump is the simulator's counters
//! ([`Stats::to_prometheus`]) followed by the DAPES peer-protocol
//! counters (aggregated over every honest peer) as `dapes_peer_*`
//! counters, and `checkjson` validates the shape via
//! [`crate::check::validate_prometheus`].

use dapes_core::stats::PeerStats;
use dapes_netsim::node::NodeId;
use dapes_netsim::stats::Stats;
use dapes_testutil::scenario::Scenario;

/// One exported peer counter: metric name (without the `dapes_peer_`
/// prefix), HELP text, and the field it reads.
type PeerCounter = (&'static str, &'static str, fn(&PeerStats) -> u64);

/// Every [`PeerStats`] counter, in declaration order. `completed_at` is a
/// per-peer timestamp, not an aggregable counter, and is exported
/// separately as a gauge.
const PEER_COUNTERS: &[PeerCounter] = &[
    (
        "interests_sent_total",
        "Content Interests sent (first transmissions).",
        |p| p.interests_sent,
    ),
    (
        "retransmissions_total",
        "Content Interest retransmissions.",
        |p| p.retransmissions,
    ),
    (
        "data_received_total",
        "Content Data packets received for own downloads.",
        |p| p.data_received,
    ),
    ("packets_verified_total", "Packets that verified.", |p| {
        p.packets_verified
    }),
    (
        "verify_failures_total",
        "Verification failures dropped.",
        |p| p.verify_failures,
    ),
    ("bitmaps_sent_total", "Bitmaps transmitted.", |p| {
        p.bitmaps_sent
    }),
    (
        "bitmaps_heard_total",
        "Bitmaps received or overheard.",
        |p| p.bitmaps_heard,
    ),
    (
        "bitmaps_cancelled_total",
        "Bitmap transmissions cancelled by the union rule.",
        |p| p.bitmaps_cancelled,
    ),
    (
        "peba_backoffs_total",
        "PEBA backoffs after detected collisions.",
        |p| p.peba_backoffs,
    ),
    ("discovery_sent_total", "Discovery beacons sent.", |p| {
        p.discovery_sent
    }),
    (
        "packets_served_total",
        "Data replies served to other peers.",
        |p| p.packets_served,
    ),
    (
        "interests_forwarded_total",
        "Interests re-broadcast as an intermediate node.",
        |p| p.interests_forwarded,
    ),
    (
        "frames_peek_resolved_total",
        "Frames resolved from a name-first header peek.",
        |p| p.frames_peek_resolved,
    ),
    (
        "peek_cs_hits_total",
        "Peek-resolved Interests answered from the Content Store.",
        |p| p.peek_cs_hits,
    ),
    (
        "peek_dup_nonces_total",
        "Peek-resolved Interests dropped as duplicate nonces.",
        |p| p.peek_dup_nonces,
    ),
    (
        "peek_fib_drops_total",
        "Peek-resolved Interests dropped for lack of a FIB route.",
        |p| p.peek_fib_drops,
    ),
    (
        "peek_unsolicited_data_total",
        "Peek-resolved Data matching no PIT entry.",
        |p| p.peek_unsolicited_data,
    ),
    (
        "peek_relayed_total",
        "Peek-resolved Interests relayed decode-free.",
        |p| p.peek_relayed,
    ),
    (
        "peek_relay_suppressed_total",
        "Peek-resolved Interests the strategy suppressed.",
        |p| p.peek_relay_suppressed,
    ),
    (
        "frames_relay_patched_total",
        "Frames re-broadcast with a copy-on-write hop-limit patch.",
        |p| p.frames_relay_patched,
    ),
    (
        "adverts_rejected_bad_sig_total",
        "Sealed adverts dropped for a bad signature.",
        |p| p.adverts_rejected_bad_sig,
    ),
    (
        "adverts_rejected_replay_total",
        "Sealed adverts dropped by the replay guard.",
        |p| p.adverts_rejected_replay,
    ),
    (
        "peers_expired_total",
        "Producers swept from the replay table after the peer TTL.",
        |p| p.peers_expired,
    ),
    (
        "segments_rejected_tamper_total",
        "Data frames dropped on signature failure.",
        |p| p.segments_rejected_tamper,
    ),
    (
        "interests_rejected_replay_total",
        "Dup-nonce drops attributable to re-injected Interests.",
        |p| p.interests_rejected_replay,
    ),
    (
        "flood_frames_dropped_total",
        "Unparseable frames dropped on the floor.",
        |p| p.flood_frames_dropped,
    ),
    (
        "retx_give_ups_total",
        "Fetches abandoned after the backoff ladder ran dry.",
        |p| p.retx_give_ups,
    ),
    (
        "neighbors_expired_total",
        "Neighbors expired after the neighbor timeout.",
        |p| p.neighbors_expired,
    ),
    (
        "resumed_segments_skipped_total",
        "Segments salvaged on restart and never re-fetched.",
        |p| p.resumed_segments_skipped,
    ),
    (
        "resumed_refetch_total",
        "Interests sent for segments salvage already held.",
        |p| p.resumed_refetch,
    ),
];

/// Field-by-field sum of peer counters. `completed_at` becomes the
/// *latest* completion among the peers that completed (`None` when none
/// did), so the exported gauge reports the swarm's completion time.
pub fn sum_peers<'a, I: IntoIterator<Item = &'a PeerStats>>(peers: I) -> PeerStats {
    let mut total = PeerStats::default();
    for p in peers {
        total.interests_sent += p.interests_sent;
        total.retransmissions += p.retransmissions;
        total.data_received += p.data_received;
        total.packets_verified += p.packets_verified;
        total.verify_failures += p.verify_failures;
        total.bitmaps_sent += p.bitmaps_sent;
        total.bitmaps_heard += p.bitmaps_heard;
        total.bitmaps_cancelled += p.bitmaps_cancelled;
        total.peba_backoffs += p.peba_backoffs;
        total.discovery_sent += p.discovery_sent;
        total.packets_served += p.packets_served;
        total.interests_forwarded += p.interests_forwarded;
        total.frames_peek_resolved += p.frames_peek_resolved;
        total.peek_cs_hits += p.peek_cs_hits;
        total.peek_dup_nonces += p.peek_dup_nonces;
        total.peek_fib_drops += p.peek_fib_drops;
        total.peek_unsolicited_data += p.peek_unsolicited_data;
        total.peek_relayed += p.peek_relayed;
        total.peek_relay_suppressed += p.peek_relay_suppressed;
        total.frames_relay_patched += p.frames_relay_patched;
        total.adverts_rejected_bad_sig += p.adverts_rejected_bad_sig;
        total.adverts_rejected_replay += p.adverts_rejected_replay;
        total.peers_expired += p.peers_expired;
        total.segments_rejected_tamper += p.segments_rejected_tamper;
        total.interests_rejected_replay += p.interests_rejected_replay;
        total.flood_frames_dropped += p.flood_frames_dropped;
        total.retx_give_ups += p.retx_give_ups;
        total.neighbors_expired += p.neighbors_expired;
        total.resumed_segments_skipped += p.resumed_segments_skipped;
        total.resumed_refetch += p.resumed_refetch;
        total.completed_at = match (total.completed_at, p.completed_at) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    total
}

/// Sums every honest DAPES peer's counters in a scenario (adversaries and
/// non-DAPES stacks are skipped).
pub fn peer_totals(sc: &Scenario) -> PeerStats {
    sum_peers(
        (0..sc.world.node_count())
            .filter_map(|i| sc.peer(NodeId(i as u32)))
            .map(|p| p.stats()),
    )
}

/// Renders the combined Prometheus text-format dump: the simulator's
/// counters followed by the aggregated `dapes_peer_*` counters. Pass
/// `&PeerStats::default()` for benches whose stacks are not DAPES peers
/// (the scheduler and hot-path swarms); the peer section then reports
/// zeros rather than silently disappearing from the scrape surface.
pub fn export(stats: &Stats, peers: &PeerStats) -> String {
    let mut out = stats.to_prometheus();
    for &(name, help, get) in PEER_COUNTERS {
        out.push_str(&format!(
            "# HELP dapes_peer_{name} {help}\n\
             # TYPE dapes_peer_{name} counter\n\
             dapes_peer_{name} {}\n",
            get(peers)
        ));
    }
    out.push_str(&format!(
        "# HELP dapes_peer_completed_at_seconds Latest peer completion time in simulated seconds (0 = incomplete).\n\
         # TYPE dapes_peer_completed_at_seconds gauge\n\
         dapes_peer_completed_at_seconds {}\n",
        peers
            .completed_at
            .map_or(0.0, |t| t.as_micros() as f64 / 1e6)
    ));
    out
}

/// Renders the Content Store sweep as labeled `dapes_cs_*` metrics — the
/// CS bench has no simulated world, so its `--prom-out` dump is
/// [`export`] over empty simulator/peer counters plus this section.
pub fn cs_section(run: &crate::cs::CsRun) -> String {
    let mut out = String::new();
    let mut metric =
        |name: &str, kind: &str, help: &str, value: &dyn Fn(&crate::cs::CsCell) -> f64| {
            out.push_str(&format!(
                "# HELP dapes_cs_{name} {help}\n# TYPE dapes_cs_{name} {kind}\n"
            ));
            for c in &run.cells {
                out.push_str(&format!(
                    "dapes_cs_{name}{{policy=\"{}\",budget_frac=\"{}\"}} {}\n",
                    c.policy.label(),
                    c.budget_frac,
                    value(c)
                ));
            }
        };
    metric(
        "lookups_total",
        "counter",
        "Interests replayed against the cell.",
        &|c| c.stats.lookups as f64,
    );
    metric(
        "hits_total",
        "counter",
        "Lookups served from cache.",
        &|c| c.stats.hits as f64,
    );
    metric(
        "misses_total",
        "counter",
        "Lookups that re-fetched.",
        &|c| c.stats.misses as f64,
    );
    metric(
        "evictions_total",
        "counter",
        "Entries evicted under budget pressure.",
        &|c| c.stats.evictions as f64,
    );
    metric(
        "hit_rate",
        "gauge",
        "hits / lookups over the Interest trace.",
        &|c| c.hit_rate,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds_every_counter_and_keeps_the_latest_completion() {
        let a = PeerStats {
            interests_sent: 3,
            resumed_refetch: 1,
            completed_at: Some(dapes_netsim::time::SimTime::from_secs(5)),
            ..PeerStats::default()
        };
        let b = PeerStats {
            interests_sent: 4,
            neighbors_expired: 2,
            completed_at: Some(dapes_netsim::time::SimTime::from_secs(9)),
            ..PeerStats::default()
        };
        let t = sum_peers([&a, &b]);
        assert_eq!(t.interests_sent, 7);
        assert_eq!(t.resumed_refetch, 1);
        assert_eq!(t.neighbors_expired, 2);
        assert_eq!(
            t.completed_at,
            Some(dapes_netsim::time::SimTime::from_secs(9))
        );
        assert_eq!(sum_peers([]).completed_at, None);
    }

    #[test]
    fn export_validates_and_covers_the_peer_namespace() {
        let peers = PeerStats {
            interests_sent: 11,
            ..PeerStats::default()
        };
        let dump = export(&Stats::new(4), &peers);
        crate::check::validate_prometheus(&dump).expect("dump validates");
        assert!(dump.contains("dapes_tx_frames_total"), "simulator section");
        assert!(dump.contains("dapes_peer_interests_sent_total 11"));
        // Every PeerStats counter is on the scrape surface.
        for (name, _, _) in PEER_COUNTERS {
            assert!(dump.contains(&format!("dapes_peer_{name} ")), "{name}");
        }
        assert!(dump.contains("dapes_peer_completed_at_seconds 0"));
    }

    #[test]
    fn cs_section_validates_with_labeled_samples() {
        let run = crate::cs::run_all(&crate::cs::CsParams {
            seed: 7,
            files: 1,
            chunks_per_file: 20,
            chunk_size: 32,
            interests: 200,
            zipf_s: 0.9,
            refresh_every: 16,
            budget_fracs: vec![1.0],
        });
        let dump = format!(
            "{}{}",
            export(&Stats::new(0), &PeerStats::default()),
            cs_section(&run)
        );
        crate::check::validate_prometheus(&dump).expect("dump validates");
        assert!(dump.contains("dapes_cs_hits_total{policy=\"fifo\",budget_frac=\"1\"}"));
    }
}
