//! Content Store benchmark: a memory-budgeted million-object cache under
//! a Zipf Interest load, swept across eviction policies and byte budgets.
//!
//! The corpus is real pipeline output: [`ChunkedFile`]s cut into
//! fixed-size segments with a catalog packet each (one Merkle proof per
//! file is verified during the build, so the corpus the cache serves is
//! the one the storage pipeline actually emits). Every cell seeds the
//! full corpus into a fresh store, then replays a seeded Zipf-distributed
//! Interest trace against it; a miss re-fetches (re-inserts) the object,
//! and every [`CsParams::refresh_every`]-th Interest re-inserts even on a
//! hit, exercising the refresh rank of each policy.
//!
//! Three determinism gates pin the refactor:
//!
//! * **Trace equivalence** — the FIFO count-capped cell runs once on the
//!   wire-arena tables and once on the legacy tables; their hit/miss
//!   traces (FNV-1a folded) must be bit-identical, so the budgeted
//!   rebuild reproduces the pre-refactor store exactly.
//! * **Self-determinism** — every cell runs twice in-process; trace and
//!   final counters must match, so committed reports reproduce.
//! * **Exact accounting** — every store passes [`ContentStore::audit`]
//!   after the run, and a full-size budget must hit on every Interest.

use dapes_core::pipeline::ChunkedFile;
use dapes_ndn::cs::{ContentStore, CsBudget, CsStats, EvictionPolicyKind, ENTRY_OVERHEAD};
use dapes_ndn::name::Name;
use dapes_ndn::packet::Data;
use dapes_netsim::time::SimTime;
use dapes_testutil::zipf::ZipfSampler;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Workload shape for one benchmark invocation.
#[derive(Clone, Debug)]
pub struct CsParams {
    /// RNG seed for the Zipf Interest trace.
    pub seed: u64,
    /// Number of chunked files in the corpus.
    pub files: usize,
    /// Segments per file (each file also publishes one catalog packet).
    pub chunks_per_file: usize,
    /// Segment payload size in bytes.
    pub chunk_size: usize,
    /// Interests replayed against each cell.
    pub interests: usize,
    /// Zipf exponent of the Interest popularity distribution.
    pub zipf_s: f64,
    /// Every n-th Interest re-inserts its object even on a hit, driving
    /// the refresh path of each policy. 0 disables refreshes.
    pub refresh_every: usize,
    /// Byte budgets as fractions of the full corpus footprint; 1.0 must
    /// yield a 100% hit rate.
    pub budget_fracs: Vec<f64>,
}

impl CsParams {
    /// The committed-report workload: 1.2 million cached objects.
    pub fn dense() -> Self {
        CsParams {
            seed: 42,
            files: 120,
            chunks_per_file: 10_000,
            chunk_size: 64,
            interests: 2_000_000,
            zipf_s: 0.9,
            refresh_every: 16,
            budget_fracs: vec![0.125, 0.25, 0.5, 1.0],
        }
    }

    /// CI smoke workload: same axes, seconds instead of minutes.
    pub fn smoke() -> Self {
        CsParams {
            seed: 42,
            files: 4,
            chunks_per_file: 250,
            chunk_size: 64,
            interests: 20_000,
            zipf_s: 0.9,
            refresh_every: 16,
            budget_fracs: vec![0.25, 1.0],
        }
    }

    /// Total corpus objects: segments plus one catalog per file.
    pub fn objects(&self) -> usize {
        self.files * (self.chunks_per_file + 1)
    }
}

/// One (policy, budget) cell of the sweep.
#[derive(Clone, Debug)]
pub struct CsCell {
    /// Eviction policy under test.
    pub policy: EvictionPolicyKind,
    /// Byte budget of this cell.
    pub budget_bytes: usize,
    /// The budget as a fraction of the full corpus footprint.
    pub budget_frac: f64,
    /// Final cumulative store counters.
    pub stats: CsStats,
    /// `hits / lookups` over the Interest trace.
    pub hit_rate: f64,
    /// Entries resident when the trace ended.
    pub resident_entries: usize,
    /// Accounted bytes resident when the trace ended.
    pub resident_bytes: usize,
    /// FNV-1a fold of the (object, hit) trace — the cell's identity.
    pub trace_fnv: u64,
    /// Whether an in-process second run reproduced trace and counters.
    pub deterministic: bool,
    /// Whether [`ContentStore::audit`] passed after the run.
    pub audit_clean: bool,
}

/// The full sweep plus the FIFO trace-equivalence cells.
#[derive(Clone, Debug)]
pub struct CsRun {
    /// Corpus size in objects.
    pub objects: usize,
    /// Byte footprint of the whole corpus under the byte-budget cost
    /// model (`wire_size + ENTRY_OVERHEAD` per object).
    pub full_budget_bytes: usize,
    /// FIFO count-capped trace on the wire-arena tables.
    pub trace_fnv_wire: u64,
    /// The same workload on the legacy table generation.
    pub trace_fnv_legacy: u64,
    /// Whether both trace-equivalence stores passed their audits.
    pub trace_audit_clean: bool,
    /// Policy × budget sweep cells.
    pub cells: Vec<CsCell>,
}

impl CsRun {
    /// Whether the wire-arena FIFO store replayed the legacy store's
    /// hit/miss trace bit for bit.
    pub fn fifo_trace_match(&self) -> bool {
        self.trace_fnv_wire == self.trace_fnv_legacy
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, id: u64, hit: bool) -> u64 {
    for b in id.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    (h ^ hit as u64).wrapping_mul(FNV_PRIME)
}

/// Builds the corpus through the chunked-file pipeline: per file, the
/// catalog packet followed by every segment, with a per-object refetch
/// cost (files sit at different simulated hop distances, which is what
/// the cost-aware policy prices). One Merkle proof per file is verified
/// against its catalog so the corpus is pinned to the pipeline's output.
pub fn build_corpus(params: &CsParams) -> (Vec<Data>, Vec<u32>) {
    let collection = Name::from_uri("/bench-cs-1533783192");
    let mut corpus = Vec::with_capacity(params.objects());
    let mut costs = Vec::with_capacity(params.objects());
    for f in 0..params.files {
        let file = format!("f{f:03}");
        let cf = ChunkedFile::synthetic(
            &collection,
            &file,
            params.chunks_per_file * params.chunk_size,
            params.chunk_size,
        );
        assert_eq!(cf.chunk_count(), params.chunks_per_file, "chunk geometry");
        let catalog = cf.catalog();
        let proof = cf.prove(0).expect("proof for segment 0");
        let seg0 = cf.segment(0).expect("segment 0");
        assert!(
            ChunkedFile::verify_segment(&catalog, &proof, 0, &seg0),
            "pipeline proof must verify for {file}"
        );
        // Hop distance to this file's producer: 1..=5, by file.
        let cost = (f % 5 + 1) as u32;
        corpus.push(cf.catalog_data());
        costs.push(cost);
        for seg in cf.segments() {
            corpus.push(seg);
            costs.push(cost);
        }
    }
    (corpus, costs)
}

/// Seeds the corpus, replays the Zipf Interest trace (miss → refetch,
/// periodic refresh on hit) and returns the folded hit/miss trace.
fn run_workload(
    corpus: &[Data],
    costs: &[u32],
    zipf: &ZipfSampler,
    params: &CsParams,
    cs: &mut ContentStore,
) -> u64 {
    let t = SimTime::ZERO;
    for (data, &cost) in corpus.iter().zip(costs) {
        cs.insert_with_cost(data.clone(), cost, t);
    }
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut fnv = FNV_OFFSET;
    for step in 0..params.interests {
        let id = zipf.sample(&mut rng);
        let hit = cs.lookup(corpus[id].name(), false, false, t).is_some();
        if !hit || (params.refresh_every > 0 && step % params.refresh_every == 0) {
            cs.insert_with_cost(corpus[id].clone(), costs[id], t);
        }
        fnv = fnv_fold(fnv, id as u64, hit);
    }
    fnv
}

fn run_cell(
    corpus: &[Data],
    costs: &[u32],
    zipf: &ZipfSampler,
    params: &CsParams,
    policy: EvictionPolicyKind,
    budget_bytes: usize,
    budget_frac: f64,
) -> CsCell {
    let run = || {
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(budget_bytes), policy);
        let fnv = run_workload(corpus, costs, zipf, params, &mut cs);
        let audit = cs.audit();
        (fnv, cs.stats(), cs.len(), cs.resident_bytes(), audit)
    };
    let (fnv, stats, resident_entries, resident_bytes, audit) = run();
    let (fnv2, stats2, _, _, audit2) = run();
    CsCell {
        policy,
        budget_bytes,
        budget_frac,
        stats,
        hit_rate: stats.hits as f64 / (stats.lookups.max(1)) as f64,
        resident_entries,
        resident_bytes,
        trace_fnv: fnv,
        deterministic: fnv == fnv2 && stats == stats2,
        audit_clean: audit.is_ok() && audit2.is_ok(),
    }
}

/// Runs the whole sweep: the trace-equivalence pair, then every
/// policy × budget cell (each twice, for the self-determinism gate).
pub fn run_all(params: &CsParams) -> CsRun {
    let (corpus, costs) = build_corpus(params);
    let zipf = ZipfSampler::new(corpus.len(), params.zipf_s);
    let full_budget_bytes: usize = corpus.iter().map(|d| d.wire_size() + ENTRY_OVERHEAD).sum();

    // Trace equivalence: the historical count-capped FIFO shape on both
    // table generations must replay the same hit/miss sequence.
    let cap = (corpus.len() / 4).max(1);
    let mut wire = ContentStore::new(cap);
    let trace_fnv_wire = run_workload(&corpus, &costs, &zipf, params, &mut wire);
    let mut legacy = ContentStore::legacy(cap);
    let trace_fnv_legacy = run_workload(&corpus, &costs, &zipf, params, &mut legacy);
    let trace_audit_clean = wire.audit().is_ok() && legacy.audit().is_ok();

    let mut cells = Vec::new();
    for policy in EvictionPolicyKind::ALL {
        for &frac in &params.budget_fracs {
            let budget_bytes = if frac >= 1.0 {
                full_budget_bytes
            } else {
                (full_budget_bytes as f64 * frac) as usize
            };
            cells.push(run_cell(
                &corpus,
                &costs,
                &zipf,
                params,
                policy,
                budget_bytes,
                frac,
            ));
        }
    }
    CsRun {
        objects: corpus.len(),
        full_budget_bytes,
        trace_fnv_wire,
        trace_fnv_legacy,
        trace_audit_clean,
        cells,
    }
}

/// The CI gate: returns the first violated invariant.
///
/// * the wire-arena FIFO trace equals the legacy trace (bit-identical
///   pre-refactor behaviour);
/// * both trace stores and every cell pass the exact-accounting audit;
/// * every cell reproduces itself on a second in-process run;
/// * hit and miss counters decompose lookups exactly and the hit rate is
///   a probability;
/// * a full-size budget serves every Interest from cache.
pub fn gate(run: &CsRun) -> Result<(), String> {
    if !run.fifo_trace_match() {
        return Err(format!(
            "FIFO trace diverged: wire {:#018x} vs legacy {:#018x}",
            run.trace_fnv_wire, run.trace_fnv_legacy
        ));
    }
    if !run.trace_audit_clean {
        return Err("trace-equivalence stores failed their audit".into());
    }
    for cell in &run.cells {
        let label = format!(
            "{} @ {} B ({:.1}%)",
            cell.policy.label(),
            cell.budget_bytes,
            cell.budget_frac * 100.0
        );
        if !cell.audit_clean {
            return Err(format!("{label}: store audit failed"));
        }
        if !cell.deterministic {
            return Err(format!("{label}: second run diverged"));
        }
        let s = cell.stats;
        if s.hits + s.misses != s.lookups {
            return Err(format!(
                "{label}: counters do not decompose ({} + {} != {})",
                s.hits, s.misses, s.lookups
            ));
        }
        if !(0.0..=1.0).contains(&cell.hit_rate) {
            return Err(format!("{label}: hit rate {} out of range", cell.hit_rate));
        }
        if cell.budget_frac >= 1.0 && cell.hit_rate < 1.0 {
            return Err(format!(
                "{label}: full budget must hit every Interest, got {}",
                cell.hit_rate
            ));
        }
    }
    Ok(())
}

/// Renders `BENCH_cs.json`: header, gates, and one curve entry per cell.
pub fn render_report(params: &CsParams, run: &CsRun) -> String {
    let curves: Vec<String> = run
        .cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"policy\": \"{}\", \"budget_bytes\": {}, ",
                    "\"budget_frac\": {:.4}, \"hit_rate\": {:.6}, ",
                    "\"lookups\": {}, \"hits\": {}, \"misses\": {}, ",
                    "\"insertions\": {}, \"refreshes\": {}, \"evictions\": {}, ",
                    "\"rejected_oversize\": {}, \"resident_entries\": {}, ",
                    "\"resident_bytes\": {}, \"trace_fnv\": \"{:#018x}\", ",
                    "\"deterministic\": {}, \"audit_clean\": {}}}"
                ),
                c.policy.label(),
                c.budget_bytes,
                c.budget_frac,
                c.hit_rate,
                c.stats.lookups,
                c.stats.hits,
                c.stats.misses,
                c.stats.insertions,
                c.stats.refreshes,
                c.stats.evictions,
                c.stats.rejected_oversize,
                c.resident_entries,
                c.resident_bytes,
                c.trace_fnv,
                c.deterministic,
                c.audit_clean,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"cs\",\n",
            "  \"nodes\": 1,\n",
            "  \"seed\": {seed},\n",
            "  \"objects\": {objects},\n",
            "  \"files\": {files},\n",
            "  \"chunks_per_file\": {cpf},\n",
            "  \"chunk_size\": {chunk},\n",
            "  \"interests\": {interests},\n",
            "  \"zipf_s\": {zipf:.3},\n",
            "  \"refresh_every\": {refresh},\n",
            "  \"full_budget_bytes\": {full},\n",
            "  \"fifo_trace_match\": {trace_match},\n",
            "  \"trace_fnv\": \"{trace_fnv:#018x}\",\n",
            "  \"curves\": [\n{curves}\n  ]\n",
            "}}\n"
        ),
        seed = params.seed,
        objects = run.objects,
        files = params.files,
        cpf = params.chunks_per_file,
        chunk = params.chunk_size,
        interests = params.interests,
        zipf = params.zipf_s,
        refresh = params.refresh_every,
        full = run.full_budget_bytes,
        trace_match = run.fifo_trace_match(),
        trace_fnv = run.trace_fnv_wire,
        curves = curves.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized workload for the module tests.
    fn tiny() -> CsParams {
        CsParams {
            seed: 7,
            files: 2,
            chunks_per_file: 40,
            chunk_size: 32,
            interests: 2_000,
            zipf_s: 0.9,
            refresh_every: 16,
            budget_fracs: vec![0.25, 1.0],
        }
    }

    #[test]
    fn corpus_is_catalogs_plus_segments_with_file_major_costs() {
        let params = tiny();
        let (corpus, costs) = build_corpus(&params);
        assert_eq!(corpus.len(), params.objects());
        assert_eq!(costs.len(), corpus.len());
        // First object of each file group is its catalog.
        let group = params.chunks_per_file + 1;
        assert!(corpus[0].name().to_string().ends_with("/catalog"));
        assert!(corpus[group].name().to_string().ends_with("/catalog"));
        // Costs are constant within a file group.
        assert!(costs[..group].iter().all(|&c| c == costs[0]));
        assert_ne!(costs[0], costs[group], "files sit at different distances");
    }

    #[test]
    fn sweep_passes_its_own_gate_and_validates() {
        let params = tiny();
        let run = run_all(&params);
        assert_eq!(gate(&run), Ok(()));
        assert!(run.fifo_trace_match());
        // Constrained cells actually churn; full-budget cells never miss.
        for cell in &run.cells {
            if cell.budget_frac >= 1.0 {
                assert_eq!(cell.stats.misses, 0, "{:?}", cell.policy);
                assert_eq!(cell.stats.evictions, 0, "{:?}", cell.policy);
            } else {
                assert!(cell.stats.evictions > 0, "{:?}", cell.policy);
                assert!(cell.hit_rate < 1.0, "{:?}", cell.policy);
            }
        }
        let json = render_report(&params, &run);
        let doc = crate::json::parse(&json).expect("report parses");
        assert_eq!(crate::check::validate(&doc), Ok(()));
        let table = crate::check::summary(&doc).expect("summary renders");
        assert!(table.contains("`cs`") && table.contains("`lru`"), "{table}");
    }

    #[test]
    fn recency_policies_beat_fifo_on_a_zipf_trace() {
        // The point of the policy sweep: under a constrained budget and a
        // heavy-tailed trace, recency/frequency-aware eviction keeps the
        // hot head resident while FIFO cycles it out.
        let run = run_all(&tiny());
        let rate = |kind: EvictionPolicyKind| {
            run.cells
                .iter()
                .find(|c| c.policy == kind && c.budget_frac < 1.0)
                .expect("constrained cell")
                .hit_rate
        };
        assert!(
            rate(EvictionPolicyKind::Lru) > rate(EvictionPolicyKind::Fifo),
            "lru {} vs fifo {}",
            rate(EvictionPolicyKind::Lru),
            rate(EvictionPolicyKind::Fifo)
        );
        assert!(
            rate(EvictionPolicyKind::Lfu) > rate(EvictionPolicyKind::Fifo),
            "lfu {} vs fifo {}",
            rate(EvictionPolicyKind::Lfu),
            rate(EvictionPolicyKind::Fifo)
        );
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let a = run_all(&tiny());
        let mut params = tiny();
        params.seed = 8;
        let b = run_all(&params);
        assert_ne!(
            a.cells[0].trace_fnv, b.cells[0].trace_fnv,
            "the trace checksum must track the workload"
        );
        // But each is internally reproducible.
        assert!(a.cells.iter().all(|c| c.deterministic));
        assert!(b.cells.iter().all(|c| c.deterministic));
    }

    #[test]
    fn gate_rejects_a_diverged_fifo_trace() {
        let mut run = run_all(&tiny());
        run.trace_fnv_legacy ^= 1;
        let err = gate(&run).expect_err("diverged trace");
        assert!(err.contains("FIFO trace diverged"), "{err}");
    }
}
