//! Hot-path throughput benchmark: runs the dense relay swarm under the
//! legacy (pre-refactor) and zero-copy cost models and writes
//! `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin hotpath            # dense (280 nodes)
//! cargo run --release -p dapes-bench --bin hotpath -- --quick # CI smoke
//! cargo run ... -- --out path/to/BENCH_hotpath.json
//! cargo run ... -- --prom-out BENCH_hotpath.prom   # Prometheus dump
//! ```

use dapes_bench::hotpath::{render_report, run_hotpath, HotpathMode, HotpathParams};
use dapes_core::stats::PeerStats;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_hotpath.json".to_owned());
    let mut params = if quick {
        HotpathParams::smoke()
    } else {
        HotpathParams::dense()
    };
    // Optional overrides for exploring the parameter space.
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let min_speedup: Option<f64> = arg("--min-speedup").map(|v| v.parse().expect("--min-speedup"));
    if let Some(n) = arg("--nodes") {
        params.nodes = n.parse().expect("--nodes");
    }
    if let Some(f) = arg("--field") {
        params.field = f.parse().expect("--field");
    }
    if let Some(p) = arg("--period-ms") {
        params.beacon_period_ms = p.parse().expect("--period-ms");
    }
    if let Some(b) = arg("--beacons") {
        params.beacons = b.parse().expect("--beacons");
    }
    if let Some(r) = arg("--relay-prob") {
        params.relay_prob = r.parse().expect("--relay-prob");
    }
    if let Some(p) = arg("--payload") {
        params.payload_bytes = p.parse().expect("--payload");
    }
    eprintln!(
        "perf_hotpath: {} nodes, {} beacons each, field {} m, range {} m",
        params.nodes, params.beacons, params.field, params.range
    );

    // Warm up BOTH cost models at small scale so neither timed run pays
    // first-touch costs, then interleave two timed repetitions per mode and
    // keep each mode's best run — this cancels run-ordering effects
    // (allocator arenas, page cache) instead of favoring whichever mode
    // runs later.
    let warmup = HotpathParams {
        nodes: params.nodes.min(40),
        beacons: 2,
        ..params
    };
    let _ = run_hotpath(&warmup, HotpathMode::Legacy);
    let _ = run_hotpath(&warmup, HotpathMode::ZeroCopy);

    let pick_best = |a: dapes_bench::hotpath::HotpathResult,
                     b: dapes_bench::hotpath::HotpathResult| {
        if a.wall_secs <= b.wall_secs {
            a
        } else {
            b
        }
    };
    let baseline = pick_best(
        run_hotpath(&params, HotpathMode::Legacy),
        run_hotpath(&params, HotpathMode::Legacy),
    );
    eprintln!(
        "  legacy   : {:>8.0} events/s  ({:.2} s wall, {} events, {} bytes cloned)",
        baseline.events_per_sec, baseline.wall_secs, baseline.events, baseline.bytes_cloned
    );
    let optimized = pick_best(
        run_hotpath(&params, HotpathMode::ZeroCopy),
        run_hotpath(&params, HotpathMode::ZeroCopy),
    );
    eprintln!(
        "  zero-copy: {:>8.0} events/s  ({:.2} s wall, {} events, {} bytes cloned)",
        optimized.events_per_sec, optimized.wall_secs, optimized.events, optimized.bytes_cloned
    );
    assert_eq!(
        (baseline.tx_frames, baseline.delivered),
        (optimized.tx_frames, optimized.delivered),
        "modes must run the same trace for the comparison to be fair"
    );
    let speedup = optimized.events_per_sec / baseline.events_per_sec;
    eprintln!("  speedup  : {speedup:.2}x events/s");

    let json = render_report(&params, &baseline, &optimized);
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    eprintln!("wrote {out}");
    if let Some(path) = arg("--prom-out") {
        // The relay swarm runs bench stacks, not DAPES peers, so the peer
        // section reports zeros.
        let dump = dapes_bench::prom::export(&optimized.stats, &PeerStats::default());
        std::fs::write(&path, dump).expect("write prometheus dump");
        eprintln!("wrote {path} (zero-copy run)");
    }

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!(
                "REGRESSION: zero-copy at {speedup:.2}x events/s is below the required \
                 {min:.2}x over legacy"
            );
            std::process::exit(1);
        }
    }
}
