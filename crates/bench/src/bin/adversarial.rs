//! Adversarial benchmark: runs the benign control cell plus the four
//! attack cells (spoof / tamper / replay / flood), gates on the defense
//! invariants and writes `BENCH_adversarial.json` plus a Prometheus
//! text-format dump of the benign cell's simulator counters.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin adversarial            # dense
//! cargo run --release -p dapes-bench --bin adversarial -- --quick # CI smoke
//! cargo run ... -- --out BENCH_adversarial.json --prom-out BENCH_adversarial.prom
//! ```
//!
//! The gate (exit 1 on first violation): every cell completes its
//! transfer, every attack cell's rejection counters equal the hostile
//! frames actually delivered, no attack slows completion beyond
//! [`MAX_SLOWDOWN`]× benign, the stale-peer sweep fires everywhere, and
//! the benign cell shows zero hostile traffic and zero rejections.
//!
//! [`MAX_SLOWDOWN`]: dapes_bench::adversarial::MAX_SLOWDOWN

use dapes_bench::adversarial::{render_report, run_all, AdversarialParams, AttackMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let out = arg("--out").unwrap_or_else(|| "BENCH_adversarial.json".to_owned());
    let prom_out = arg("--prom-out");
    let mut params = if quick {
        AdversarialParams::smoke()
    } else {
        AdversarialParams::dense()
    };
    if let Some(s) = arg("--seed") {
        params.seed = s.parse().expect("--seed");
    }
    eprintln!(
        "adversarial: seed {}, {} files x {} B, {} s horizon",
        params.seed, params.files, params.file_size, params.run_secs
    );

    let outcomes = run_all(&params);
    for o in &outcomes {
        eprintln!(
            "  {:<7}: done={} at {:>6.2} s, {:>5} frames ({:>4.1}% overhead), \
             hostile {:>4} delivered / {:>4} sent, rejected bad-sig {} replay {}/{} \
             tamper {} flood {}, expired {}, exact={}",
            o.mode.label(),
            o.completed,
            o.completion_secs,
            o.tx_frames,
            o.overhead_ratio * 100.0,
            o.hostile_delivered_total(),
            o.hostile_sent,
            o.defense.adverts_rejected_bad_sig,
            o.defense.adverts_rejected_replay,
            o.defense.interests_rejected_replay,
            o.defense.segments_rejected_tamper,
            o.defense.flood_frames_dropped,
            o.defense.peers_expired,
            o.exact_accounting,
        );
    }

    let json = render_report(&params, &outcomes);
    std::fs::write(&out, &json).expect("write BENCH_adversarial.json");
    eprintln!("wrote {out}");
    if let Some(prom) = prom_out {
        let benign = outcomes
            .iter()
            .find(|o| o.mode == AttackMode::Benign)
            .expect("benign cell always runs");
        std::fs::write(&prom, &benign.prometheus).expect("write prometheus dump");
        eprintln!("wrote {prom}");
    }

    if let Err(msg) = dapes_bench::adversarial::gate(&outcomes) {
        eprintln!("GATE VIOLATION: {msg}");
        std::process::exit(1);
    }
    eprintln!("gate: all defense invariants hold");
}
