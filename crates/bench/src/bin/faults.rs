//! Fault-injection benchmark: sweeps crash counts × partition durations
//! over one swarm, gates on the recovery invariants and writes
//! `BENCH_faults.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin faults            # dense
//! cargo run --release -p dapes-bench --bin faults -- --quick # CI smoke
//! cargo run ... -- --out BENCH_faults.json --seed 9
//! cargo run ... -- --prom-out BENCH_faults.prom   # Prometheus dump
//! ```
//!
//! The gate (exit 1 on first violation): every transfer completes after
//! the heal, resumed downloaders re-fetch zero held segments, the fault
//! counters account exactly for each cell's plan, every cell's double run
//! is bit-identical, and the sweep exercises each recovery mechanism
//! (salvage resume, partition drops, backoff give-ups) at least once.

use dapes_bench::faults::{gate, render_report, run_all, FaultParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let out = arg("--out").unwrap_or_else(|| "BENCH_faults.json".to_owned());
    let mut params = if quick {
        FaultParams::smoke()
    } else {
        FaultParams::dense()
    };
    if let Some(s) = arg("--seed") {
        params.seed = s.parse().expect("--seed");
    }
    eprintln!(
        "faults: seed {}, {} files x {} B, crash at {:.1} s, cut at {:.1} s",
        params.seed,
        params.files,
        params.file_size,
        params.crash_at_us as f64 / 1e6,
        params.cut_at_us as f64 / 1e6,
    );

    let outcomes = run_all(&params);
    for o in &outcomes {
        eprintln!(
            "  {:<13}: done={} at {:>6.2} s, {:>5} frames, crashes {}/{} restarts, \
             {:>4} part-drops, retx {:>3} (gave up {:>2}), resumed-skip {:>3}, \
             refetch {}, stale {}, deterministic={}",
            o.label,
            o.completed,
            o.completion_secs,
            o.tx_frames,
            o.node_crashes,
            o.node_restarts,
            o.partition_drops,
            o.retransmissions,
            o.retx_give_ups,
            o.resumed_segments_skipped,
            o.resumed_refetch,
            o.stale_events_suppressed,
            o.deterministic,
        );
    }

    let json = render_report(&params, &outcomes);
    std::fs::write(&out, &json).expect("write BENCH_faults.json");
    eprintln!("wrote {out}");
    if let Some(path) = arg("--prom-out") {
        // The last cell sweeps the most faults (max crashes + longest
        // partition), so its counters are the richest dump.
        let cell = outcomes.last().expect("the sweep ran at least one cell");
        std::fs::write(&path, &cell.prometheus).expect("write prometheus dump");
        eprintln!("wrote {path} ({} cell)", cell.label);
    }

    if let Err(msg) = gate(&outcomes) {
        eprintln!("GATE VIOLATION: {msg}");
        std::process::exit(1);
    }
    eprintln!("gate: all recovery invariants hold");
}
