//! Reproduces the paper's Table I feasibility study. `--profile quick|paper`.
fn main() {
    let profile = dapes_bench::Profile::from_env_args();
    dapes_bench::run_figure("table1", profile);
}
