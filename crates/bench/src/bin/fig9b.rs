//! Reproduces the paper's fig9b experiment. `--profile quick|paper`.
fn main() {
    let profile = dapes_bench::Profile::from_env_args();
    dapes_bench::run_figure("fig9b", profile);
}
