//! Content Store benchmark binary: sweeps eviction policy × memory
//! budget over a chunked-file corpus under Zipf Interest load, gates on
//! the determinism and accounting invariants and writes `BENCH_cs.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin cs            # dense (1.2M objects)
//! cargo run --release -p dapes-bench --bin cs -- --quick # CI smoke
//! cargo run ... -- --out BENCH_cs.json --seed 42
//! cargo run ... -- --prom-out BENCH_cs.prom   # Prometheus dump
//! ```
//!
//! The gate (exit 1 on first violation): the FIFO wire-arena trace is
//! bit-identical to the legacy-table trace, every cell reproduces itself
//! on a second run, every store passes its exact-accounting audit, hit
//! and miss counters decompose lookups, and a full-size budget serves
//! every Interest from cache.

use dapes_bench::cs::{gate, render_report, run_all, CsParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let out = arg("--out").unwrap_or_else(|| "BENCH_cs.json".to_owned());
    let mut params = if quick {
        CsParams::smoke()
    } else {
        CsParams::dense()
    };
    if let Some(s) = arg("--seed") {
        params.seed = s.parse().expect("--seed");
    }
    eprintln!(
        "cs: seed {}, {} files x {} chunks x {} B = {} objects, {} Zipf({}) Interests",
        params.seed,
        params.files,
        params.chunks_per_file,
        params.chunk_size,
        params.objects(),
        params.interests,
        params.zipf_s,
    );

    let run = run_all(&params);
    eprintln!(
        "  trace equivalence: wire {:#018x} vs legacy {:#018x} ({})",
        run.trace_fnv_wire,
        run.trace_fnv_legacy,
        if run.fifo_trace_match() {
            "match"
        } else {
            "DIVERGED"
        },
    );
    for c in &run.cells {
        eprintln!(
            "  {:<5} @ {:>5.1}% ({:>11} B): hit rate {:.4}, {:>8} hits / {:>8} misses, \
             {:>8} evictions, {:>7} resident ({} B), fnv {:#018x}, det={} audit={}",
            c.policy.label(),
            c.budget_frac * 100.0,
            c.budget_bytes,
            c.hit_rate,
            c.stats.hits,
            c.stats.misses,
            c.stats.evictions,
            c.resident_entries,
            c.resident_bytes,
            c.trace_fnv,
            c.deterministic,
            c.audit_clean,
        );
    }

    let json = render_report(&params, &run);
    std::fs::write(&out, &json).expect("write BENCH_cs.json");
    eprintln!("wrote {out}");
    if let Some(path) = arg("--prom-out") {
        // The store microbench has no simulated world or DAPES peers, so
        // the shared sections report zeros; the labeled `dapes_cs_*`
        // samples carry the sweep.
        let dump = format!(
            "{}{}",
            dapes_bench::prom::export(
                &dapes_netsim::stats::Stats::new(0),
                &dapes_core::stats::PeerStats::default(),
            ),
            dapes_bench::prom::cs_section(&run)
        );
        std::fs::write(&path, dump).expect("write prometheus dump");
        eprintln!("wrote {path}");
    }

    if let Err(msg) = gate(&run) {
        eprintln!("GATE VIOLATION: {msg}");
        std::process::exit(1);
    }
    eprintln!("gate: trace equivalence, determinism and accounting hold");
}
