//! Runs one scenario and emits the simulator's counters as a Prometheus
//! text-format dump — the scrape-friendly observability surface next to the
//! JSON reports.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin metrics                 # stdout
//! cargo run ... --bin metrics -- --attack tamper --out run.prom    # file
//! cargo run ... --bin metrics -- --seed 9 --secs 120
//! ```
//!
//! `--attack` selects a cell of the adversarial benchmark (`benign`,
//! `spoof`, `tamper`, `replay`, `flood`); the default is the benign cell.
//! The dump is `checkjson`-compatible (`checkjson file.prom`).

use dapes_bench::adversarial::{run_mode, AdversarialParams, AttackMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let mode = match arg("--attack").as_deref() {
        None | Some("benign") => AttackMode::Benign,
        Some("spoof") => AttackMode::Spoof,
        Some("tamper") => AttackMode::Tamper,
        Some("replay") => AttackMode::Replay,
        Some("flood") => AttackMode::Flood,
        Some(other) => {
            panic!("--attack must be one of benign/spoof/tamper/replay/flood, got {other:?}")
        }
    };
    let mut params = AdversarialParams::smoke();
    if let Some(s) = arg("--seed") {
        params.seed = s.parse().expect("--seed");
    }
    if let Some(s) = arg("--secs") {
        params.run_secs = s.parse().expect("--secs");
    }
    let outcome = run_mode(&params, mode);
    eprintln!(
        "metrics: {} cell, completed={}, {} frames on the air",
        outcome.mode.label(),
        outcome.completed,
        outcome.tx_frames
    );
    match arg("--out") {
        Some(path) => {
            std::fs::write(&path, &outcome.prometheus).expect("write metrics dump");
            eprintln!("wrote {path}");
        }
        None => print!("{}", outcome.prometheus),
    }
}
