//! Scheduler throughput benchmark: runs the timer-heavy advert swarm under
//! all twelve control-plane cost models (heap/wheel × eager/lazy[+patch] ×
//! per-receiver/batched delivery) and writes `BENCH_sched.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin sched            # dense (2,400 nodes)
//! cargo run --release -p dapes-bench --bin sched -- --quick # CI smoke
//! cargo run ... -- --out path/to/BENCH_sched.json
//! cargo run ... -- --quick --min-speedup 1.0   # exit non-zero on regression
//! cargo run ... -- --relay-patch off           # drop the decode-free-relay axis
//! ```
//!
//! `--relay-patch` selects the decode-free-relay axis of the sweep: `both`
//! (default) runs all twelve modes, `on` keeps only the patched lazy modes
//! (plus the eager baselines), `off` keeps the eight pre-patch modes — the
//! CI matrix runs `on` and `off` so a regression in either relay path gates
//! the merge on its own.

use dapes_bench::sched::{render_report, run_sched, trace_of, SchedMode, SchedParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_sched.json".to_owned());
    let mut params = if quick {
        SchedParams::smoke()
    } else {
        SchedParams::dense()
    };
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let min_speedup: Option<f64> = arg("--min-speedup").map(|v| v.parse().expect("--min-speedup"));
    if let Some(n) = arg("--nodes") {
        params.nodes = n.parse().expect("--nodes");
    }
    if let Some(f) = arg("--field") {
        params.field = f.parse().expect("--field");
    }
    if let Some(r) = arg("--rounds") {
        params.rounds = r.parse().expect("--rounds");
    }
    if let Some(p) = arg("--period-ms") {
        params.advert_period_ms = p.parse().expect("--period-ms");
    }
    if let Some(t) = arg("--tick-ms") {
        params.tick_ms = t.parse().expect("--tick-ms");
    }
    let mut modes: Vec<SchedMode> = match arg("--relay-patch").as_deref() {
        None | Some("both") => SchedMode::sweep(),
        Some("on") => SchedMode::sweep()
            .into_iter()
            .filter(|m| m.relay_patch == m.lazy_decode)
            .collect(),
        Some("off") => SchedMode::sweep()
            .into_iter()
            .filter(|m| !m.relay_patch)
            .collect(),
        Some(other) => panic!("--relay-patch must be on, off or both, got {other:?}"),
    };
    // Debugging escape hatch: run only the modes whose label contains the
    // given substring (comma-separated alternatives). Disables the speedup
    // gate unless the filtered set still contains the baseline.
    if let Some(only) = arg("--only") {
        modes.retain(|m| only.split(',').any(|pat| m.label().contains(pat)));
        assert!(!modes.is_empty(), "--only {only:?} matched no mode");
    }
    eprintln!(
        "perf_sched: {} nodes, {} rounds each, field {} m, range {} m, tick {} ms",
        params.nodes, params.rounds, params.field, params.range, params.tick_ms
    );

    // Warm both extremes at small scale so no timed run pays first-touch
    // costs, then take each mode's best of two interleaved repetitions.
    let warmup = SchedParams {
        nodes: params.nodes.min(60),
        rounds: 2,
        field: params.field.min(300.0),
        ..params
    };
    let _ = run_sched(&warmup, SchedMode::baseline());
    let _ = run_sched(&warmup, SchedMode::optimized());

    let reps = if quick { 2 } else { 3 };
    let mut results = Vec::new();
    for mode in modes {
        let best = (0..reps)
            .map(|_| run_sched(&params, mode))
            .reduce(|a, b| if a.wall_secs <= b.wall_secs { a } else { b })
            .expect("at least one repetition");
        eprintln!(
            "  {:<24}: {:>9.0} events/s  ({:.2} s wall, {} popped / {} sim events, {} peeked ({} fib-drop, {} cbp-hit, {} relay-patched) / {} decoded, pool {}h/{}m)",
            best.mode.label(),
            best.events_per_sec,
            best.wall_secs,
            best.events,
            best.sim_events,
            best.frames_peek_resolved,
            best.peek_fib_drops,
            best.peek_prefix_hits,
            best.frames_relay_patched,
            best.full_decodes,
            best.cmd_pool_hits,
            best.cmd_pool_misses,
        );
        results.push(best);
    }
    for r in &results[1..] {
        assert_eq!(
            trace_of(r),
            trace_of(&results[0]),
            "modes must run the same protocol trace for the comparison to be fair"
        );
        // Event counts additionally agree within a delivery-event class.
        if r.mode.delivery == results[0].mode.delivery {
            assert_eq!(r.events, results[0].events, "{}", r.mode.label());
        }
    }
    let Some(baseline) = results.iter().find(|r| r.mode == SchedMode::baseline()) else {
        // `--only` filtered the baseline out: nothing to compare against.
        let json = render_report(&params, &results);
        std::fs::write(&out, json).expect("write BENCH_sched.json");
        eprintln!("wrote {out} (no baseline mode swept; speedup gate skipped)");
        return;
    };
    // The fully-optimized mode under the selected axis: the patched wheel/
    // lazy/batched stack when the axis includes it, its pre-patch
    // counterpart under `--relay-patch off`.
    let optimized = results
        .iter()
        .find(|r| r.mode == SchedMode::optimized())
        .or_else(|| results.last())
        .expect("at least one mode swept");
    let speedup = optimized.events_per_sec / baseline.events_per_sec;
    eprintln!(
        "  speedup     : {:.2}x events/s ({:.2}x wall) {} vs {}",
        speedup,
        baseline.wall_secs / optimized.wall_secs.max(1e-9),
        optimized.mode.label(),
        baseline.mode.label(),
    );

    let json = render_report(&params, &results);
    std::fs::write(&out, json).expect("write BENCH_sched.json");
    eprintln!("wrote {out}");

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!(
                "REGRESSION: {} at {speedup:.2}x events/s is below the required {min:.2}x \
                 over {}",
                optimized.mode.label(),
                baseline.mode.label(),
            );
            std::process::exit(1);
        }
    }
}
