//! Scheduler throughput benchmark: runs the timer-heavy advert swarm under
//! all twelve control-plane cost models (heap/wheel × eager/lazy[+patch] ×
//! per-receiver/batched delivery) and writes `BENCH_sched.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin sched            # dense (2,400 nodes)
//! cargo run --release -p dapes-bench --bin sched -- --quick # CI smoke
//! cargo run ... -- --out path/to/BENCH_sched.json
//! cargo run ... -- --quick --min-speedup 1.0   # exit non-zero on regression
//! cargo run ... -- --relay-patch off           # drop the decode-free-relay axis
//! cargo run ... -- --cores 1,2,4               # sharded-engine cores axis
//! cargo run ... -- --cores-nodes 100000        # scale the cores-axis swarm
//! cargo run ... -- --min-shard-speedup 1.0     # gate the sharded speedup
//! cargo run ... -- --prom-out BENCH_sched.prom # Prometheus dump
//! ```
//!
//! The cores axis reruns the optimized profile on the sharded multi-core
//! engine at each shard count (first entry always `1`, the sequential
//! reference) and records it in the report next to the twelve-mode sweep.
//! `--cores-nodes` scales the cores-axis swarm while preserving density
//! (field side grows by the square root of the node ratio).
//!
//! `--relay-patch` selects the decode-free-relay axis of the sweep: `both`
//! (default) runs all twelve modes, `on` keeps only the patched lazy modes
//! (plus the eager baselines), `off` keeps the eight pre-patch modes — the
//! CI matrix runs `on` and `off` so a regression in either relay path gates
//! the merge on its own.

use dapes_bench::sched::{render_report, run_sched, trace_of, SchedMode, SchedParams, SchedResult};
use dapes_core::stats::PeerStats;

/// Writes the shared Prometheus dump for the most interesting run: the
/// deepest sharded cores-axis entry when one ran, else the last swept
/// mode. The advert swarm runs bench stacks, not DAPES peers, so the
/// peer section reports zeros.
fn write_prom(path: &str, results: &[SchedResult], cores_axis: &[SchedResult]) {
    let r = cores_axis
        .last()
        .or_else(|| results.last())
        .expect("at least one run");
    let dump = dapes_bench::prom::export(&r.stats, &PeerStats::default());
    std::fs::write(path, dump).expect("write prometheus dump");
    eprintln!("wrote {path} ({} run)", r.mode.label());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_sched.json".to_owned());
    let mut params = if quick {
        SchedParams::smoke()
    } else {
        SchedParams::dense()
    };
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    let min_speedup: Option<f64> = arg("--min-speedup").map(|v| v.parse().expect("--min-speedup"));
    if let Some(n) = arg("--nodes") {
        params.nodes = n.parse().expect("--nodes");
    }
    if let Some(f) = arg("--field") {
        params.field = f.parse().expect("--field");
    }
    if let Some(r) = arg("--rounds") {
        params.rounds = r.parse().expect("--rounds");
    }
    if let Some(p) = arg("--period-ms") {
        params.advert_period_ms = p.parse().expect("--period-ms");
    }
    if let Some(t) = arg("--tick-ms") {
        params.tick_ms = t.parse().expect("--tick-ms");
    }
    let cores_list: Vec<usize> = arg("--cores")
        .map(|v| {
            v.split(',')
                .map(|c| c.trim().parse().expect("--cores"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);
    assert_eq!(
        cores_list.first(),
        Some(&1),
        "--cores must start at 1 (the sequential reference run)"
    );
    // The cores axis may run at its own (usually much larger) scale: the
    // per-shard active-transmission scans shrink with the shard count, so
    // the sharded engine's gains grow with swarm size at fixed density.
    let mut cores_params = params;
    if let Some(n) = arg("--cores-nodes") {
        let nodes: usize = n.parse().expect("--cores-nodes");
        // Preserve density: scale the field side by sqrt(node ratio).
        cores_params.field = params.field * (nodes as f64 / params.nodes as f64).sqrt();
        cores_params.nodes = nodes;
    }
    if let Some(r) = arg("--cores-rounds") {
        cores_params.rounds = r.parse().expect("--cores-rounds");
    }
    let min_shard_speedup: Option<f64> =
        arg("--min-shard-speedup").map(|v| v.parse().expect("--min-shard-speedup"));
    let mut modes: Vec<SchedMode> = match arg("--relay-patch").as_deref() {
        None | Some("both") => SchedMode::sweep(),
        Some("on") => SchedMode::sweep()
            .into_iter()
            .filter(|m| m.exec.relay_patch == m.exec.lazy_peek)
            .collect(),
        Some("off") => SchedMode::sweep()
            .into_iter()
            .filter(|m| !m.exec.relay_patch)
            .collect(),
        Some(other) => panic!("--relay-patch must be on, off or both, got {other:?}"),
    };
    // Debugging escape hatch: run only the modes whose label contains the
    // given substring (comma-separated alternatives). Disables the speedup
    // gate unless the filtered set still contains the baseline.
    if let Some(only) = arg("--only") {
        modes.retain(|m| only.split(',').any(|pat| m.label().contains(pat)));
        assert!(!modes.is_empty(), "--only {only:?} matched no mode");
    }
    eprintln!(
        "perf_sched: {} nodes, {} rounds each, field {} m, range {} m, tick {} ms",
        params.nodes, params.rounds, params.field, params.range, params.tick_ms
    );

    // Warm both extremes at small scale so no timed run pays first-touch
    // costs, then take each mode's best of two interleaved repetitions.
    let warmup = SchedParams {
        nodes: params.nodes.min(60),
        rounds: 2,
        field: params.field.min(300.0),
        ..params
    };
    let _ = run_sched(&warmup, SchedMode::baseline());
    let _ = run_sched(&warmup, SchedMode::optimized());

    let reps = if quick { 2 } else { 3 };
    let mut results = Vec::new();
    for mode in modes {
        let best = (0..reps)
            .map(|_| run_sched(&params, mode))
            .reduce(|a, b| if a.wall_secs <= b.wall_secs { a } else { b })
            .expect("at least one repetition");
        eprintln!(
            "  {:<24}: {:>9.0} events/s  ({:.2} s wall, {} popped / {} sim events, {} peeked ({} fib-drop, {} cbp-hit, {} relay-patched) / {} decoded, pool {}h/{}m)",
            best.mode.label(),
            best.events_per_sec,
            best.wall_secs,
            best.events,
            best.sim_events,
            best.frames_peek_resolved,
            best.peek_fib_drops,
            best.peek_prefix_hits,
            best.frames_relay_patched,
            best.full_decodes,
            best.cmd_pool_hits,
            best.cmd_pool_misses,
        );
        results.push(best);
    }
    for r in &results[1..] {
        assert_eq!(
            trace_of(r),
            trace_of(&results[0]),
            "modes must run the same protocol trace for the comparison to be fair"
        );
        // Event counts additionally agree within a delivery-event class.
        if r.mode.exec.delivery_events == results[0].mode.exec.delivery_events {
            assert_eq!(r.events, results[0].events, "{}", r.mode.label());
        }
    }

    // The sharded cores axis: the optimized profile at increasing shard
    // counts, on the (possibly scaled) cores-axis scenario.
    eprintln!(
        "perf_sched cores axis: {} nodes, field {:.0} m, cores {:?}",
        cores_params.nodes, cores_params.field, cores_list
    );
    let mut cores_axis = Vec::new();
    for &cores in &cores_list {
        let mode = SchedMode::optimized().with_cores(cores);
        let best = (0..if cores_params.nodes > 20_000 { 1 } else { reps })
            .map(|_| run_sched(&cores_params, mode))
            .reduce(|a, b| if a.wall_secs <= b.wall_secs { a } else { b })
            .expect("at least one repetition");
        eprintln!(
            "  {:<24}: {:>9.0} events/s  ({:.2} s wall, {} sim events, {} border-exported / {} injected, {} windows)",
            best.mode.label(),
            best.events_per_sec,
            best.wall_secs,
            best.sim_events,
            best.border_tx_exported,
            best.border_rx_injected,
            best.sync_windows,
        );
        cores_axis.push(best);
    }
    let shard_speedup = match cores_axis.split_first() {
        Some((seq, rest)) if !rest.is_empty() => {
            rest.iter()
                .map(|r| r.events_per_sec)
                .fold(f64::NEG_INFINITY, f64::max)
                / seq.events_per_sec.max(1e-9)
        }
        _ => 1.0,
    };
    if cores_axis.len() > 1 {
        eprintln!("  shard speedup: {shard_speedup:.2}x events/s over the sequential run");
    }

    let Some(baseline) = results.iter().find(|r| r.mode == SchedMode::baseline()) else {
        // `--only` filtered the baseline out: nothing to compare against.
        let json = render_report(&params, &results, &cores_params, &cores_axis);
        std::fs::write(&out, json).expect("write BENCH_sched.json");
        eprintln!("wrote {out} (no baseline mode swept; speedup gate skipped)");
        if let Some(path) = arg("--prom-out") {
            write_prom(&path, &results, &cores_axis);
        }
        return;
    };
    // The fully-optimized mode under the selected axis: the patched wheel/
    // lazy/batched stack when the axis includes it, its pre-patch
    // counterpart under `--relay-patch off`.
    let optimized = results
        .iter()
        .find(|r| r.mode == SchedMode::optimized())
        .or_else(|| results.last())
        .expect("at least one mode swept");
    let speedup = optimized.events_per_sec / baseline.events_per_sec;
    eprintln!(
        "  speedup     : {:.2}x events/s ({:.2}x wall) {} vs {}",
        speedup,
        baseline.wall_secs / optimized.wall_secs.max(1e-9),
        optimized.mode.label(),
        baseline.mode.label(),
    );

    let json = render_report(&params, &results, &cores_params, &cores_axis);
    std::fs::write(&out, json).expect("write BENCH_sched.json");
    eprintln!("wrote {out}");
    if let Some(path) = arg("--prom-out") {
        write_prom(&path, &results, &cores_axis);
    }

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!(
                "REGRESSION: {} at {speedup:.2}x events/s is below the required {min:.2}x \
                 over {}",
                optimized.mode.label(),
                baseline.mode.label(),
            );
            std::process::exit(1);
        }
    }
    if let Some(min) = min_shard_speedup {
        if shard_speedup < min {
            eprintln!(
                "REGRESSION: shard speedup {shard_speedup:.2}x events/s is below the \
                 required {min:.2}x over the sequential cores-axis run"
            );
            std::process::exit(1);
        }
    }
}
