//! Scheduler throughput benchmark: runs the timer-heavy advert swarm under
//! all four control-plane cost models (heap/wheel × eager/lazy) and writes
//! `BENCH_sched.json`.
//!
//! ```text
//! cargo run --release -p dapes-bench --bin sched            # dense (2,400 nodes)
//! cargo run --release -p dapes-bench --bin sched -- --quick # CI smoke
//! cargo run ... -- --out path/to/BENCH_sched.json
//! ```

use dapes_bench::sched::{render_report, run_sched, trace_of, SchedMode, SchedParams};
use dapes_netsim::prelude::QueueMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_sched.json".to_owned());
    let mut params = if quick {
        SchedParams::smoke()
    } else {
        SchedParams::dense()
    };
    let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
    if let Some(n) = arg("--nodes") {
        params.nodes = n.parse().expect("--nodes");
    }
    if let Some(f) = arg("--field") {
        params.field = f.parse().expect("--field");
    }
    if let Some(r) = arg("--rounds") {
        params.rounds = r.parse().expect("--rounds");
    }
    if let Some(p) = arg("--period-ms") {
        params.advert_period_ms = p.parse().expect("--period-ms");
    }
    if let Some(t) = arg("--tick-ms") {
        params.tick_ms = t.parse().expect("--tick-ms");
    }
    eprintln!(
        "perf_sched: {} nodes, {} rounds each, field {} m, range {} m, tick {} ms",
        params.nodes, params.rounds, params.field, params.range, params.tick_ms
    );

    // Warm both extremes at small scale so no timed run pays first-touch
    // costs, then take each mode's best of two interleaved repetitions.
    let warmup = SchedParams {
        nodes: params.nodes.min(60),
        rounds: 2,
        field: params.field.min(300.0),
        ..params
    };
    let _ = run_sched(&warmup, SchedMode::baseline());
    let _ = run_sched(&warmup, SchedMode::optimized());

    let reps = if quick { 2 } else { 3 };
    let mut results = Vec::new();
    for mode in [
        SchedMode::baseline(),
        SchedMode {
            queue: QueueMode::Heap,
            lazy_decode: true,
        },
        SchedMode {
            queue: QueueMode::Wheel,
            lazy_decode: false,
        },
        SchedMode::optimized(),
    ] {
        let best = (0..reps)
            .map(|_| run_sched(&params, mode))
            .reduce(|a, b| if a.wall_secs <= b.wall_secs { a } else { b })
            .expect("at least one repetition");
        eprintln!(
            "  {:<12}: {:>9.0} events/s  ({:.2} s wall, {} events, {} peeked / {} decoded, pool {}h/{}m)",
            best.mode.label(),
            best.events_per_sec,
            best.wall_secs,
            best.events,
            best.frames_peek_resolved,
            best.full_decodes,
            best.cmd_pool_hits,
            best.cmd_pool_misses,
        );
        results.push(best);
    }
    for r in &results[1..] {
        assert_eq!(
            trace_of(r),
            trace_of(&results[0]),
            "modes must run the same trace for the comparison to be fair"
        );
    }
    let baseline = results[0].events_per_sec;
    let optimized = results.last().expect("optimized").events_per_sec;
    eprintln!("  speedup     : {:.2}x events/s", optimized / baseline);

    let json = render_report(&params, &results);
    std::fs::write(&out, json).expect("write BENCH_sched.json");
    eprintln!("wrote {out}");
}
