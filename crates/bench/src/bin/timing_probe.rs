fn main() {
    use dapes_core::prelude::*;
    use dapes_crypto::signing::TrustAnchor;
    use dapes_netsim::prelude::*;
    use std::sync::Arc;
    let anchor = TrustAnchor::from_seed(b"x");
    let col = Arc::new(Collection::build(CollectionSpec {
        name: dapes_ndn::name::Name::from_uri("/c"),
        files: vec![FileSpec::new("f", 8192)],
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "p".into(),
    }));
    let mut w = World::new(WorldConfig {
        range: 50.0,
        seed: 3,
        ..WorldConfig::default()
    });
    // Seeder that walks away after 60s; carrier that meets village at t=380.
    let mut prod = DapesPeer::new(
        0,
        DapesConfig::default(),
        anchor.clone(),
        WantPolicy::Nothing,
    );
    prod.add_production(col);
    w.add_node(
        Box::new(ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(60), Point::new(0.0, 0.0)),
            (SimTime::from_secs(90), Point::new(0.0, 300.0)),
        ])),
        Box::new(prod),
    );
    let carrier = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(10.0, 0.0)),
            (SimTime::from_secs(300), Point::new(10.0, 0.0)),
            (SimTime::from_secs(380), Point::new(290.0, 10.0)),
        ])),
        Box::new(DapesPeer::new(
            1,
            DapesConfig::default(),
            anchor.clone(),
            WantPolicy::Everything,
        )),
    );
    let village = w.add_node(
        Box::new(Stationary::new(Point::new(290.0, 0.0))),
        Box::new(DapesPeer::new(
            2,
            DapesConfig::default(),
            anchor,
            WantPolicy::Everything,
        )),
    );
    for t in [60u64, 380, 420, 500, 700, 1000] {
        w.run_until(SimTime::from_secs(t));
        let c = w.stack::<DapesPeer>(carrier).unwrap();
        let v = w.stack::<DapesPeer>(village).unwrap();
        println!(
            "t={t}: carrier done={} village progress={:?} done={} tx={}",
            c.downloads_complete(),
            v.progress(&dapes_ndn::name::Name::from_uri("/c")),
            v.downloads_complete(),
            w.stats().tx_frames
        );
    }
}
