//! Validates committed/generated `BENCH_*.json` reports against the schema
//! the CI gate relies on, and renders the step-summary speedup table.
//!
//! ```text
//! cargo run -p dapes-bench --bin checkjson -- BENCH_sched.json BENCH_hotpath.json
//! cargo run -p dapes-bench --bin checkjson -- --summary BENCH_sched_smoke.json
//! ```
//!
//! Validation asserts: the document parses, `scenario` is a string, `nodes`
//! and `seed` are numeric, `speedup_events_per_sec` is numeric and positive,
//! and every mode entry (the `modes` array for the scheduler report, the
//! `baseline`/`optimized` objects for the hot-path report) carries a string
//! `mode` plus numeric `wall_secs`/`events_per_sec`. Exits non-zero on the
//! first violation, so a malformed or hand-mangled report fails CI.

use dapes_bench::json::{parse, Value};

fn fail(file: &str, msg: &str) -> ! {
    eprintln!("checkjson: {file}: {msg}");
    std::process::exit(1);
}

/// Pulls a required numeric field out of an object.
fn require_num(file: &str, v: &Value, key: &str) -> f64 {
    match v.get(key).and_then(Value::as_f64) {
        Some(n) if n.is_finite() => n,
        _ => fail(file, &format!("missing or non-numeric \"{key}\"")),
    }
}

fn require_str<'a>(file: &str, v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail(file, &format!("missing or non-string \"{key}\"")))
}

/// The mode entries of either report shape, in document order.
fn mode_entries<'a>(file: &str, doc: &'a Value) -> Vec<&'a Value> {
    if let Some(modes) = doc.get("modes").and_then(Value::as_array) {
        if modes.is_empty() {
            fail(file, "\"modes\" array is empty");
        }
        return modes.iter().collect();
    }
    match (doc.get("baseline"), doc.get("optimized")) {
        (Some(b), Some(o)) => vec![b, o],
        _ => fail(
            file,
            "neither \"modes\" nor \"baseline\"/\"optimized\" present",
        ),
    }
}

fn validate(file: &str, doc: &Value) {
    require_str(file, doc, "scenario");
    require_num(file, doc, "nodes");
    require_num(file, doc, "seed");
    let speedup = require_num(file, doc, "speedup_events_per_sec");
    if speedup <= 0.0 {
        fail(file, "\"speedup_events_per_sec\" must be positive");
    }
    for entry in mode_entries(file, doc) {
        let mode = require_str(file, entry, "mode");
        for key in ["wall_secs", "events_per_sec", "tx_frames", "delivered"] {
            if entry.get(key).and_then(Value::as_f64).is_none() {
                fail(
                    file,
                    &format!("mode \"{mode}\": missing or non-numeric \"{key}\""),
                );
            }
        }
    }
}

/// Renders the GitHub-flavoured markdown speedup table for one report.
fn summary(file: &str, doc: &Value) -> String {
    let scenario = require_str(file, doc, "scenario");
    let nodes = require_num(file, doc, "nodes");
    let speedup = require_num(file, doc, "speedup_events_per_sec");
    let mut out = format!(
        "### `{scenario}` ({nodes} nodes) — {speedup:.2}x events/sec\n\n\
         | mode | events/sec | wall (s) | vs baseline |\n\
         | --- | ---: | ---: | ---: |\n"
    );
    let entries = mode_entries(file, doc);
    let base_eps = require_num(file, entries[0], "events_per_sec").max(1e-9);
    for entry in entries {
        let mode = require_str(file, entry, "mode");
        let eps = require_num(file, entry, "events_per_sec");
        let wall = require_num(file, entry, "wall_secs");
        out.push_str(&format!(
            "| `{mode}` | {eps:.0} | {wall:.3} | {:.2}x |\n",
            eps / base_eps
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_summary = args.iter().any(|a| a == "--summary");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: checkjson [--summary] <BENCH_*.json>...");
        std::process::exit(2);
    }
    for file in files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(file, &format!("unreadable: {e}")));
        let doc = parse(&text).unwrap_or_else(|e| fail(file, &format!("invalid JSON: {e}")));
        validate(file, &doc);
        if want_summary {
            println!("{}", summary(file, &doc));
        } else {
            eprintln!("checkjson: {file}: OK");
        }
    }
}
