//! Validates committed/generated `BENCH_*.json` reports against the schema
//! the CI gate relies on, and renders the step-summary speedup table.
//! Files ending in `.prom` are validated as Prometheus text-format metric
//! dumps instead.
//!
//! ```text
//! cargo run -p dapes-bench --bin checkjson -- BENCH_sched.json BENCH_hotpath.json
//! cargo run -p dapes-bench --bin checkjson -- --summary BENCH_sched_smoke.json
//! cargo run -p dapes-bench --bin checkjson -- BENCH_adversarial.json BENCH_adversarial.prom
//! ```
//!
//! The actual checks live in [`dapes_bench::check`] (unit-tested there);
//! this binary only does argument handling and exit codes. Exits non-zero
//! on the first violation, so a malformed or hand-mangled report fails CI.

use dapes_bench::check::{summary, validate, validate_prometheus};
use dapes_bench::json::parse;

fn fail(file: &str, msg: &str) -> ! {
    eprintln!("checkjson: {file}: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_summary = args.iter().any(|a| a == "--summary");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: checkjson [--summary] <BENCH_*.json>...");
        std::process::exit(2);
    }
    for file in files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(file, &format!("unreadable: {e}")));
        if file.ends_with(".prom") {
            if let Err(e) = validate_prometheus(&text) {
                fail(file, &e);
            }
            eprintln!("checkjson: {file}: OK (prometheus)");
            continue;
        }
        let doc = parse(&text).unwrap_or_else(|e| fail(file, &format!("invalid JSON: {e}")));
        if let Err(e) = validate(&doc) {
            fail(file, &e);
        }
        if want_summary {
            match summary(&doc) {
                Ok(table) => println!("{table}"),
                Err(e) => fail(file, &e),
            }
        } else {
            eprintln!("checkjson: {file}: OK");
        }
    }
}
