//! Runs every figure and table of the paper's evaluation in order.
fn main() {
    let profile = dapes_bench::Profile::from_env_args();
    for name in dapes_bench::ALL_EXPERIMENTS {
        println!("\n########## {name} ##########");
        dapes_bench::run_figure(name, profile);
    }
}
