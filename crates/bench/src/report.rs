//! Plain-text table output for experiment results.

/// A printable results table: header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a transmission count in thousands (the paper's y-axis unit).
pub fn kilo(v: u64) -> String {
    format!("{:.1}", v as f64 / 1000.0)
}

/// Formats an optional ratio as a percentage.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.0}%", v * 100.0),
        None => "-".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["range", "time"]);
        t.row(vec!["20".into(), "512.3".into()]);
        t.row(vec!["100".into(), "99.1".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("range"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(12.345), "12.3");
        assert_eq!(kilo(12_345), "12.3");
        assert_eq!(pct(Some(0.83)), "83%");
        assert_eq!(pct(None), "-");
    }
}
