//! Benchmark profiles: the paper-scale configuration and a quick profile
//! that preserves the experiment structure at laptop-friendly cost.

use crate::scenario::ScenarioParams;
use dapes_netsim::time::SimTime;

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Scaled-down workload, fewer trials: minutes instead of hours.
    Quick,
    /// The paper's §VI-B parameters (10 files × 1 MB, 10 trials).
    Paper,
}

impl Profile {
    /// Reads the profile from argv (`--profile quick|paper`) or the
    /// `DAPES_PROFILE` environment variable; defaults to [`Profile::Quick`].
    pub fn from_env_args() -> Profile {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--profile" {
                return Self::parse(&w[1]);
            }
        }
        match std::env::var("DAPES_PROFILE") {
            Ok(v) => Self::parse(&v),
            Err(_) => Profile::Quick,
        }
    }

    fn parse(s: &str) -> Profile {
        match s.to_ascii_lowercase().as_str() {
            "paper" | "full" => Profile::Paper,
            _ => Profile::Quick,
        }
    }

    /// Trials per data point (paper: ten).
    pub fn trials(self) -> usize {
        match self {
            Profile::Quick => 3,
            Profile::Paper => 10,
        }
    }

    /// The Wi-Fi range sweep in metres (paper Fig. 9/10 x-axis).
    pub fn ranges(self) -> Vec<f64> {
        vec![20.0, 40.0, 60.0, 80.0, 100.0]
    }

    /// Baseline scenario parameters for this profile.
    pub fn base_params(self) -> ScenarioParams {
        match self {
            Profile::Paper => ScenarioParams::default(),
            Profile::Quick => ScenarioParams {
                n_files: 2,
                file_size: 32 * 1024,
                max_sim: SimTime::from_secs(1_500),
                ..ScenarioParams::default()
            },
        }
    }

    /// The Fig. 9e file-count sweep (collection grows by file count).
    pub fn file_counts(self) -> Vec<usize> {
        match self {
            Profile::Paper => vec![10, 30, 50, 70],
            Profile::Quick => vec![2, 4, 6, 8],
        }
    }

    /// The Fig. 9f file-size sweep in bytes.
    pub fn file_sizes(self) -> Vec<usize> {
        match self {
            Profile::Paper => vec![1_000_000, 5_000_000, 10_000_000, 15_000_000],
            Profile::Quick => vec![16 * 1024, 48 * 1024, 96 * 1024, 144 * 1024],
        }
    }

    /// Human-readable description for report headers.
    pub fn describe(self) -> String {
        let p = self.base_params();
        format!(
            "profile={:?} trials={} collection={}x{}B packets={}B nodes={} cap={}s",
            self,
            self.trials(),
            p.n_files,
            p.file_size,
            p.packet_size,
            p.total_nodes(),
            p.max_sim.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_profiles() {
        assert_eq!(Profile::parse("paper"), Profile::Paper);
        assert_eq!(Profile::parse("FULL"), Profile::Paper);
        assert_eq!(Profile::parse("quick"), Profile::Quick);
        assert_eq!(Profile::parse("garbage"), Profile::Quick);
    }

    #[test]
    fn paper_profile_matches_paper_setup() {
        let p = Profile::Paper.base_params();
        assert_eq!(p.n_files, 10);
        assert_eq!(p.file_size, 1_000_000);
        assert_eq!(p.total_nodes(), 44);
        assert_eq!(Profile::Paper.trials(), 10);
    }

    #[test]
    fn quick_profile_is_scaled_not_restructured() {
        let p = Profile::Quick.base_params();
        assert_eq!(p.total_nodes(), 44, "same topology, smaller payload");
        assert!(p.file_size < 1_000_000);
    }
}
