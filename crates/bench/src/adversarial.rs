//! The adversarial benchmark: proves the signed control plane's defenses
//! under each attacker type and records the evidence in
//! `BENCH_adversarial.json` plus a Prometheus text-format metrics dump.
//!
//! Five cells share one honest layout — a producer, and a downloader that
//! finishes the transfer and then walks out of radio range (so the
//! stale-peer expiry fires in *every* cell, benign included):
//!
//! * `benign` — no attacker; the control cell the overhead deltas are
//!   measured against. Every defense counter except `peers_expired` must
//!   stay zero.
//! * `spoof` — a [`AdversaryKind::SpoofForger`] broadcasting forged
//!   discovery replies under a rogue anchor.
//! * `tamper` — a [`AdversaryKind::SegmentTamperer`] placed in range of
//!   the downloader only, answering its content Interests with unsigned
//!   junk faster than the producer.
//! * `replay` — an [`AdversaryKind::InterestReplayer`] re-injecting
//!   captured Interests and sealed announcements 6 s later (past the 5 s
//!   replay window).
//! * `flood` — a [`AdversaryKind::NoiseFlooder`] saturating the cell with
//!   junk frames.
//!
//! The accounting invariant each hostile cell is gated on: the honest
//! nodes' rejection counters must equal, *exactly*, the number of hostile
//! frames the simulator actually delivered to them
//! ([`Stats::delivered_for_kinds`] over the dedicated attack
//! [`FrameKind`]s) — every hostile frame that reached a radio was
//! recognized and dropped, and nothing else was. Completion must hold in
//! every cell, within a bounded slowdown over benign.

use dapes_core::adversary::attack_kinds;
use dapes_core::prelude::*;
use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

/// One attack cell of the benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackMode {
    /// No attacker.
    Benign,
    /// Forged announcements under a rogue anchor.
    Spoof,
    /// Unsigned junk segments racing the honest responder.
    Tamper,
    /// Captured frames re-injected past the replay window.
    Replay,
    /// Junk frames that are not NDN packets.
    Flood,
}

impl AttackMode {
    /// Every cell, benign first.
    pub const ALL: [AttackMode; 5] = [
        AttackMode::Benign,
        AttackMode::Spoof,
        AttackMode::Tamper,
        AttackMode::Replay,
        AttackMode::Flood,
    ];

    /// The stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AttackMode::Benign => "benign",
            AttackMode::Spoof => "spoof",
            AttackMode::Tamper => "tamper",
            AttackMode::Replay => "replay",
            AttackMode::Flood => "flood",
        }
    }
}

/// Shared workload knobs for every cell.
#[derive(Clone, Debug)]
pub struct AdversarialParams {
    /// World seed.
    pub seed: u64,
    /// Files in the shared collection.
    pub files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Simulated horizon: long enough for completion, the walkaway and the
    /// post-walkaway expiry sweep.
    pub run_secs: u64,
}

impl AdversarialParams {
    /// The committed-report workload.
    pub fn dense() -> Self {
        AdversarialParams {
            seed: 7,
            files: 2,
            file_size: 16 * 1024,
            run_secs: 90,
        }
    }

    /// The CI smoke workload.
    pub fn smoke() -> Self {
        AdversarialParams {
            seed: 7,
            files: 1,
            file_size: 4 * 1024,
            run_secs: 90,
        }
    }
}

/// Honest-side defense counters summed over every DAPES peer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DefenseTotals {
    /// Announcements rejected for a bad/missing signature.
    pub adverts_rejected_bad_sig: u64,
    /// Announcements rejected by the replay guard.
    pub adverts_rejected_replay: u64,
    /// Stale producers swept from the replay table.
    pub peers_expired: u64,
    /// Segments rejected for a failed content signature.
    pub segments_rejected_tamper: u64,
    /// Interests rejected by the nonce journal.
    pub interests_rejected_replay: u64,
    /// Frames dropped because they do not parse as NDN packets.
    pub flood_frames_dropped: u64,
}

impl DefenseTotals {
    fn of(sc: &Scenario) -> Self {
        DefenseTotals {
            adverts_rejected_bad_sig: sc.defense_total(|s| s.adverts_rejected_bad_sig),
            adverts_rejected_replay: sc.defense_total(|s| s.adverts_rejected_replay),
            peers_expired: sc.defense_total(|s| s.peers_expired),
            segments_rejected_tamper: sc.defense_total(|s| s.segments_rejected_tamper),
            interests_rejected_replay: sc.defense_total(|s| s.interests_rejected_replay),
            flood_frames_dropped: sc.defense_total(|s| s.flood_frames_dropped),
        }
    }
}

/// Outcome of one cell.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Which cell ran.
    pub mode: AttackMode,
    /// Whether the downloader finished the transfer.
    pub completed: bool,
    /// Completion time in simulated seconds (horizon if incomplete).
    pub completion_secs: f64,
    /// Frames on the air over the whole run.
    pub tx_frames: u64,
    /// Non-content fraction of all frames (hostile frames included — the
    /// overhead the attack actually imposes).
    pub overhead_ratio: f64,
    /// Honest-side defense counters.
    pub defense: DefenseTotals,
    /// Hostile frames the simulator delivered to honest radios, by kind.
    pub hostile_delivered: [(FrameKind, u64); 5],
    /// Hostile frames the attacker transmitted.
    pub hostile_sent: u64,
    /// Whether every per-kind rejection counter equals its delivery count.
    pub exact_accounting: bool,
    /// The Prometheus text-format dump of the cell's simulator counters.
    pub prometheus: String,
}

impl AttackOutcome {
    /// Total hostile frames delivered across every attack kind.
    pub fn hostile_delivered_total(&self) -> u64 {
        self.hostile_delivered.iter().map(|&(_, n)| n).sum()
    }
}

/// Builds and runs one cell. The honest layout is identical in every cell:
/// producer at the origin, downloader at 48 m (within the 60 m range),
/// departing at 20 s and 600 m away by 50 s, so marks recorded during the
/// transfer go stale and `peers_expired` fires everywhere. Attackers sit at
/// 26 m from both honest nodes — except the tamperer, which sits at 90 m so
/// only the downloader can hear it (tampered replies race the producer's
/// jittered ones at nodes that actually hold a PIT entry).
pub fn run_mode(params: &AdversarialParams, mode: AttackMode) -> AttackOutcome {
    let walkaway = MobilityPreset::Ferry {
        from: Point::new(48.0, 0.0),
        to: Point::new(600.0, 0.0),
        depart: SimTime::from_secs(20),
        travel: SimDuration::from_secs(30),
    };
    let mut b = ScenarioBuilder::new(params.seed)
        .collection(params.files, params.file_size)
        .producer_at(0.0, 0.0)
        .peer(PeerRole::Downloader, walkaway);
    b = match mode {
        AttackMode::Benign => b,
        AttackMode::Spoof => b.adversary_at(AdversaryKind::SpoofForger, 24.0, 10.0),
        AttackMode::Tamper => b.adversary_at(AdversaryKind::SegmentTamperer, 90.0, 0.0),
        AttackMode::Replay => b.adversary_at(AdversaryKind::InterestReplayer, 24.0, 10.0),
        AttackMode::Flood => b.adversary_at(AdversaryKind::NoiseFlooder, 24.0, 10.0),
    };
    let mut sc = b.build();
    // Run the full horizon — the interesting dynamics (delayed replays,
    // the walkaway, the expiry sweep) happen after completion.
    sc.run_until(SimTime::from_secs(params.run_secs));

    let completed = sc.all_complete();
    let completion_secs = sc
        .completion_times()
        .into_iter()
        .flatten()
        .map(|t| t.as_micros() as f64 / 1e6)
        .fold(0.0f64, f64::max);
    let defense = DefenseTotals::of(&sc);
    let stats = sc.world.stats();
    let hostile_delivered = [
        attack_kinds::FLOOD,
        attack_kinds::SPOOF,
        attack_kinds::TAMPER,
        attack_kinds::INTEREST_REPLAY,
        attack_kinds::ADVERT_REPLAY,
    ]
    .map(|k| (k, stats.delivered_for_kinds(&[k])));
    let delivered = |kind: FrameKind| -> u64 {
        hostile_delivered
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0, |&(_, n)| n)
    };
    // The per-cell accounting: each defense counter must equal the
    // delivery count of the attack kind it defends against, and the
    // counters of attacks not running in this cell must stay zero.
    let exact_accounting = defense.flood_frames_dropped == delivered(attack_kinds::FLOOD)
        && defense.adverts_rejected_bad_sig == delivered(attack_kinds::SPOOF)
        && defense.segments_rejected_tamper == delivered(attack_kinds::TAMPER)
        && defense.interests_rejected_replay == delivered(attack_kinds::INTEREST_REPLAY)
        && defense.adverts_rejected_replay == delivered(attack_kinds::ADVERT_REPLAY);
    let hostile_sent = sc
        .adversaries
        .iter()
        .filter_map(|&id| sc.adversary(id))
        .map(|a| a.sent().total())
        .sum();
    AttackOutcome {
        mode,
        completed,
        completion_secs: if completed {
            completion_secs
        } else {
            params.run_secs as f64
        },
        tx_frames: stats.tx_frames,
        overhead_ratio: overhead_ratio(stats),
        defense,
        hostile_delivered,
        hostile_sent,
        exact_accounting,
        prometheus: crate::prom::export(stats, &crate::prom::peer_totals(&sc)),
    }
}

/// Runs every cell.
pub fn run_all(params: &AdversarialParams) -> Vec<AttackOutcome> {
    AttackMode::ALL
        .iter()
        .map(|&m| run_mode(params, m))
        .collect()
}

/// Slowest acceptable attack-cell completion relative to benign. The
/// attacks in this benchmark waste airtime and screening work but cannot
/// suppress the transfer, so a generous factor still proves "bounded".
pub const MAX_SLOWDOWN: f64 = 3.0;

/// The golden gate: completion everywhere, bounded slowdown, exact
/// accounting, the right counters firing (and only those). Returns the
/// first violation.
pub fn gate(outcomes: &[AttackOutcome]) -> Result<(), String> {
    let benign = outcomes
        .iter()
        .find(|o| o.mode == AttackMode::Benign)
        .ok_or("no benign cell in the sweep")?;
    for o in outcomes {
        let label = o.mode.label();
        if !o.completed {
            return Err(format!("[{label}] transfer did not complete"));
        }
        if !o.exact_accounting {
            return Err(format!(
                "[{label}] rejection counters do not match hostile deliveries: {:?} vs {:?}",
                o.defense, o.hostile_delivered
            ));
        }
        if o.completion_secs > benign.completion_secs * MAX_SLOWDOWN {
            return Err(format!(
                "[{label}] completed in {:.2}s, over {MAX_SLOWDOWN}x the benign {:.2}s",
                o.completion_secs, benign.completion_secs
            ));
        }
        // Every cell runs the walkaway, so stale-peer expiry must fire.
        if o.defense.peers_expired == 0 {
            return Err(format!("[{label}] walkaway peer never expired"));
        }
        let expected_counter = match o.mode {
            AttackMode::Benign => None,
            AttackMode::Spoof => Some(o.defense.adverts_rejected_bad_sig),
            AttackMode::Tamper => Some(o.defense.segments_rejected_tamper),
            AttackMode::Replay => Some(
                o.defense
                    .interests_rejected_replay
                    .min(o.defense.adverts_rejected_replay),
            ),
            AttackMode::Flood => Some(o.defense.flood_frames_dropped),
        };
        if let Some(counter) = expected_counter {
            if counter == 0 {
                return Err(format!(
                    "[{label}] the attack's defense counter never fired"
                ));
            }
        } else if o.hostile_delivered_total() != 0
            || o.defense.adverts_rejected_bad_sig != 0
            || o.defense.flood_frames_dropped != 0
            || o.defense.segments_rejected_tamper != 0
            || o.defense.interests_rejected_replay != 0
            || o.defense.adverts_rejected_replay != 0
        {
            return Err(format!(
                "[benign] hostile traffic or rejections in the control cell: {:?}",
                o.defense
            ));
        }
    }
    Ok(())
}

/// Renders the `BENCH_adversarial.json` document.
pub fn render_report(params: &AdversarialParams, outcomes: &[AttackOutcome]) -> String {
    fn entry(o: &AttackOutcome) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"mode\": \"{}\",\n",
                "    \"completed\": {},\n",
                "    \"completion_secs\": {:.3},\n",
                "    \"tx_frames\": {},\n",
                "    \"overhead_ratio\": {:.4},\n",
                "    \"adverts_rejected_bad_sig\": {},\n",
                "    \"adverts_rejected_replay\": {},\n",
                "    \"peers_expired\": {},\n",
                "    \"segments_rejected_tamper\": {},\n",
                "    \"interests_rejected_replay\": {},\n",
                "    \"flood_frames_dropped\": {},\n",
                "    \"hostile_delivered\": {},\n",
                "    \"hostile_sent\": {},\n",
                "    \"exact_accounting\": {}\n",
                "  }}"
            ),
            o.mode.label(),
            o.completed,
            o.completion_secs,
            o.tx_frames,
            o.overhead_ratio,
            o.defense.adverts_rejected_bad_sig,
            o.defense.adverts_rejected_replay,
            o.defense.peers_expired,
            o.defense.segments_rejected_tamper,
            o.defense.interests_rejected_replay,
            o.defense.flood_frames_dropped,
            o.hostile_delivered_total(),
            o.hostile_sent,
            o.exact_accounting,
        )
    }
    let entries: Vec<String> = outcomes.iter().map(entry).collect();
    format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"adversarial\",\n",
            "  \"nodes\": 3,\n",
            "  \"seed\": {},\n",
            "  \"files\": {},\n",
            "  \"file_size\": {},\n",
            "  \"replay_window_ms\": {},\n",
            "  \"attacks\": [{}]\n",
            "}}\n"
        ),
        params.seed,
        params.files,
        params.file_size,
        DapesConfig::default().replay_window_ms,
        entries.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_cell_completes_with_clean_counters_and_expiry() {
        let o = run_mode(&AdversarialParams::smoke(), AttackMode::Benign);
        assert!(o.completed);
        assert!(o.exact_accounting);
        assert_eq!(o.hostile_delivered_total(), 0);
        assert_eq!(o.defense.adverts_rejected_bad_sig, 0);
        assert!(o.defense.peers_expired > 0, "walkaway must expire");
    }

    #[test]
    fn spoof_cell_rejects_every_delivered_forgery() {
        let o = run_mode(&AdversarialParams::smoke(), AttackMode::Spoof);
        assert!(o.completed, "spoofing must not block the transfer");
        assert!(o.defense.adverts_rejected_bad_sig > 0);
        assert!(o.exact_accounting, "{:?}", o);
    }

    #[test]
    fn full_sweep_passes_the_gate_and_renders_valid_json() {
        let outcomes = run_all(&AdversarialParams::smoke());
        gate(&outcomes).expect("gate");
        let json = render_report(&AdversarialParams::smoke(), &outcomes);
        let doc = crate::json::parse(&json).expect("report parses");
        crate::check::validate(&doc).expect("report validates");
        assert_eq!(
            doc.get("attacks")
                .and_then(|a| a.as_array())
                .map(|a| a.len()),
            Some(5)
        );
        for o in &outcomes {
            crate::check::validate_prometheus(&o.prometheus).expect("prom dump validates");
        }
    }
}
