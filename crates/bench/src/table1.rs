//! Table I — the real-world feasibility study (paper §VI-E, Fig. 8),
//! reproduced as scripted 5-node scenarios.
//!
//! The three outdoor scenarios use the paper's geometry (150 m legs, ~50 m
//! Wi-Fi range):
//!
//! 1. **Carrier** — producer A; carrier D fetches the collection from A and
//!    ferries it to the disconnected peers B and C.
//! 2. **Repository** — C produces; a stationary repo downloads from C; A
//!    and B fetch from the repo simultaneously.
//! 3. **Moving peers** — A produces; A–D move through an infrastructure-free
//!    area with moments of full disconnection and moments of (multi-hop)
//!    contact.
//!
//! OS metrics are simulator proxies (see DESIGN.md): event dispatches ↦
//! context switches, stack↔simulator API calls ↦ system calls, state-table
//! insertions ↦ page faults, peak live protocol state ↦ memory.

use crate::profile::Profile;
use crate::report::Table;
use dapes_core::prelude::*;
use dapes_crypto::signing::TrustAnchor;
use dapes_netsim::prelude::*;
use std::sync::Arc;

struct ScenarioOutcome {
    download_time_s: f64,
    transmissions: u64,
    memory_mb: f64,
    context_switches: u64,
    system_calls: u64,
    page_faults: u64,
}

fn build_collection(profile: Profile) -> Arc<Collection> {
    let p = profile.base_params();
    Arc::new(Collection::build(CollectionSpec {
        name: dapes_ndn::name::Name::from_uri("/damaged-bridge-1533783192"),
        files: (0..p.n_files)
            .map(|i| dapes_core::collection::FileSpec::new(format!("file-{i}"), p.file_size))
            .collect(),
        packet_size: p.packet_size,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }))
}

fn anchor() -> TrustAnchor {
    TrustAnchor::from_seed(b"rural-area-anchor")
}

fn world(seed: u64) -> World {
    World::new(WorldConfig {
        range: 50.0, // the MacBooks' outdoor range
        seed,
        ..WorldConfig::default()
    })
}

fn wp(t: u64, x: f64, y: f64) -> (SimTime, Point) {
    (SimTime::from_secs(t), Point::new(x, y))
}

/// Runs a built world until the given downloaders complete (or cap) and
/// extracts the Table I metrics.
fn finish(mut w: World, downloaders: Vec<NodeId>, cap: SimTime) -> ScenarioOutcome {
    let mut memory_peak = 0usize;
    let step = SimDuration::from_secs(2);
    let mut now = SimTime::ZERO;
    loop {
        now = (now + step).min(cap);
        w.run_until(now);
        memory_peak = memory_peak.max(w.live_state_bytes());
        let done = downloaders.iter().all(|&n| {
            w.stack::<DapesPeer>(n)
                .is_some_and(|p| p.downloads_complete())
        });
        if done || now >= cap {
            break;
        }
    }
    let last = downloaders
        .iter()
        .filter_map(|&n| w.stack::<DapesPeer>(n).and_then(|p| p.completed_at()))
        .map(|t| t.as_secs_f64())
        .fold(0.0f64, f64::max);
    let stats = w.stats();
    ScenarioOutcome {
        download_time_s: if last > 0.0 { last } else { cap.as_secs_f64() },
        transmissions: stats.tx_frames,
        memory_mb: memory_peak as f64 / 1e6,
        context_switches: stats.event_dispatches,
        system_calls: stats.api_calls,
        page_faults: stats.state_inserts,
    }
}

/// Scenario 1 (Fig. 8a): data sharing through a carrier.
fn scenario_carrier(profile: Profile, seed: u64) -> ScenarioOutcome {
    let col = build_collection(profile);
    let a = anchor();
    let mut w = world(seed);
    let cap = profile.base_params().max_sim;
    let want = WantPolicy::Everything;

    // Producer A at the west end.
    let mut prod = DapesPeer::new(0, DapesConfig::default(), a.clone(), WantPolicy::Nothing);
    prod.add_production(col);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        Box::new(prod),
    );
    // B and C in two disconnected segments 150 m apart.
    let b = w.add_node(
        Box::new(Stationary::new(Point::new(150.0, 0.0))),
        Box::new(DapesPeer::new(
            1,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    let c = w.add_node(
        Box::new(Stationary::new(Point::new(300.0, 0.0))),
        Box::new(DapesPeer::new(
            2,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    // Carrier D: dwell near A, walk to B, dwell, walk to C, return.
    let d = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 20.0, 0.0),
            wp(120, 20.0, 0.0),
            wp(180, 150.0, 10.0),
            wp(300, 150.0, 10.0),
            wp(360, 300.0, 10.0),
            wp(480, 300.0, 10.0),
            wp(540, 20.0, 0.0),
            wp(660, 20.0, 0.0),
            wp(720, 150.0, 10.0),
            wp(840, 300.0, 10.0),
        ])),
        Box::new(DapesPeer::new(
            3,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    // A fifth resident idling near B (the study used 5 MacBooks).
    let e = w.add_node(
        Box::new(Stationary::new(Point::new(170.0, 0.0))),
        Box::new(DapesPeer::new(4, DapesConfig::default(), a, want)),
    );
    finish(w, vec![b, c, d, e], cap)
}

/// Scenario 2 (Fig. 8b): data sharing through a repository.
fn scenario_repo(profile: Profile, seed: u64) -> ScenarioOutcome {
    let col = build_collection(profile);
    let a = anchor();
    let mut w = world(seed);
    let cap = profile.base_params().max_sim;
    let want = WantPolicy::Everything;

    // Producer C walks past the repo, seeding it.
    let mut prod = DapesPeer::new(0, DapesConfig::default(), a.clone(), WantPolicy::Nothing);
    prod.add_production(col);
    w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 150.0, 150.0),
            wp(600, 150.0, 150.0),
            wp(700, 300.0, 300.0),
        ])),
        Box::new(prod),
    );
    // The repository: a stationary DAPES peer that downloads then serves.
    let repo = w.add_node(
        Box::new(Stationary::new(Point::new(150.0, 130.0))),
        Box::new(DapesPeer::new(
            1,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    // A and B walk to the rest area after the repo has been seeded, then
    // fetch from it simultaneously (Fig. 8b's arrows 3a/3b).
    let pa = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 0.0, 0.0),
            wp(180, 0.0, 0.0),
            wp(260, 130.0, 110.0),
        ])),
        Box::new(DapesPeer::new(
            2,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    let pb = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 300.0, 0.0),
            wp(180, 300.0, 0.0),
            wp(260, 170.0, 110.0),
        ])),
        Box::new(DapesPeer::new(
            3,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    // Fifth device roaming into the rest area later still.
    let pe = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 300.0, 300.0),
            wp(280, 300.0, 300.0),
            wp(360, 150.0, 90.0),
        ])),
        Box::new(DapesPeer::new(4, DapesConfig::default(), a, want)),
    );
    finish(w, vec![repo, pa, pb, pe], cap)
}

/// Scenario 3 (Fig. 8c): data sharing among moving nodes with moments of
/// disconnection and multi-hop contact.
fn scenario_moving(profile: Profile, seed: u64) -> ScenarioOutcome {
    let col = build_collection(profile);
    let a = anchor();
    let mut w = world(seed);
    let cap = profile.base_params().max_sim;
    let want = WantPolicy::Everything;

    // Producer A loops around the area.
    let mut prod = DapesPeer::new(0, DapesConfig::default(), a.clone(), WantPolicy::Nothing);
    prod.add_production(col);
    w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 0.0, 0.0),
            wp(60, 75.0, 40.0),
            wp(120, 150.0, 0.0),
            wp(180, 75.0, 40.0),
            wp(240, 0.0, 0.0),
            wp(300, 75.0, 40.0),
            wp(360, 150.0, 0.0),
        ])),
        Box::new(prod),
    );
    // B, C, D crisscross: sometimes all disconnected, sometimes chained
    // within range of each other (exercising multi-hop).
    let pb = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 150.0, 150.0),
            wp(90, 40.0, 20.0),
            wp(200, 150.0, 150.0),
            wp(300, 40.0, 20.0),
            wp(420, 110.0, 20.0),
        ])),
        Box::new(DapesPeer::new(
            1,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    let pc = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 0.0, 150.0),
            wp(120, 80.0, 30.0),
            wp(240, 0.0, 150.0),
            wp(330, 80.0, 30.0),
            wp(420, 150.0, 30.0),
        ])),
        Box::new(DapesPeer::new(
            2,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    let pd = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 150.0, 75.0),
            wp(100, 120.0, 30.0),
            wp(220, 150.0, 75.0),
            wp(320, 120.0, 30.0),
        ])),
        Box::new(DapesPeer::new(
            3,
            DapesConfig::default(),
            a.clone(),
            want.clone(),
        )),
    );
    let pe = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            wp(0, 75.0, 150.0),
            wp(150, 60.0, 50.0),
            wp(280, 75.0, 150.0),
            wp(380, 60.0, 50.0),
        ])),
        Box::new(DapesPeer::new(4, DapesConfig::default(), a, want)),
    );
    finish(w, vec![pb, pc, pd, pe], cap)
}

/// Prints the Table I reproduction.
pub fn table1(profile: Profile) {
    println!("{}", profile.describe());
    let outcomes = vec![
        ("1 carrier", scenario_carrier(profile, 101)),
        ("2 repository", scenario_repo(profile, 102)),
        ("3 moving", scenario_moving(profile, 103)),
    ];
    let mut t = Table::new(
        "Table I: real-world feasibility scenarios",
        &[
            "scenario",
            "time(s)",
            "tx",
            "mem(MB)",
            "ctx-sw",
            "syscalls",
            "page-faults",
        ],
    );
    for (name, o) in &outcomes {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", o.download_time_s),
            o.transmissions.to_string(),
            format!("{:.2}", o.memory_mb),
            o.context_switches.to_string(),
            o.system_calls.to_string(),
            o.page_faults.to_string(),
        ]);
    }
    t.print();
    println!(
        "paper (absolute): s1 454s/30841tx/14.75MB, s2 418s/24243tx/14.65MB, s3 213s/16102tx/18.65MB"
    );
    println!("paper (ordering): time/tx/ctx-sw/syscalls/page-faults s1>s2>s3; memory s3 highest\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_scenario_finishes_with_quick_profile() {
        let o = scenario_carrier(Profile::Quick, 42);
        assert!(o.transmissions > 0);
        assert!(o.memory_mb > 0.0);
        assert!(o.download_time_s > 0.0);
    }

    #[test]
    fn repo_scenario_is_faster_than_carrier() {
        // The paper's key Table I ordering: the repository scenario beats
        // the carrier scenario; moving+multi-hop beats both.
        let carrier = scenario_carrier(Profile::Quick, 7);
        let repo = scenario_repo(Profile::Quick, 7);
        assert!(
            repo.download_time_s <= carrier.download_time_s,
            "repo {:.0}s vs carrier {:.0}s",
            repo.download_time_s,
            carrier.download_time_s
        );
    }
}
