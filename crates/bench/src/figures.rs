//! One reproduction function per figure of the paper's evaluation (§VI).
//!
//! Each function sweeps the figure's x-axis, runs seeded trials per point,
//! and prints the series the figure plots, next to the paper's qualitative
//! expectation. `EXPERIMENTS.md` records measured-vs-paper outcomes.

use crate::profile::Profile;
use crate::report::{kilo, pct, secs, Table};
use crate::scenario::{run_trials, Protocol};
use dapes_core::prelude::*;

fn dapes(cfg: DapesConfig) -> Protocol {
    Protocol::Dapes(Box::new(cfg))
}

fn cfg_with(f: impl FnOnce(&mut DapesConfig)) -> DapesConfig {
    let mut c = DapesConfig::default();
    f(&mut c);
    c
}

/// Fig. 9a — download time vs Wi-Fi range for the RPF flavours × start
/// packet policies (bitmaps-first exchange, as in the paper's caption).
pub fn fig9a(profile: Profile) {
    println!("{}", profile.describe());
    let series: Vec<(&str, DapesConfig)> = vec![
        (
            "same+encounter",
            cfg_with(|c| {
                c.rpf = RpfVariant::EncounterBased;
                c.start = StartPacket::Same;
                c.schedule = AdvertSchedule::BitmapsFirst(BitmapBudget::All);
            }),
        ),
        (
            "rand+encounter",
            cfg_with(|c| {
                c.rpf = RpfVariant::EncounterBased;
                c.start = StartPacket::Random;
                c.schedule = AdvertSchedule::BitmapsFirst(BitmapBudget::All);
            }),
        ),
        (
            "same+local",
            cfg_with(|c| {
                c.rpf = RpfVariant::LocalNeighborhood;
                c.start = StartPacket::Same;
                c.schedule = AdvertSchedule::BitmapsFirst(BitmapBudget::All);
            }),
        ),
        (
            "rand+local",
            cfg_with(|c| {
                c.rpf = RpfVariant::LocalNeighborhood;
                c.start = StartPacket::Random;
                c.schedule = AdvertSchedule::BitmapsFirst(BitmapBudget::All);
            }),
        ),
    ];
    sweep_ranges(
        profile,
        "Fig 9a: download time (s) by RPF strategy / start packet",
        &series,
        Metric::Time,
    );
    println!("paper expectation: local beats encounter by ~12-14%; random start beats same by ~11-15%; time falls with range\n");
}

/// Fig. 9b — transmissions vs Wi-Fi range, with and without PEBA.
pub fn fig9b(profile: Profile) {
    println!("{}", profile.describe());
    let series: Vec<(&str, DapesConfig)> = vec![
        (
            "encounter w/o PEBA",
            cfg_with(|c| {
                c.rpf = RpfVariant::EncounterBased;
                c.peba = false;
            }),
        ),
        (
            "local w/o PEBA",
            cfg_with(|c| {
                c.rpf = RpfVariant::LocalNeighborhood;
                c.peba = false;
            }),
        ),
        (
            "encounter PEBA",
            cfg_with(|c| {
                c.rpf = RpfVariant::EncounterBased;
                c.peba = true;
            }),
        ),
        (
            "local PEBA",
            cfg_with(|c| {
                c.rpf = RpfVariant::LocalNeighborhood;
                c.peba = true;
            }),
        ),
    ];
    sweep_ranges(
        profile,
        "Fig 9b: transmissions (x1000) by RPF / PEBA",
        &series,
        Metric::Transmissions,
    );
    println!("paper expectation: PEBA cuts transmissions 22-28%; counts grow with range\n");
}

/// Fig. 9c — download time when peers fetch b bitmaps *before* data.
pub fn fig9c(profile: Profile) {
    println!("{}", profile.describe());
    let series = bitmap_budget_series(AdvertSchedule::BitmapsFirst);
    sweep_ranges(
        profile,
        "Fig 9c: download time (s), bitmaps exchanged before data",
        &series,
        Metric::Time,
    );
    println!("paper expectation: 2-3 bitmaps best at short ranges, 4 at long; 'all' wastes encounter time\n");
}

/// Fig. 9d — download time when bitmap and data exchanges interleave.
pub fn fig9d(profile: Profile) {
    println!("{}", profile.describe());
    let series = bitmap_budget_series(AdvertSchedule::Interleaved);
    sweep_ranges(
        profile,
        "Fig 9d: download time (s), interleaved bitmap/data exchange",
        &series,
        Metric::Time,
    );
    println!("paper expectation: interleaving beats bitmaps-first by 16-23%\n");
}

fn bitmap_budget_series(
    make: impl Fn(BitmapBudget) -> AdvertSchedule,
) -> Vec<(&'static str, DapesConfig)> {
    let budgets: Vec<(&str, BitmapBudget)> = vec![
        ("1 bitmap", BitmapBudget::Count(1)),
        ("2 bitmaps", BitmapBudget::Count(2)),
        ("3 bitmaps", BitmapBudget::Count(3)),
        ("4 bitmaps", BitmapBudget::Count(4)),
        ("all bitmaps", BitmapBudget::All),
    ];
    budgets
        .into_iter()
        .map(|(label, b)| {
            let schedule = make(b);
            (label, cfg_with(|c| c.schedule = schedule))
        })
        .collect()
}

/// Fig. 9e — download time for a varying number of files (1 MB each).
pub fn fig9e(profile: Profile) {
    println!("{}", profile.describe());
    let mut table = Table::new(
        "Fig 9e: download time (s) by number of files (range sweep)",
        &header_with_ranges(profile, "files"),
    );
    for count in profile.file_counts() {
        let mut cells = vec![count.to_string()];
        for range in profile.ranges() {
            let mut p = profile.base_params();
            p.range = range;
            p.n_files = count;
            let s = run_trials(&dapes(DapesConfig::default()), &p, profile.trials());
            cells.push(secs(s.p90_download_time_s));
        }
        table.row(cells);
    }
    table.print();
    println!("paper expectation: time grows with collection size; curve shapes persist\n");
}

/// Fig. 9f — download time for varying file sizes (ten files).
pub fn fig9f(profile: Profile) {
    println!("{}", profile.describe());
    let mut table = Table::new(
        "Fig 9f: download time (s) by file size (range sweep)",
        &header_with_ranges(profile, "file size"),
    );
    for size in profile.file_sizes() {
        let mut cells = vec![format!("{}KB", size / 1024)];
        for range in profile.ranges() {
            let mut p = profile.base_params();
            p.range = range;
            p.file_size = size;
            let s = run_trials(&dapes(DapesConfig::default()), &p, profile.trials());
            cells.push(secs(s.p90_download_time_s));
        }
        table.row(cells);
    }
    table.print();
    println!("paper expectation: time grows with total bytes; properties hold as size grows\n");
}

/// Fig. 9g — download time: single-hop vs multi-hop forwarding probability.
pub fn fig9g(profile: Profile) {
    println!("{}", profile.describe());
    let series = forwarding_series();
    sweep_ranges(
        profile,
        "Fig 9g: download time (s) by forwarding probability",
        &series,
        Metric::Time,
    );
    println!("paper expectation: 20-60% forwarding cuts time 12-23% vs single-hop\n");
}

/// Fig. 9h — transmissions: single-hop vs multi-hop forwarding probability.
pub fn fig9h(profile: Profile) {
    println!("{}", profile.describe());
    let series = forwarding_series();
    sweep_ranges(
        profile,
        "Fig 9h: transmissions (x1000) by forwarding probability",
        &series,
        Metric::Transmissions,
    );
    println!("paper expectation: multi-hop adds 14-38% transmissions over single-hop\n");
}

fn forwarding_series() -> Vec<(&'static str, DapesConfig)> {
    vec![
        ("single-hop", DapesConfig::single_hop()),
        ("multi-hop p=20%", cfg_with(|c| c.forward_prob = 0.20)),
        ("multi-hop p=40%", cfg_with(|c| c.forward_prob = 0.40)),
        ("multi-hop p=60%", cfg_with(|c| c.forward_prob = 0.60)),
    ]
}

/// Fig. 10a — download time: DAPES vs Bithoc vs Ekta.
pub fn fig10a(profile: Profile) {
    println!("{}", profile.describe());
    compare_protocols(profile, "Fig 10a: download time (s)", Metric::Time);
    println!("paper expectation: DAPES 15-27% faster than Bithoc, 19-33% faster than Ekta\n");
}

/// Fig. 10b — transmissions: DAPES vs Bithoc vs Ekta.
pub fn fig10b(profile: Profile) {
    println!("{}", profile.describe());
    compare_protocols(
        profile,
        "Fig 10b: transmissions (x1000)",
        Metric::Transmissions,
    );
    println!("paper expectation: DAPES 62-71% fewer tx than Bithoc, 50-59% fewer than Ekta; ~83% of forwarded Interests return data\n");
}

enum Metric {
    Time,
    Transmissions,
}

fn header_with_ranges(profile: Profile, first: &str) -> Vec<&'static str> {
    // Leak tiny strings for the static table header; bounded by sweep size.
    let mut h: Vec<&'static str> = vec![Box::leak(first.to_owned().into_boxed_str())];
    for r in profile.ranges() {
        h.push(Box::leak(format!("{r:.0}m").into_boxed_str()));
    }
    h
}

fn sweep_ranges(profile: Profile, title: &str, series: &[(&str, DapesConfig)], metric: Metric) {
    let mut table = Table::new(title, &header_with_ranges(profile, "series"));
    for (label, cfg) in series {
        let mut cells = vec![label.to_string()];
        for range in profile.ranges() {
            let mut p = profile.base_params();
            p.range = range;
            let s = run_trials(&dapes(cfg.clone()), &p, profile.trials());
            cells.push(match metric {
                Metric::Time => secs(s.p90_download_time_s),
                Metric::Transmissions => kilo(s.p90_transmissions),
            });
        }
        table.row(cells);
    }
    table.print();
}

fn compare_protocols(profile: Profile, title: &str, metric: Metric) {
    let mut table = Table::new(title, &header_with_ranges(profile, "protocol"));
    let protocols: Vec<(&str, Protocol)> = vec![
        ("DAPES", Protocol::Dapes(Box::default())),
        ("Bithoc", Protocol::Bithoc),
        ("Ekta", Protocol::Ekta),
    ];
    let mut dapes_accuracy: Option<f64> = None;
    for (label, protocol) in &protocols {
        let mut cells = vec![label.to_string()];
        for range in profile.ranges() {
            let mut p = profile.base_params();
            p.range = range;
            let s = run_trials(protocol, &p, profile.trials());
            if matches!(protocol, Protocol::Dapes(_)) {
                dapes_accuracy = dapes_accuracy.or(s.forward_accuracy);
            }
            cells.push(match metric {
                Metric::Time => secs(s.p90_download_time_s),
                Metric::Transmissions => kilo(s.p90_transmissions),
            });
        }
        table.row(cells);
    }
    table.print();
    println!(
        "DAPES forwarded-Interest accuracy: {} (paper: 83%)",
        pct(dapes_accuracy)
    );
}

/// Runs a named figure (dispatch used by the `all` binary).
pub fn run_figure(name: &str, profile: Profile) -> bool {
    match name {
        "fig9a" => fig9a(profile),
        "fig9b" => fig9b(profile),
        "fig9c" => fig9c(profile),
        "fig9d" => fig9d(profile),
        "fig9e" => fig9e(profile),
        "fig9f" => fig9f(profile),
        "fig9g" => fig9g(profile),
        "fig9h" => fig9h(profile),
        "fig10a" => fig10a(profile),
        "fig10b" => fig10b(profile),
        "table1" => crate::table1::table1(profile),
        _ => return false,
    }
    true
}

/// All experiment names in paper order.
pub const ALL_EXPERIMENTS: [&str; 11] = [
    "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "fig9g", "fig9h", "fig10a", "fig10b",
    "table1",
];
