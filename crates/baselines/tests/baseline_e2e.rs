//! End-to-end transfers for the Bithoc and Ekta baselines.

use dapes_baselines::prelude::*;
use dapes_netsim::prelude::*;

fn spec() -> SwarmSpec {
    SwarmSpec {
        total_pieces: 8,
        pieces_per_file: 4,
        piece_size: 1024,
    }
}

fn world(seed: u64, loss: f64) -> World {
    let mut cfg = WorldConfig::default();
    cfg.seed = seed;
    cfg.range = 60.0;
    cfg.phy.loss_rate = loss;
    World::new(cfg)
}

fn bithoc(me: u32, role: BithocRole) -> Box<BithocPeer> {
    Box::new(BithocPeer::new(me, role, spec(), BithocConfig::default()))
}

fn ekta(me: u32, role: EktaRole, members: Vec<u32>) -> Box<EktaPeer> {
    Box::new(EktaPeer::new(me, role, spec(), members, EktaConfig::default()))
}

#[test]
fn bithoc_single_hop_download() {
    let mut w = world(1, 0.0);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        bithoc(0, BithocRole::Seed),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        bithoc(1, BithocRole::Downloader),
    );
    let done = w.run_until_cond(SimTime::from_secs(120), |w| {
        w.stack::<BithocPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "bithoc single-hop download incomplete");
    // Run on to a fixed instant so periodic DSDV/HELLO traffic registers.
    w.run_until(SimTime::from_secs(30));
    // TCP-like overhead appears: data and control segments plus DSDV.
    assert!(w.stats().tx_for_kinds(&[kinds::TCP_DATA]) >= 8);
    assert!(w.stats().tx_for_kinds(&[kinds::TCP_CTRL]) >= 8);
    assert!(w.stats().tx_for_kinds(&[kinds::DSDV_UPDATE]) > 0);
    assert!(w.stats().tx_for_kinds(&[kinds::HELLO]) > 0);
}

#[test]
fn bithoc_two_hop_download_through_router() {
    let mut w = world(2, 0.0);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        bithoc(0, BithocRole::Seed),
    );
    w.add_node(
        Box::new(Stationary::new(Point::new(50.0, 0.0))),
        bithoc(1, BithocRole::Router),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(100.0, 0.0))),
        bithoc(2, BithocRole::Downloader),
    );
    let done = w.run_until_cond(SimTime::from_secs(240), |w| {
        w.stack::<BithocPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "bithoc two-hop download incomplete");
}

#[test]
fn bithoc_survives_loss() {
    let mut w = world(3, 0.10);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        bithoc(0, BithocRole::Seed),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        bithoc(1, BithocRole::Downloader),
    );
    let done = w.run_until_cond(SimTime::from_secs(300), |w| {
        w.stack::<BithocPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "bithoc lossy download incomplete");
}

#[test]
fn ekta_single_hop_download() {
    let members = vec![0, 1];
    let mut w = world(4, 0.0);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        ekta(0, EktaRole::Seed, members.clone()),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        ekta(1, EktaRole::Downloader, members),
    );
    let done = w.run_until_cond(SimTime::from_secs(180), |w| {
        w.stack::<EktaPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "ekta single-hop download incomplete");
    assert!(w.stats().tx_for_kinds(&[kinds::PIECE_DATA]) >= 8);
    assert!(w.stats().tx_for_kinds(&[kinds::DHT]) > 0, "publish/lookup traffic expected");
    assert!(w.stats().tx_for_kinds(&[kinds::RREQ]) > 0, "route discovery expected");
}

#[test]
fn ekta_two_hop_download_through_router() {
    let members = vec![0, 2];
    let mut w = world(5, 0.0);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        ekta(0, EktaRole::Seed, members.clone()),
    );
    w.add_node(
        Box::new(Stationary::new(Point::new(50.0, 0.0))),
        ekta(1, EktaRole::Router, members.clone()),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(100.0, 0.0))),
        ekta(2, EktaRole::Downloader, members),
    );
    let done = w.run_until_cond(SimTime::from_secs(300), |w| {
        w.stack::<EktaPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "ekta two-hop download incomplete");
}

#[test]
fn ekta_survives_loss() {
    let members = vec![0, 1];
    let mut w = world(6, 0.10);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        ekta(0, EktaRole::Seed, members.clone()),
    );
    let dl = w.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        ekta(1, EktaRole::Downloader, members),
    );
    let done = w.run_until_cond(SimTime::from_secs(300), |w| {
        w.stack::<EktaPeer>(dl).is_some_and(|p| p.is_complete())
    });
    assert!(done, "ekta lossy download incomplete");
}

#[test]
fn baselines_are_deterministic() {
    let run = || {
        let mut w = world(7, 0.05);
        w.add_node(
            Box::new(Stationary::new(Point::new(0.0, 0.0))),
            bithoc(0, BithocRole::Seed),
        );
        let dl = w.add_node(
            Box::new(Stationary::new(Point::new(20.0, 0.0))),
            bithoc(1, BithocRole::Downloader),
        );
        w.run_until_cond(SimTime::from_secs(200), |w| {
            w.stack::<BithocPeer>(dl).is_some_and(|p| p.is_complete())
        });
        (
            w.stack::<BithocPeer>(dl).and_then(|p| p.completed_at()),
            w.stats().tx_frames,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn bithoc_multiple_downloaders() {
    let mut w = world(8, 0.0);
    w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        bithoc(0, BithocRole::Seed),
    );
    let d1 = w.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        bithoc(1, BithocRole::Downloader),
    );
    let d2 = w.add_node(
        Box::new(Stationary::new(Point::new(0.0, 20.0))),
        bithoc(2, BithocRole::Downloader),
    );
    let done = w.run_until_cond(SimTime::from_secs(300), |w| {
        w.stack::<BithocPeer>(d1).is_some_and(|p| p.is_complete())
            && w.stack::<BithocPeer>(d2).is_some_and(|p| p.is_complete())
    });
    assert!(done, "both bithoc downloaders should finish");
}
