//! End-to-end transfers for the Bithoc and Ekta baselines, built on the
//! `dapes-testutil` swarm builder.

use dapes_baselines::prelude::*;
use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

fn bithoc(seed: u64) -> BaselineSwarmBuilder {
    BaselineSwarmBuilder::new(BaselineProtocol::Bithoc, seed)
}

fn ekta(seed: u64) -> BaselineSwarmBuilder {
    BaselineSwarmBuilder::new(BaselineProtocol::Ekta, seed)
}

#[test]
fn bithoc_single_hop_download() {
    let mut sw = bithoc(1).seed_at(0.0, 0.0).downloader_at(20.0, 0.0).build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(120)),
        "bithoc single-hop download incomplete"
    );
    // Run on to a fixed instant so periodic DSDV/HELLO traffic registers.
    sw.run_until(SimTime::from_secs(30));
    // TCP-like overhead appears: data and control segments plus DSDV.
    assert!(sw.world.stats().tx_for_kinds(&[kinds::TCP_DATA]) >= 8);
    assert!(sw.world.stats().tx_for_kinds(&[kinds::TCP_CTRL]) >= 8);
    assert!(sw.world.stats().tx_for_kinds(&[kinds::DSDV_UPDATE]) > 0);
    assert!(sw.world.stats().tx_for_kinds(&[kinds::HELLO]) > 0);
}

#[test]
fn bithoc_two_hop_download_through_router() {
    let mut sw = bithoc(2)
        .seed_at(0.0, 0.0)
        .router_at(50.0, 0.0)
        .downloader_at(100.0, 0.0)
        .build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(240)),
        "bithoc two-hop download incomplete"
    );
}

#[test]
fn bithoc_survives_loss() {
    let mut sw = bithoc(3)
        .loss(0.10)
        .seed_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(300)),
        "bithoc lossy download incomplete"
    );
}

#[test]
fn ekta_single_hop_download() {
    let mut sw = ekta(4).seed_at(0.0, 0.0).downloader_at(20.0, 0.0).build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(180)),
        "ekta single-hop download incomplete"
    );
    assert!(sw.world.stats().tx_for_kinds(&[kinds::PIECE_DATA]) >= 8);
    assert!(
        sw.world.stats().tx_for_kinds(&[kinds::DHT]) > 0,
        "publish/lookup traffic expected"
    );
    assert!(
        sw.world.stats().tx_for_kinds(&[kinds::RREQ]) > 0,
        "route discovery expected"
    );
}

#[test]
fn ekta_two_hop_download_through_router() {
    let mut sw = ekta(5)
        .seed_at(0.0, 0.0)
        .router_at(50.0, 0.0)
        .downloader_at(100.0, 0.0)
        .build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(300)),
        "ekta two-hop download incomplete"
    );
}

#[test]
fn ekta_survives_loss() {
    let mut sw = ekta(6)
        .loss(0.10)
        .seed_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(300)),
        "ekta lossy download incomplete"
    );
}

#[test]
fn baselines_are_deterministic() {
    let run = || {
        let mut sw = bithoc(7)
            .loss(0.05)
            .seed_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        sw.run_until_complete(SimTime::from_secs(200));
        (
            sw.completed_at(sw.downloaders[0]),
            sw.world.stats().tx_frames,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn bithoc_multiple_downloaders() {
    let mut sw = bithoc(8)
        .seed_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .downloader_at(0.0, 20.0)
        .build();
    assert!(
        sw.run_until_complete(SimTime::from_secs(300)),
        "both bithoc downloaders should finish"
    );
}

#[test]
fn bithoc_mobile_ferry_reaches_partitioned_downloader() {
    // The harness's ferry preset works for baselines too: a router ferries
    // route + pieces across a partition. Bithoc's proactive DSDV converges
    // slowly, so the ferry dwells longer than the DAPES equivalent.
    let mut sw = bithoc(9)
        .range(50.0)
        .seed_at(0.0, 0.0)
        .node(
            BaselineRole::Downloader,
            MobilityPreset::Ferry {
                from: Point::new(10.0, 0.0),
                to: Point::new(290.0, 0.0),
                depart: SimTime::from_secs(120),
                travel: SimDuration::from_secs(60),
            },
        )
        .downloader_at(300.0, 0.0)
        .build();
    let done = sw.run_until_complete(SimTime::from_secs(900));
    assert!(
        sw.completed(sw.downloaders[0]),
        "the ferry itself should finish next to the seed"
    );
    assert!(done, "bithoc ferry should eventually serve the far peer");
}
