//! A minimal IP-like packet layer for the MANET baselines.
//!
//! Off-the-grid IP needs an address per node (the paper §I notes address
//! auto-configuration is its own problem); we simply use the simulator node
//! id. Packets carry realistic header overhead so air-time comparisons
//! against NDN packets are fair.

use dapes_netsim::node::NodeId;

/// Broadcast destination address.
pub const BROADCAST: u32 = u32::MAX;
/// IP header bytes charged to every packet (IPv4 header).
pub const IP_HEADER: usize = 20;

/// Upper-layer protocol discriminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// DSDV routing update.
    Dsdv,
    /// Bithoc application HELLO flood.
    Hello,
    /// TCP-lite segment.
    Tcp,
    /// UDP-lite datagram.
    Udp,
    /// DSR control (RREQ/RREP/RERR) with source-routed header.
    Dsr,
}

impl Proto {
    fn to_byte(self) -> u8 {
        match self {
            Proto::Dsdv => 0,
            Proto::Hello => 1,
            Proto::Tcp => 2,
            Proto::Udp => 3,
            Proto::Dsr => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => Proto::Dsdv,
            1 => Proto::Hello,
            2 => Proto::Tcp,
            3 => Proto::Udp,
            4 => Proto::Dsr,
            _ => return None,
        })
    }
}

/// An IP-like packet travelling hop-by-hop over the broadcast radio.
///
/// `next_hop` names the intended MAC receiver of this frame (other nodes
/// drop it), while `dst` is the end-to-end destination. DSR-style source
/// routes ride in `route`: the remaining relays after `next_hop`, in order,
/// excluding the destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpPacket {
    /// Originating node.
    pub src: u32,
    /// Final destination ([`BROADCAST`] floods).
    pub dst: u32,
    /// Link-layer intended receiver for this hop ([`BROADCAST`] = everyone).
    pub next_hop: u32,
    /// Remaining relays after `next_hop` (DSR source route), may be empty.
    pub route: Vec<u32>,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Upper-layer protocol.
    pub proto: Proto,
    /// Upper-layer bytes.
    pub payload: Vec<u8>,
}

impl IpPacket {
    /// Creates a packet with a fresh TTL.
    pub fn new(src: u32, dst: u32, proto: Proto, payload: Vec<u8>) -> Self {
        IpPacket {
            src,
            dst,
            next_hop: dst,
            route: Vec::new(),
            ttl: 32,
            proto,
            payload,
        }
    }

    /// Serializes (header + source route + payload). The source route bytes
    /// are charged to the packet just like a real DSR header.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IP_HEADER + 1 + self.route.len() * 4 + self.payload.len());
        out.extend_from_slice(&self.src.to_be_bytes());
        out.extend_from_slice(&self.dst.to_be_bytes());
        out.extend_from_slice(&self.next_hop.to_be_bytes());
        out.push(self.ttl);
        out.push(self.proto.to_byte());
        // Pad to the 20-byte IPv4 header size for honest air time.
        out.extend_from_slice(&[0u8; IP_HEADER - 14]);
        out.push(self.route.len() as u8);
        for hop in &self.route {
            out.extend_from_slice(&hop.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a packet serialized with [`IpPacket::encode`].
    pub fn decode(wire: &[u8]) -> Option<Self> {
        if wire.len() < IP_HEADER + 1 {
            return None;
        }
        let route_len = wire[IP_HEADER] as usize;
        let payload_start = IP_HEADER + 1 + route_len * 4;
        if wire.len() < payload_start {
            return None;
        }
        let mut route = Vec::with_capacity(route_len);
        for i in 0..route_len {
            let off = IP_HEADER + 1 + i * 4;
            route.push(u32::from_be_bytes(wire[off..off + 4].try_into().ok()?));
        }
        Some(IpPacket {
            src: u32::from_be_bytes(wire[0..4].try_into().ok()?),
            dst: u32::from_be_bytes(wire[4..8].try_into().ok()?),
            next_hop: u32::from_be_bytes(wire[8..12].try_into().ok()?),
            route,
            ttl: wire[12],
            proto: Proto::from_byte(wire[13])?,
            payload: wire[payload_start..].to_vec(),
        })
    }

    /// Whether this frame is addressed (at this hop) to `node`.
    pub fn for_hop(&self, node: NodeId) -> bool {
        self.next_hop == BROADCAST || self.next_hop == node.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = IpPacket {
            src: 1,
            dst: 2,
            next_hop: 3,
            route: vec![4, 5],
            ttl: 9,
            proto: Proto::Tcp,
            payload: vec![1, 2, 3],
        };
        let wire = p.encode();
        assert_eq!(wire.len(), IP_HEADER + 1 + 8 + 3);
        assert_eq!(IpPacket::decode(&wire), Some(p));
    }

    #[test]
    fn empty_route_round_trip() {
        let p = IpPacket::new(1, 2, Proto::Udp, vec![9]);
        assert_eq!(IpPacket::decode(&p.encode()), Some(p));
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(IpPacket::decode(&[0; 10]).is_none());
        assert!(IpPacket::decode(&[]).is_none());
    }

    #[test]
    fn hop_addressing() {
        let mut p = IpPacket::new(1, 2, Proto::Udp, vec![]);
        p.next_hop = 5;
        assert!(p.for_hop(NodeId(5)));
        assert!(!p.for_hop(NodeId(6)));
        p.next_hop = BROADCAST;
        assert!(p.for_hop(NodeId(6)));
    }

    #[test]
    fn all_protos_round_trip() {
        for proto in [
            Proto::Dsdv,
            Proto::Hello,
            Proto::Tcp,
            Proto::Udp,
            Proto::Dsr,
        ] {
            let p = IpPacket::new(0, 1, proto, vec![7]);
            assert_eq!(IpPacket::decode(&p.encode()).expect("ok").proto, proto);
        }
    }
}
