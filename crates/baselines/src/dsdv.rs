//! DSDV: Destination-Sequenced Distance-Vector routing (Perkins & Bhagwat),
//! the proactive routing protocol under Bithoc.
//!
//! Every node periodically broadcasts its full routing table; entries carry
//! destination-originated even sequence numbers. Receivers adopt a route
//! when its sequence number is newer, or equal-numbered with a lower metric.
//! A lost neighbor is advertised with an odd (infinity) sequence number via
//! a triggered update. The periodic broadcasts are the "proactive routing
//! overhead" the paper charges to Bithoc.

use dapes_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Metric representing an unreachable destination.
pub const INFINITY: u16 = u16::MAX;

/// One routing-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Next hop towards the destination.
    pub next_hop: u32,
    /// Hop count ([`INFINITY`] = broken).
    pub metric: u16,
    /// Destination-generated sequence number (even = valid, odd = broken).
    pub seqno: u32,
}

/// An advertised entry inside an update packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advertised {
    /// The destination being advertised.
    pub dst: u32,
    /// Advertiser's metric to it.
    pub metric: u16,
    /// Sequence number.
    pub seqno: u32,
}

/// DSDV state for one node.
#[derive(Clone, Debug)]
pub struct Dsdv {
    me: u32,
    routes: BTreeMap<u32, Route>,
    /// Our own sequence number (even, incremented by 2 per update).
    my_seqno: u32,
    /// Last time each direct neighbor was heard.
    neighbor_heard: BTreeMap<u32, SimTime>,
    /// Neighbors silent past this age are declared broken.
    pub neighbor_timeout: SimDuration,
    /// Destinations that changed since the last update (triggered updates).
    dirty: bool,
}

impl Dsdv {
    /// Creates the routing state for node `me`.
    pub fn new(me: u32) -> Self {
        Dsdv {
            me,
            routes: BTreeMap::new(),
            my_seqno: 0,
            neighbor_heard: BTreeMap::new(),
            neighbor_timeout: SimDuration::from_secs(6),
            dirty: false,
        }
    }

    /// Next hop towards `dst`, when a valid route exists.
    pub fn next_hop(&self, dst: u32) -> Option<u32> {
        if dst == self.me {
            return None;
        }
        self.routes
            .get(&dst)
            .filter(|r| r.metric != INFINITY)
            .map(|r| r.next_hop)
    }

    /// Current route metric to `dst`.
    pub fn metric(&self, dst: u32) -> Option<u16> {
        self.routes
            .get(&dst)
            .filter(|r| r.metric != INFINITY)
            .map(|r| r.metric)
    }

    /// All destinations with valid routes.
    pub fn reachable(&self) -> impl Iterator<Item = u32> + '_ {
        self.routes
            .iter()
            .filter(|(_, r)| r.metric != INFINITY)
            .map(|(&d, _)| d)
    }

    /// Whether a triggered update is due.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Registers that a frame from `neighbor` was heard at `now`; installs
    /// or refreshes the one-hop route.
    pub fn hear_neighbor(&mut self, neighbor: u32, now: SimTime) {
        if neighbor == self.me {
            return;
        }
        self.neighbor_heard.insert(neighbor, now);
        let entry = self.routes.entry(neighbor).or_insert(Route {
            next_hop: neighbor,
            metric: 1,
            seqno: 0,
        });
        if entry.metric > 1 {
            *entry = Route {
                next_hop: neighbor,
                metric: 1,
                seqno: entry.seqno,
            };
            self.dirty = true;
        }
    }

    /// Declares neighbors unheard since `now - neighbor_timeout` broken and
    /// invalidates routes through them.
    pub fn expire_neighbors(&mut self, now: SimTime) {
        let timeout = self.neighbor_timeout;
        let dead: Vec<u32> = self
            .neighbor_heard
            .iter()
            .filter(|(_, &t)| now.since(t) > timeout)
            .map(|(&n, _)| n)
            .collect();
        for n in dead {
            self.neighbor_heard.remove(&n);
            for (_, route) in self.routes.iter_mut() {
                if route.next_hop == n && route.metric != INFINITY {
                    route.metric = INFINITY;
                    route.seqno |= 1; // odd: originated by a breakage
                    self.dirty = true;
                }
            }
        }
    }

    /// Builds the full-dump advertisement (our own entry plus every valid
    /// route), bumping our sequence number.
    pub fn full_dump(&mut self) -> Vec<Advertised> {
        self.my_seqno = self.my_seqno.wrapping_add(2);
        let mut ads = vec![Advertised {
            dst: self.me,
            metric: 0,
            seqno: self.my_seqno,
        }];
        for (&dst, route) in &self.routes {
            ads.push(Advertised {
                dst,
                metric: route.metric,
                seqno: route.seqno,
            });
        }
        ads
    }

    /// Processes an update heard from direct neighbor `from`.
    pub fn on_update(&mut self, from: u32, ads: &[Advertised], now: SimTime) {
        self.hear_neighbor(from, now);
        for ad in ads {
            if ad.dst == self.me {
                continue;
            }
            let new_metric = if ad.metric == INFINITY {
                INFINITY
            } else {
                ad.metric.saturating_add(1)
            };
            let candidate = Route {
                next_hop: from,
                metric: new_metric,
                seqno: ad.seqno,
            };
            match self.routes.get(&ad.dst) {
                None => {
                    if new_metric != INFINITY {
                        self.routes.insert(ad.dst, candidate);
                        self.dirty = true;
                    }
                }
                Some(current) => {
                    let newer = seqno_newer(ad.seqno, current.seqno);
                    let same_but_better = ad.seqno == current.seqno && new_metric < current.metric;
                    if newer || same_but_better {
                        if *current != candidate {
                            self.dirty = true;
                        }
                        self.routes.insert(ad.dst, candidate);
                    }
                }
            }
        }
    }

    /// Serializes advertisements (8 bytes per entry, realistic DSDV size).
    pub fn encode(ads: &[Advertised]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ads.len() * 10);
        out.extend_from_slice(&(ads.len() as u16).to_be_bytes());
        for ad in ads {
            out.extend_from_slice(&ad.dst.to_be_bytes());
            out.extend_from_slice(&ad.metric.to_be_bytes());
            out.extend_from_slice(&ad.seqno.to_be_bytes());
        }
        out
    }

    /// Parses an update payload.
    pub fn decode(wire: &[u8]) -> Option<Vec<Advertised>> {
        let count = u16::from_be_bytes(wire.get(0..2)?.try_into().ok()?) as usize;
        let mut ads = Vec::with_capacity(count);
        let mut pos = 2;
        for _ in 0..count {
            let chunk = wire.get(pos..pos + 10)?;
            ads.push(Advertised {
                dst: u32::from_be_bytes(chunk[0..4].try_into().ok()?),
                metric: u16::from_be_bytes(chunk[4..6].try_into().ok()?),
                seqno: u32::from_be_bytes(chunk[6..10].try_into().ok()?),
            });
            pos += 10;
        }
        if pos != wire.len() {
            return None;
        }
        Some(ads)
    }
}

/// Sequence-number comparison with wrap-around (RFC 1982-style).
fn seqno_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < u32::MAX / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn neighbor_heard_installs_one_hop_route() {
        let mut d = Dsdv::new(1);
        d.hear_neighbor(2, t(0));
        assert_eq!(d.next_hop(2), Some(2));
        assert_eq!(d.metric(2), Some(1));
    }

    #[test]
    fn update_installs_two_hop_route() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[
                Advertised {
                    dst: 2,
                    metric: 0,
                    seqno: 2,
                },
                Advertised {
                    dst: 3,
                    metric: 1,
                    seqno: 4,
                },
            ],
            t(0),
        );
        assert_eq!(d.next_hop(3), Some(2));
        assert_eq!(d.metric(3), Some(2));
    }

    #[test]
    fn newer_seqno_wins_even_with_worse_metric() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 9,
                metric: 1,
                seqno: 4,
            }],
            t(0),
        );
        d.on_update(
            3,
            &[Advertised {
                dst: 9,
                metric: 5,
                seqno: 6,
            }],
            t(1),
        );
        assert_eq!(d.next_hop(9), Some(3));
        assert_eq!(d.metric(9), Some(6));
    }

    #[test]
    fn same_seqno_prefers_lower_metric() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 9,
                metric: 4,
                seqno: 4,
            }],
            t(0),
        );
        d.on_update(
            3,
            &[Advertised {
                dst: 9,
                metric: 1,
                seqno: 4,
            }],
            t(1),
        );
        assert_eq!(d.next_hop(9), Some(3));
        d.on_update(
            4,
            &[Advertised {
                dst: 9,
                metric: 3,
                seqno: 4,
            }],
            t(2),
        );
        assert_eq!(d.next_hop(9), Some(3), "worse metric ignored");
    }

    #[test]
    fn neighbor_expiry_invalidates_routes_through_it() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 3,
                metric: 1,
                seqno: 4,
            }],
            t(0),
        );
        assert_eq!(d.next_hop(3), Some(2));
        d.expire_neighbors(t(10));
        assert_eq!(d.next_hop(3), None);
        assert_eq!(d.next_hop(2), None);
        assert!(d.take_dirty());
    }

    #[test]
    fn broken_route_recovers_with_newer_seqno() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 3,
                metric: 1,
                seqno: 4,
            }],
            t(0),
        );
        d.expire_neighbors(t(10)); // breaks it (seqno becomes odd 5)
        d.on_update(
            4,
            &[Advertised {
                dst: 3,
                metric: 2,
                seqno: 6,
            }],
            t(11),
        );
        assert_eq!(d.next_hop(3), Some(4));
    }

    #[test]
    fn full_dump_contains_self_with_fresh_seqno() {
        let mut d = Dsdv::new(7);
        let dump1 = d.full_dump();
        let dump2 = d.full_dump();
        assert_eq!(dump1[0].dst, 7);
        assert_eq!(dump1[0].metric, 0);
        assert!(seqno_newer(dump2[0].seqno, dump1[0].seqno));
    }

    #[test]
    fn own_entry_in_updates_is_ignored() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 1,
                metric: 3,
                seqno: 100,
            }],
            t(0),
        );
        assert_eq!(d.next_hop(1), None);
    }

    #[test]
    fn infinity_adverts_do_not_create_routes() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 9,
                metric: INFINITY,
                seqno: 5,
            }],
            t(0),
        );
        assert_eq!(d.next_hop(9), None);
    }

    #[test]
    fn infinity_advert_breaks_existing_route() {
        let mut d = Dsdv::new(1);
        d.on_update(
            2,
            &[Advertised {
                dst: 9,
                metric: 1,
                seqno: 4,
            }],
            t(0),
        );
        d.on_update(
            2,
            &[Advertised {
                dst: 9,
                metric: INFINITY,
                seqno: 5,
            }],
            t(1),
        );
        assert_eq!(d.next_hop(9), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let ads = vec![
            Advertised {
                dst: 1,
                metric: 0,
                seqno: 2,
            },
            Advertised {
                dst: 9,
                metric: INFINITY,
                seqno: 7,
            },
        ];
        let wire = Dsdv::encode(&ads);
        assert_eq!(Dsdv::decode(&wire), Some(ads));
        assert!(Dsdv::decode(&wire[..wire.len() - 1]).is_none());
        assert!(Dsdv::decode(&[]).is_none());
    }

    #[test]
    fn three_node_line_converges() {
        // 1 -- 2 -- 3: exchange full dumps until 1 routes to 3 via 2.
        let mut n1 = Dsdv::new(1);
        let mut n2 = Dsdv::new(2);
        let mut n3 = Dsdv::new(3);
        for round in 0..3u64 {
            let now = t(round);
            let d1 = n1.full_dump();
            let d2 = n2.full_dump();
            let d3 = n3.full_dump();
            // 1 and 3 only hear 2; 2 hears both.
            n1.on_update(2, &d2, now);
            n3.on_update(2, &d2, now);
            n2.on_update(1, &d1, now);
            n2.on_update(3, &d3, now);
        }
        assert_eq!(n1.next_hop(3), Some(2));
        assert_eq!(n3.next_hop(1), Some(2));
        assert_eq!(n2.next_hop(1), Some(1));
    }
}
