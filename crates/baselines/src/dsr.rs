//! DSR: Dynamic Source Routing (Johnson & Maltz), the reactive routing
//! protocol under Ekta.
//!
//! Routes are discovered on demand: a RREQ floods the network accumulating
//! the traversed path; the target answers with a RREP carried back along
//! the reversed path; data packets then carry the full source route. Broken
//! links trigger RERRs that purge cached routes. The RREQ floods are the
//! "reactive routing overhead" the paper charges to Ekta.

use dapes_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A DSR control or source-routed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsrMessage {
    /// Route request, flooded.
    Rreq {
        /// Flood identifier (origin-scoped).
        id: u32,
        /// Flood originator.
        origin: u32,
        /// Sought destination.
        target: u32,
        /// Nodes traversed so far (excluding origin).
        path: Vec<u32>,
    },
    /// Route reply, unicast back along the reversed discovery path.
    Rrep {
        /// The requester the reply returns to.
        origin: u32,
        /// The discovered target.
        target: u32,
        /// Full path origin → target (excluding both endpoints).
        path: Vec<u32>,
        /// Remaining relays toward the origin (consumed per hop).
        return_path: Vec<u32>,
    },
    /// Route error: the link `from → to` is broken.
    Rerr {
        /// Upstream endpoint of the broken link.
        from: u32,
        /// Downstream endpoint of the broken link.
        to: u32,
    },
}

impl DsrMessage {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        fn put_path(out: &mut Vec<u8>, path: &[u32]) {
            out.extend_from_slice(&(path.len() as u16).to_be_bytes());
            for hop in path {
                out.extend_from_slice(&hop.to_be_bytes());
            }
        }
        let mut out = Vec::new();
        match self {
            DsrMessage::Rreq {
                id,
                origin,
                target,
                path,
            } => {
                out.push(0);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&origin.to_be_bytes());
                out.extend_from_slice(&target.to_be_bytes());
                put_path(&mut out, path);
            }
            DsrMessage::Rrep {
                origin,
                target,
                path,
                return_path,
            } => {
                out.push(1);
                out.extend_from_slice(&origin.to_be_bytes());
                out.extend_from_slice(&target.to_be_bytes());
                put_path(&mut out, path);
                put_path(&mut out, return_path);
            }
            DsrMessage::Rerr { from, to } => {
                out.push(2);
                out.extend_from_slice(&from.to_be_bytes());
                out.extend_from_slice(&to.to_be_bytes());
            }
        }
        out
    }

    /// Parses a message serialized with [`DsrMessage::encode`].
    pub fn decode(wire: &[u8]) -> Option<Self> {
        fn get_u32(wire: &[u8], pos: &mut usize) -> Option<u32> {
            let v = u32::from_be_bytes(wire.get(*pos..*pos + 4)?.try_into().ok()?);
            *pos += 4;
            Some(v)
        }
        fn get_path(wire: &[u8], pos: &mut usize) -> Option<Vec<u32>> {
            let len = u16::from_be_bytes(wire.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
            *pos += 2;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(get_u32(wire, pos)?);
            }
            Some(path)
        }
        let mut pos = 1;
        match wire.first()? {
            0 => {
                let id = get_u32(wire, &mut pos)?;
                let origin = get_u32(wire, &mut pos)?;
                let target = get_u32(wire, &mut pos)?;
                let path = get_path(wire, &mut pos)?;
                Some(DsrMessage::Rreq {
                    id,
                    origin,
                    target,
                    path,
                })
            }
            1 => {
                let origin = get_u32(wire, &mut pos)?;
                let target = get_u32(wire, &mut pos)?;
                let path = get_path(wire, &mut pos)?;
                let return_path = get_path(wire, &mut pos)?;
                Some(DsrMessage::Rrep {
                    origin,
                    target,
                    path,
                    return_path,
                })
            }
            2 => {
                let from = get_u32(wire, &mut pos)?;
                let to = get_u32(wire, &mut pos)?;
                Some(DsrMessage::Rerr { from, to })
            }
            _ => None,
        }
    }
}

/// DSR route cache and flood-suppression state for one node.
#[derive(Clone, Debug)]
pub struct Dsr {
    me: u32,
    /// Cached full paths (intermediate hops only) keyed by destination,
    /// with the time they were learned: mobile routes go stale quickly.
    cache: BTreeMap<u32, (Vec<u32>, SimTime)>,
    /// RREQ floods already seen: (origin, id).
    seen_rreq: BTreeMap<(u32, u32), ()>,
    next_rreq_id: u32,
}

impl Dsr {
    /// Creates the DSR state for node `me`.
    pub fn new(me: u32) -> Self {
        Dsr {
            me,
            cache: BTreeMap::new(),
            seen_rreq: BTreeMap::new(),
            next_rreq_id: 0,
        }
    }

    /// The cached route (intermediate hops) to `dst`, if any.
    pub fn route(&self, dst: u32) -> Option<&Vec<u32>> {
        self.cache.get(&dst).map(|(p, _)| p)
    }

    /// The next hop towards `dst` per the cached route.
    pub fn next_hop(&self, dst: u32) -> Option<u32> {
        let (path, _) = self.cache.get(&dst)?;
        Some(path.first().copied().unwrap_or(dst))
    }

    /// Drops routes older than `max_age` — in a mobile network cached
    /// source routes rot as relays move out of range.
    pub fn expire_routes(&mut self, now: SimTime, max_age: SimDuration) {
        self.cache
            .retain(|_, (_, learned)| now.since(*learned) <= max_age);
    }

    /// Refreshes a route's age after evidence it still works (a response
    /// arrived over it), so only idle or failing routes expire.
    pub fn touch(&mut self, dst: u32, now: SimTime) {
        if let Some((_, learned)) = self.cache.get_mut(&dst) {
            *learned = now;
        }
    }

    /// Starts a route discovery, returning the RREQ to flood.
    pub fn start_discovery(&mut self, target: u32) -> DsrMessage {
        self.next_rreq_id += 1;
        let id = self.next_rreq_id;
        self.seen_rreq.insert((self.me, id), ());
        DsrMessage::Rreq {
            id,
            origin: self.me,
            target,
            path: Vec::new(),
        }
    }

    /// Caches a discovered path (intermediate hops) to `dst`. Fresh routes
    /// replace older ones of equal or greater length.
    pub fn learn_route(&mut self, dst: u32, path: Vec<u32>) {
        self.learn_route_at(dst, path, SimTime::ZERO);
    }

    /// Caches a discovered path with its learning time.
    pub fn learn_route_at(&mut self, dst: u32, path: Vec<u32>, now: SimTime) {
        let better = match self.cache.get(&dst) {
            None => true,
            Some((existing, _)) => path.len() <= existing.len(),
        };
        if better {
            self.cache.insert(dst, (path, now));
        }
    }

    /// Handles a RREQ heard from a direct neighbor. Returns what to do.
    pub fn on_rreq(&mut self, id: u32, origin: u32, target: u32, path: &[u32]) -> RreqAction {
        if origin == self.me || self.seen_rreq.contains_key(&(origin, id)) {
            return RreqAction::Drop;
        }
        self.seen_rreq.insert((origin, id), ());
        // Opportunistically learn the reverse route to the origin.
        let mut reverse: Vec<u32> = path.to_vec();
        reverse.reverse();
        self.learn_route(origin, reverse);
        if target == self.me {
            // Reply along the reversed record.
            let mut return_path: Vec<u32> = path.to_vec();
            return_path.reverse();
            return RreqAction::Reply {
                origin,
                path: path.to_vec(),
                return_path,
            };
        }
        let mut extended = path.to_vec();
        extended.push(self.me);
        RreqAction::Forward { path: extended }
    }

    /// Purges all cached routes using the broken link `from → to`.
    pub fn on_link_break(&mut self, from: u32, to: u32) {
        self.cache.retain(|&dst, (path, _)| {
            let mut hops = Vec::with_capacity(path.len() + 2);
            hops.push(self.me);
            hops.extend_from_slice(path);
            hops.push(dst);
            !hops.windows(2).any(|w| w[0] == from && w[1] == to)
        });
    }

    /// Drops the cached route to `dst` (e.g. after repeated delivery
    /// failure).
    pub fn forget(&mut self, dst: u32) {
        self.cache.remove(&dst);
    }

    /// Number of cached routes.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// What to do with a received RREQ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RreqAction {
    /// Duplicate or own flood: ignore.
    Drop,
    /// We are the target: send this RREP back.
    Reply {
        /// The requester.
        origin: u32,
        /// Path origin → us (intermediates only).
        path: Vec<u32>,
        /// Relays back to the origin, first hop first.
        return_path: Vec<u32>,
    },
    /// Re-flood with ourselves appended to the record.
    Forward {
        /// The extended path record.
        path: Vec<u32>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_round_trips() {
        let msgs = vec![
            DsrMessage::Rreq {
                id: 1,
                origin: 2,
                target: 3,
                path: vec![4, 5],
            },
            DsrMessage::Rrep {
                origin: 2,
                target: 3,
                path: vec![4, 5],
                return_path: vec![5, 4],
            },
            DsrMessage::Rerr { from: 1, to: 2 },
        ];
        for m in msgs {
            assert_eq!(DsrMessage::decode(&m.encode()), Some(m));
        }
        assert!(DsrMessage::decode(&[]).is_none());
        assert!(DsrMessage::decode(&[9]).is_none());
    }

    #[test]
    fn target_replies_with_reversed_path() {
        let mut d = Dsr::new(3);
        let action = d.on_rreq(1, 1, 3, &[2]);
        assert_eq!(
            action,
            RreqAction::Reply {
                origin: 1,
                path: vec![2],
                return_path: vec![2],
            }
        );
        // Target also learned the reverse route to the origin.
        assert_eq!(d.route(1), Some(&vec![2]));
    }

    #[test]
    fn intermediate_extends_and_forwards_once() {
        let mut d = Dsr::new(2);
        let action = d.on_rreq(1, 1, 3, &[]);
        assert_eq!(action, RreqAction::Forward { path: vec![2] });
        // Duplicate flood dropped.
        assert_eq!(d.on_rreq(1, 1, 3, &[]), RreqAction::Drop);
        // New flood id processed.
        assert_ne!(d.on_rreq(2, 1, 3, &[]), RreqAction::Drop);
    }

    #[test]
    fn own_flood_dropped() {
        let mut d = Dsr::new(1);
        let msg = d.start_discovery(9);
        if let DsrMessage::Rreq {
            id,
            origin,
            target,
            path,
        } = msg
        {
            assert_eq!(d.on_rreq(id, origin, target, &path), RreqAction::Drop);
        } else {
            panic!("expected RREQ");
        }
    }

    #[test]
    fn shorter_routes_replace_longer() {
        let mut d = Dsr::new(1);
        d.learn_route(9, vec![2, 3, 4]);
        d.learn_route(9, vec![5]);
        assert_eq!(d.route(9), Some(&vec![5]));
        d.learn_route(9, vec![6, 7]);
        assert_eq!(d.route(9), Some(&vec![5]), "longer route ignored");
        assert_eq!(d.next_hop(9), Some(5));
    }

    #[test]
    fn direct_route_next_hop_is_destination() {
        let mut d = Dsr::new(1);
        d.learn_route(9, vec![]);
        assert_eq!(d.next_hop(9), Some(9));
    }

    #[test]
    fn link_break_purges_affected_routes() {
        let mut d = Dsr::new(1);
        d.learn_route(9, vec![2, 3]); // 1-2-3-9
        d.learn_route(8, vec![4]); // 1-4-8
        d.on_link_break(2, 3);
        assert_eq!(d.route(9), None);
        assert_eq!(d.route(8), Some(&vec![4]));
        // Break of the final hop.
        d.on_link_break(4, 8);
        assert_eq!(d.route(8), None);
    }

    #[test]
    fn forget_removes_route() {
        let mut d = Dsr::new(1);
        d.learn_route(9, vec![2]);
        d.forget(9);
        assert_eq!(d.route(9), None);
    }
}
