//! Shared workload description and frame kinds for the IP baselines.

use dapes_netsim::radio::FrameKind;

/// Frame kinds for baseline overhead accounting (DAPES uses 1–8).
pub mod kinds {
    use super::FrameKind;

    /// DSDV periodic/triggered routing update.
    pub const DSDV_UPDATE: FrameKind = FrameKind(20);
    /// Bithoc application-layer HELLO flood.
    pub const HELLO: FrameKind = FrameKind(21);
    /// TCP-lite control segment (request/ack/handshake).
    pub const TCP_CTRL: FrameKind = FrameKind(22);
    /// TCP-lite data segment.
    pub const TCP_DATA: FrameKind = FrameKind(23);
    /// DSR route request flood.
    pub const RREQ: FrameKind = FrameKind(24);
    /// DSR route reply.
    pub const RREP: FrameKind = FrameKind(25);
    /// DSR route error.
    pub const RERR: FrameKind = FrameKind(26);
    /// DHT publish/lookup/response messages.
    pub const DHT: FrameKind = FrameKind(27);
    /// Ekta piece request (UDP).
    pub const PIECE_REQ: FrameKind = FrameKind(28);
    /// Ekta piece data (UDP).
    pub const PIECE_DATA: FrameKind = FrameKind(29);

    /// Everything Bithoc transmits (the paper's Bithoc overhead set).
    pub const ALL_BITHOC: [FrameKind; 4] = [DSDV_UPDATE, HELLO, TCP_CTRL, TCP_DATA];
    /// Everything Ekta transmits (the paper's Ekta overhead set).
    pub const ALL_EKTA: [FrameKind; 6] = [RREQ, RREP, RERR, DHT, PIECE_REQ, PIECE_DATA];
}

/// The file-collection workload as the IP baselines see it.
///
/// BitTorrent-style systems learn this from a torrent file out of band; we
/// hand it to every participant directly (favouring the baselines — they
/// pay no metadata-distribution cost, unlike DAPES).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwarmSpec {
    /// Total pieces (1 piece = 1 KB packet, matching the DAPES workload).
    pub total_pieces: usize,
    /// Pieces per file (lookup granularity for Ekta).
    pub pieces_per_file: usize,
    /// Piece payload bytes.
    pub piece_size: usize,
}

impl SwarmSpec {
    /// The paper's default: ten 1 MB files at 1 KB packets.
    pub fn paper_default() -> Self {
        SwarmSpec {
            total_pieces: 9770,
            pieces_per_file: 977,
            piece_size: 1024,
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.total_pieces.div_ceil(self.pieces_per_file.max(1))
    }

    /// File index of a piece.
    pub fn file_of(&self, piece: usize) -> usize {
        piece / self.pieces_per_file.max(1)
    }

    /// Piece range of a file.
    pub fn file_range(&self, file: usize) -> std::ops::Range<usize> {
        let start = file * self.pieces_per_file;
        start..(start + self.pieces_per_file).min(self.total_pieces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let s = SwarmSpec {
            total_pieces: 10,
            pieces_per_file: 4,
            piece_size: 1024,
        };
        assert_eq!(s.file_count(), 3);
        assert_eq!(s.file_of(0), 0);
        assert_eq!(s.file_of(4), 1);
        assert_eq!(s.file_range(2), 8..10);
    }

    #[test]
    fn paper_default_matches_workload() {
        let s = SwarmSpec::paper_default();
        assert_eq!(s.total_pieces, 9770);
        assert_eq!(s.file_count(), 10);
    }

    #[test]
    fn kind_sets_are_disjoint() {
        for b in kinds::ALL_BITHOC {
            assert!(!kinds::ALL_EKTA.contains(&b));
        }
    }
}
