//! IP/MANET baselines for the DAPES reproduction: **Bithoc** and **Ekta**.
//!
//! The paper's Fig. 10 compares DAPES against two IP-based peer-to-peer file
//! sharing systems for mobile ad-hoc networks:
//!
//! * [`bithoc`] — BitTorrent-over-MANET with proactive [`dsdv`] routing,
//!   application-layer scoped HELLO flooding and TCP-like reliable piece
//!   transfer;
//! * [`ekta`] — a Pastry-style DHT integrated with reactive [`dsr`] routing,
//!   fetching pieces over UDP.
//!
//! Both run on the same [`dapes_netsim`] radio as DAPES and tally their
//! transmissions by frame kind, so the overhead comparison of Fig. 10b is
//! apples-to-apples. See `DESIGN.md` for the documented simplifications
//! (static DHT membership, out-of-band torrent metadata).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bithoc;
pub mod dsdv;
pub mod dsr;
pub mod ekta;
pub mod ip;
pub mod swarm;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::bithoc::{BithocConfig, BithocPeer, BithocRole};
    pub use crate::dsdv::Dsdv;
    pub use crate::dsr::{Dsr, DsrMessage};
    pub use crate::ekta::{EktaConfig, EktaPeer, EktaRole};
    pub use crate::ip::IpPacket;
    pub use crate::swarm::{kinds, SwarmSpec};
}

pub use prelude::*;
