//! Bithoc: BitTorrent for wireless ad-hoc networks (Krifa et al., Sbai et
//! al.), the proactive-routing baseline of the paper's Fig. 10.
//!
//! Peers run DSDV for routes, flood application-layer HELLOs (TTL 2 for
//! "close" peers, occasional wider floods for "far" peers) carrying their
//! piece bitmaps, fetch rare pieces from close peers over a TCP-like
//! reliable exchange (request + data + ack, all unicast hop-by-hop), and
//! fall back to far peers for pieces absent nearby.

use crate::dsdv::Dsdv;
use crate::ip::{IpPacket, Proto, BROADCAST};
use crate::swarm::{kinds, SwarmSpec};
use dapes_core::bitmap::Bitmap;
use dapes_netsim::node::{NetStack, NodeCtx, NodeId};
use dapes_netsim::radio::{Frame, FrameKind};
use dapes_netsim::time::{SimDuration, SimTime};
use rand::Rng;
use std::any::Any;
use std::collections::BTreeMap;

const TOKEN_TICK: u64 = 1;
const TOKEN_DSDV: u64 = 2;
const TOKEN_HELLO: u64 = 3;
const TOKEN_FAR_HELLO: u64 = 4;

/// Close-neighborhood scope in hops (paper: at most two hops away).
const CLOSE_TTL: u8 = 2;
/// Far flood scope.
const FAR_TTL: u8 = 16;

/// What a Bithoc node does in the swarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BithocRole {
    /// Has every piece from the start.
    Seed,
    /// Downloads the collection.
    Downloader,
    /// Forwards packets per its routing table only.
    Router,
}

#[derive(Clone, Debug)]
enum AppMsg {
    Hello {
        peer: u32,
        seq: u32,
        scope: u8,
        bitmap: Bitmap,
    },
    Req {
        piece: u32,
    },
    DataSeg {
        piece: u32,
        len: u32,
    },
    Ack {
        piece: u32,
    },
}

impl AppMsg {
    fn encode(&self) -> Vec<u8> {
        match self {
            AppMsg::Hello {
                peer,
                seq,
                scope,
                bitmap,
            } => {
                let mut out = vec![0u8, *scope];
                out.extend_from_slice(&peer.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&bitmap.to_wire());
                out
            }
            AppMsg::Req { piece } => {
                let mut out = vec![1u8, 0];
                out.extend_from_slice(&piece.to_be_bytes());
                // TCP header weight (20 bytes beyond what we encode).
                out.extend_from_slice(&[0u8; 20]);
                out
            }
            AppMsg::DataSeg { piece, len } => {
                let mut out = vec![2u8, 0];
                out.extend_from_slice(&piece.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(&vec![0u8; *len as usize]);
                out
            }
            AppMsg::Ack { piece } => {
                let mut out = vec![3u8, 0];
                out.extend_from_slice(&piece.to_be_bytes());
                out.extend_from_slice(&[0u8; 20]);
                out
            }
        }
    }

    fn decode(wire: &[u8]) -> Option<Self> {
        match wire.first()? {
            0 => {
                let scope = *wire.get(1)?;
                let peer = u32::from_be_bytes(wire.get(2..6)?.try_into().ok()?);
                let seq = u32::from_be_bytes(wire.get(6..10)?.try_into().ok()?);
                let bitmap = Bitmap::from_wire(wire.get(10..)?)?;
                Some(AppMsg::Hello {
                    peer,
                    seq,
                    scope,
                    bitmap,
                })
            }
            1 => Some(AppMsg::Req {
                piece: u32::from_be_bytes(wire.get(2..6)?.try_into().ok()?),
            }),
            2 => {
                let piece = u32::from_be_bytes(wire.get(2..6)?.try_into().ok()?);
                let len = u32::from_be_bytes(wire.get(6..10)?.try_into().ok()?);
                Some(AppMsg::DataSeg { piece, len })
            }
            3 => Some(AppMsg::Ack {
                piece: u32::from_be_bytes(wire.get(2..6)?.try_into().ok()?),
            }),
            _ => None,
        }
    }

    fn kind(&self) -> FrameKind {
        match self {
            AppMsg::Hello { .. } => kinds::HELLO,
            AppMsg::DataSeg { .. } => kinds::TCP_DATA,
            AppMsg::Req { .. } | AppMsg::Ack { .. } => kinds::TCP_CTRL,
        }
    }
}

#[derive(Clone, Debug)]
struct KnownPeer {
    bitmap: Bitmap,
    last_heard: SimTime,
    close: bool,
}

/// Configuration knobs for Bithoc.
#[derive(Clone, Debug)]
pub struct BithocConfig {
    /// DSDV full-dump period (paper-typical 15 s would starve a mobile
    /// swarm; Bithoc deployments use a few seconds).
    pub dsdv_period: SimDuration,
    /// Close-scope HELLO period.
    pub hello_period: SimDuration,
    /// Far-scope HELLO period.
    pub far_hello_period: SimDuration,
    /// Outstanding piece requests.
    pub window: usize,
    /// Request retransmission timeout.
    pub retx_timeout: SimDuration,
    /// Known-peer expiry.
    pub peer_timeout: SimDuration,
    /// Housekeeping tick.
    pub tick: SimDuration,
    /// Random jitter window applied to transmissions.
    pub tx_window: SimDuration,
}

impl Default for BithocConfig {
    fn default() -> Self {
        BithocConfig {
            dsdv_period: SimDuration::from_secs(4),
            hello_period: SimDuration::from_secs(3),
            far_hello_period: SimDuration::from_secs(10),
            window: 4,
            retx_timeout: SimDuration::from_millis(700),
            peer_timeout: SimDuration::from_secs(10),
            tick: SimDuration::from_millis(100),
            tx_window: SimDuration::from_millis(20),
        }
    }
}

/// A Bithoc node (downloader, seed, or plain DSDV router).
pub struct BithocPeer {
    me: u32,
    cfg: BithocConfig,
    role: BithocRole,
    spec: SwarmSpec,
    dsdv: Dsdv,
    have: Bitmap,
    peers: BTreeMap<u32, KnownPeer>,
    /// piece -> (holder, sent, retx count)
    outstanding: BTreeMap<u32, (u32, SimTime, u32)>,
    completed_at: Option<SimTime>,
    /// Pieces tried and permanently failed this encounter window.
    stalled_until: BTreeMap<u32, SimTime>,
    /// Our HELLO sequence counter.
    hello_seq: u32,
    /// Highest HELLO sequence relayed per origin (flood dedup).
    hello_seen: BTreeMap<u32, u32>,
    /// Last triggered DSDV update (rate limit).
    last_triggered_dsdv: SimTime,
}

impl BithocPeer {
    /// Creates a node.
    pub fn new(me: u32, role: BithocRole, spec: SwarmSpec, cfg: BithocConfig) -> Self {
        let have = match role {
            BithocRole::Seed => Bitmap::full(spec.total_pieces),
            _ => Bitmap::new(spec.total_pieces),
        };
        BithocPeer {
            me,
            cfg,
            role,
            spec,
            dsdv: Dsdv::new(me),
            have,
            peers: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            completed_at: None,
            stalled_until: BTreeMap::new(),
            hello_seq: 0,
            hello_seen: BTreeMap::new(),
            last_triggered_dsdv: SimTime::ZERO,
        }
    }

    /// Completion time, once every piece arrived.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Whether the download finished.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Download progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.have.fraction_set()
    }

    fn jitter(&self, ctx: &mut NodeCtx<'_>) -> SimDuration {
        SimDuration::from_micros(
            ctx.rng()
                .gen_range(0..self.cfg.tx_window.as_micros().max(1)),
        )
    }

    fn send_ip(&mut self, ctx: &mut NodeCtx<'_>, packet: IpPacket, kind: FrameKind) {
        let delay = self.jitter(ctx);
        ctx.send_frame(packet.encode(), kind, 0, delay);
    }

    /// Unicast toward `dst` using the DSDV table; drops when routeless.
    fn unicast(&mut self, ctx: &mut NodeCtx<'_>, dst: u32, msg: &AppMsg) -> bool {
        let Some(next) = self.dsdv.next_hop(dst) else {
            return false;
        };
        let mut packet = IpPacket::new(self.me, dst, Proto::Tcp, msg.encode());
        packet.next_hop = next;
        self.send_ip(ctx, packet, msg.kind());
        true
    }

    fn broadcast_hello(&mut self, ctx: &mut NodeCtx<'_>, scope: u8) {
        if self.role == BithocRole::Router {
            return;
        }
        self.hello_seq += 1;
        let msg = AppMsg::Hello {
            peer: self.me,
            seq: self.hello_seq,
            scope,
            bitmap: self.have.clone(),
        };
        let mut packet = IpPacket::new(self.me, BROADCAST, Proto::Hello, msg.encode());
        packet.ttl = scope;
        packet.next_hop = BROADCAST;
        self.send_ip(ctx, packet, kinds::HELLO);
    }

    fn broadcast_dsdv(&mut self, ctx: &mut NodeCtx<'_>) {
        let dump = self.dsdv.full_dump();
        let mut packet = IpPacket::new(self.me, BROADCAST, Proto::Dsdv, Dsdv::encode(&dump));
        packet.ttl = 1;
        packet.next_hop = BROADCAST;
        self.send_ip(ctx, packet, kinds::DSDV_UPDATE);
    }

    fn refill(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.role != BithocRole::Downloader || self.completed_at.is_some() {
            return;
        }
        let now = ctx.now;
        // Rarity across close peers (Bithoc's RPF, paper §VI-B1).
        let close: Vec<&Bitmap> = self
            .peers
            .values()
            .filter(|p| p.close)
            .map(|p| &p.bitmap)
            .collect();
        if close.is_empty() && self.peers.is_empty() {
            return;
        }
        let rarity = dapes_core::rpf::rarity_counts(self.spec.total_pieces, close);
        let mut missing: Vec<usize> = self
            .have
            .iter_missing()
            .filter(|i| !self.outstanding.contains_key(&(*i as u32)))
            .filter(|i| {
                self.stalled_until
                    .get(&(*i as u32))
                    .is_none_or(|&until| until <= now)
            })
            .collect();
        missing.sort_by_key(|&i| std::cmp::Reverse(rarity.get(i).copied().unwrap_or(0)));

        for piece in missing {
            if self.outstanding.len() >= self.cfg.window {
                break;
            }
            // Prefer a close holder; fall back to any known (far) holder.
            let holder = self
                .peers
                .iter()
                .filter(|(_, p)| p.close && piece < p.bitmap.len() && p.bitmap.get(piece))
                .map(|(&id, _)| id)
                .next()
                .or_else(|| {
                    self.peers
                        .iter()
                        .filter(|(_, p)| piece < p.bitmap.len() && p.bitmap.get(piece))
                        .map(|(&id, _)| id)
                        .next()
                });
            let Some(holder) = holder else { continue };
            let piece = piece as u32;
            if self.unicast(ctx, holder, &AppMsg::Req { piece }) {
                self.outstanding.insert(piece, (holder, now, 0));
            } else {
                self.stalled_until
                    .insert(piece, now + SimDuration::from_secs(1));
            }
        }
    }

    fn on_app_msg(&mut self, ctx: &mut NodeCtx<'_>, src: u32, msg: AppMsg) {
        match msg {
            AppMsg::Hello {
                peer,
                scope,
                bitmap,
                ..
            } => {
                if peer == self.me || self.role == BithocRole::Router {
                    return;
                }
                let close = scope >= CLOSE_TTL.saturating_sub(1) && scope <= CLOSE_TTL;
                let entry = self.peers.entry(peer).or_insert(KnownPeer {
                    bitmap: bitmap.clone(),
                    last_heard: ctx.now,
                    close,
                });
                entry.bitmap = bitmap;
                entry.last_heard = ctx.now;
                // A hello that arrived within close scope marks closeness.
                entry.close = entry.close || close;
                self.refill(ctx);
            }
            AppMsg::Req { piece } => {
                if (piece as usize) < self.have.len() && self.have.get(piece as usize) {
                    let len = self.spec.piece_size as u32;
                    self.unicast(ctx, src, &AppMsg::DataSeg { piece, len });
                }
            }
            AppMsg::DataSeg { piece, .. } => {
                if self.role != BithocRole::Downloader {
                    return;
                }
                self.unicast(ctx, src, &AppMsg::Ack { piece });
                if (piece as usize) < self.have.len() && !self.have.get(piece as usize) {
                    self.have.set(piece as usize);
                    self.outstanding.remove(&piece);
                    if self.have.is_complete() && self.completed_at.is_none() {
                        self.completed_at = Some(ctx.now);
                    }
                    self.refill(ctx);
                }
            }
            AppMsg::Ack { .. } => {
                // Requester-driven reliability: data acks exist to model TCP
                // overhead; holders do not retransmit on their own.
            }
        }
    }

    fn forward(&mut self, ctx: &mut NodeCtx<'_>, mut packet: IpPacket, kind: FrameKind) {
        if packet.ttl <= 1 {
            return;
        }
        packet.ttl -= 1;
        if packet.dst == BROADCAST {
            // Scoped flood re-broadcast.
            packet.next_hop = BROADCAST;
            self.send_ip(ctx, packet, kind);
            return;
        }
        let Some(next) = self.dsdv.next_hop(packet.dst) else {
            return; // route break: drop (TCP above retransmits)
        };
        packet.next_hop = next;
        self.send_ip(ctx, packet, kind);
    }
}

impl NetStack for BithocPeer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.cfg.tick, TOKEN_TICK);
        let stagger = SimDuration::from_micros(
            ctx.rng()
                .gen_range(0..self.cfg.dsdv_period.as_micros().max(1)),
        );
        ctx.set_timer(stagger, TOKEN_DSDV);
        if self.role != BithocRole::Router {
            let hello_stagger = SimDuration::from_micros(
                ctx.rng()
                    .gen_range(0..self.cfg.hello_period.as_micros().max(1)),
            );
            ctx.set_timer(hello_stagger, TOKEN_HELLO);
            ctx.set_timer(self.cfg.far_hello_period, TOKEN_FAR_HELLO);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            TOKEN_TICK => {
                self.dsdv.expire_neighbors(ctx.now);
                if self.dsdv.take_dirty()
                    && ctx.now.since(self.last_triggered_dsdv) >= SimDuration::from_secs(1)
                {
                    self.last_triggered_dsdv = ctx.now;
                    self.broadcast_dsdv(ctx);
                }
                // Peer expiry.
                let timeout = self.cfg.peer_timeout;
                let now = ctx.now;
                self.peers.retain(|_, p| now.since(p.last_heard) <= timeout);
                // Request retransmissions.
                let retx_timeout = self.cfg.retx_timeout;
                let mut retx: Vec<(u32, u32)> = Vec::new();
                let mut gave_up: Vec<u32> = Vec::new();
                for (&piece, (holder, sent, tries)) in self.outstanding.iter_mut() {
                    if now.since(*sent) > retx_timeout {
                        if *tries >= 5 {
                            gave_up.push(piece);
                        } else {
                            *sent = now;
                            *tries += 1;
                            retx.push((piece, *holder));
                        }
                    }
                }
                for piece in gave_up {
                    self.outstanding.remove(&piece);
                    self.stalled_until
                        .insert(piece, now + SimDuration::from_secs(2));
                }
                for (piece, holder) in retx {
                    self.unicast(ctx, holder, &AppMsg::Req { piece });
                }
                self.refill(ctx);
                ctx.set_timer(self.cfg.tick, TOKEN_TICK);
            }
            TOKEN_DSDV => {
                self.broadcast_dsdv(ctx);
                ctx.set_timer(self.cfg.dsdv_period, TOKEN_DSDV);
            }
            TOKEN_HELLO => {
                self.broadcast_hello(ctx, CLOSE_TTL);
                ctx.set_timer(self.cfg.hello_period, TOKEN_HELLO);
            }
            TOKEN_FAR_HELLO => {
                self.broadcast_hello(ctx, FAR_TTL);
                ctx.set_timer(self.cfg.far_hello_period, TOKEN_FAR_HELLO);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        let Some(packet) = IpPacket::decode(&frame.payload) else {
            return;
        };
        // Link-layer neighbor liveness feeds DSDV.
        self.dsdv.hear_neighbor(frame.src.0, ctx.now);

        match packet.proto {
            Proto::Dsdv => {
                if let Some(ads) = Dsdv::decode(&packet.payload) {
                    self.dsdv.on_update(packet.src, &ads, ctx.now);
                }
            }
            Proto::Hello => {
                if let Some(msg) = AppMsg::decode(&packet.payload) {
                    // Scoped-flood duplicate suppression: relay only the
                    // first copy of each (origin, seq) flood.
                    let fresh = if let AppMsg::Hello { peer, seq, .. } = &msg {
                        let newest = self.hello_seen.entry(*peer).or_insert(0);
                        if *seq > *newest {
                            *newest = *seq;
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    };
                    self.on_app_msg(ctx, packet.src, msg);
                    if fresh && packet.ttl > 1 {
                        self.forward(ctx, packet, kinds::HELLO);
                    }
                }
            }
            Proto::Tcp => {
                if !packet.for_hop(NodeId(self.me)) {
                    return;
                }
                if packet.dst == self.me {
                    if let Some(msg) = AppMsg::decode(&packet.payload) {
                        self.on_app_msg(ctx, packet.src, msg);
                    }
                } else {
                    let kind = AppMsg::decode(&packet.payload)
                        .map(|m| m.kind())
                        .unwrap_or(kinds::TCP_CTRL);
                    self.forward(ctx, packet, kind);
                }
            }
            _ => {}
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.have.state_bytes()
            + self
                .peers
                .values()
                .map(|p| p.bitmap.state_bytes() + 24)
                .sum::<usize>()
            + self.outstanding.len() * 24
            + self.dsdv.reachable().count() * 16
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_msgs_round_trip() {
        let mut bm = Bitmap::new(10);
        bm.set(3);
        let msgs = vec![
            AppMsg::Hello {
                peer: 1,
                seq: 9,
                scope: 2,
                bitmap: bm,
            },
            AppMsg::Req { piece: 9 },
            AppMsg::DataSeg { piece: 9, len: 16 },
            AppMsg::Ack { piece: 9 },
        ];
        for m in msgs {
            let decoded = AppMsg::decode(&m.encode()).expect("round trip");
            // Compare discriminants and key fields via re-encode.
            assert_eq!(decoded.encode(), m.encode());
        }
        assert!(AppMsg::decode(&[]).is_none());
        assert!(AppMsg::decode(&[9, 9]).is_none());
    }

    #[test]
    fn data_segment_carries_piece_payload_weight() {
        let m = AppMsg::DataSeg {
            piece: 0,
            len: 1024,
        };
        assert!(m.encode().len() >= 1024);
    }

    #[test]
    fn seed_starts_complete_downloader_empty() {
        let spec = SwarmSpec {
            total_pieces: 8,
            pieces_per_file: 4,
            piece_size: 16,
        };
        let seed = BithocPeer::new(0, BithocRole::Seed, spec.clone(), BithocConfig::default());
        assert_eq!(seed.progress(), 1.0);
        assert!(
            !seed.is_complete(),
            "seeds do not report download completion"
        );
        let dl = BithocPeer::new(1, BithocRole::Downloader, spec, BithocConfig::default());
        assert_eq!(dl.progress(), 0.0);
    }
}
