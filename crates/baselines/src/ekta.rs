//! Ekta: a DHT substrate integrated with DSR for MANETs (Pucha, Das & Hu),
//! the reactive-routing baseline of the paper's Fig. 10.
//!
//! Peers form a Pastry-style DHT: each data object (here, a file of the
//! collection) maps to the member whose hashed id is numerically closest to
//! the object key. Holders publish availability records to the responsible
//! node; downloaders look objects up there, then fetch pieces from the
//! returned holders over UDP with requester-driven retransmissions. All
//! unicast rides DSR source routes, discovered on demand via RREQ floods.
//!
//! Simplification (documented in DESIGN.md): DHT membership is static — the
//! set of participating peer ids is configured up front, as Ekta's node
//! join/leave protocol is orthogonal to the file-sharing costs measured in
//! the paper's evaluation.

use crate::dsr::{Dsr, DsrMessage, RreqAction};
use crate::ip::{IpPacket, Proto, BROADCAST};
use crate::swarm::{kinds, SwarmSpec};
use dapes_core::bitmap::Bitmap;
use dapes_crypto::sha256::sha256;
use dapes_netsim::node::{NetStack, NodeCtx, NodeId};
use dapes_netsim::radio::{Frame, FrameKind};
use dapes_netsim::time::{SimDuration, SimTime};
use rand::Rng;
use std::any::Any;
use std::collections::BTreeMap;

const TOKEN_TICK: u64 = 1;
const TOKEN_PUBLISH: u64 = 2;

/// What an Ekta node does in the swarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EktaRole {
    /// Has every piece from the start.
    Seed,
    /// Downloads the collection.
    Downloader,
    /// Forwards packets (DSR relay) only.
    Router,
}

/// The DHT key of a file: a hash of its index, mapped onto the id ring.
fn file_key(file: usize) -> u32 {
    let d = sha256(&(file as u64).to_be_bytes());
    u32::from_be_bytes(d.as_bytes()[..4].try_into().expect("4 bytes"))
}

/// The `k` members responsible for a key: numerically closest hashed ids
/// (Pastry replicates records across the leaf set).
fn responsible_k(members: &[u32], key: u32, k: usize) -> Vec<u32> {
    let mut sorted: Vec<u32> = members.to_vec();
    sorted.sort_by_key(|&m| node_key(m).abs_diff(key));
    sorted.truncate(k);
    sorted
}

/// A member's position on the ring.
fn node_key(member: u32) -> u32 {
    let d = sha256(&(member as u64 ^ 0xdead_beef).to_be_bytes());
    u32::from_be_bytes(d.as_bytes()[..4].try_into().expect("4 bytes"))
}

#[derive(Clone, Debug)]
enum AppMsg {
    Publish { file: u32, holder: u32 },
    Lookup { file: u32, requester: u32 },
    LookupResp { file: u32, holders: Vec<u32> },
    PieceReq { piece: u32 },
    PieceData { piece: u32, len: u32 },
}

impl AppMsg {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AppMsg::Publish { file, holder } => {
                out.push(0);
                out.extend_from_slice(&file.to_be_bytes());
                out.extend_from_slice(&holder.to_be_bytes());
            }
            AppMsg::Lookup { file, requester } => {
                out.push(1);
                out.extend_from_slice(&file.to_be_bytes());
                out.extend_from_slice(&requester.to_be_bytes());
            }
            AppMsg::LookupResp { file, holders } => {
                out.push(2);
                out.extend_from_slice(&file.to_be_bytes());
                out.extend_from_slice(&(holders.len() as u16).to_be_bytes());
                for h in holders {
                    out.extend_from_slice(&h.to_be_bytes());
                }
            }
            AppMsg::PieceReq { piece } => {
                out.push(3);
                out.extend_from_slice(&piece.to_be_bytes());
            }
            AppMsg::PieceData { piece, len } => {
                out.push(4);
                out.extend_from_slice(&piece.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(&vec![0u8; *len as usize]);
            }
        }
        out
    }

    fn decode(wire: &[u8]) -> Option<Self> {
        let get = |r: std::ops::Range<usize>| -> Option<u32> {
            Some(u32::from_be_bytes(wire.get(r)?.try_into().ok()?))
        };
        match wire.first()? {
            0 => Some(AppMsg::Publish {
                file: get(1..5)?,
                holder: get(5..9)?,
            }),
            1 => Some(AppMsg::Lookup {
                file: get(1..5)?,
                requester: get(5..9)?,
            }),
            2 => {
                let file = get(1..5)?;
                let n = u16::from_be_bytes(wire.get(5..7)?.try_into().ok()?) as usize;
                let mut holders = Vec::with_capacity(n);
                for i in 0..n {
                    holders.push(get(7 + i * 4..11 + i * 4)?);
                }
                Some(AppMsg::LookupResp { file, holders })
            }
            3 => Some(AppMsg::PieceReq { piece: get(1..5)? }),
            4 => Some(AppMsg::PieceData {
                piece: get(1..5)?,
                len: get(5..9)?,
            }),
            _ => None,
        }
    }

    fn kind(&self) -> FrameKind {
        match self {
            AppMsg::Publish { .. } | AppMsg::Lookup { .. } | AppMsg::LookupResp { .. } => {
                kinds::DHT
            }
            AppMsg::PieceReq { .. } => kinds::PIECE_REQ,
            AppMsg::PieceData { .. } => kinds::PIECE_DATA,
        }
    }
}

/// Configuration knobs for Ekta.
#[derive(Clone, Debug)]
pub struct EktaConfig {
    /// Outstanding piece requests.
    pub window: usize,
    /// Request retransmission timeout.
    pub retx_timeout: SimDuration,
    /// Lookup retry period while holders are unknown.
    pub lookup_period: SimDuration,
    /// Holder re-publish period.
    pub publish_period: SimDuration,
    /// Housekeeping tick.
    pub tick: SimDuration,
    /// Random jitter window for transmissions.
    pub tx_window: SimDuration,
    /// How long a queued packet waits for route discovery before dropping.
    pub route_wait: SimDuration,
}

impl Default for EktaConfig {
    fn default() -> Self {
        EktaConfig {
            window: 8,
            retx_timeout: SimDuration::from_millis(700),
            lookup_period: SimDuration::from_secs(2),
            publish_period: SimDuration::from_secs(8),
            tick: SimDuration::from_millis(100),
            tx_window: SimDuration::from_millis(20),
            route_wait: SimDuration::from_secs(6),
        }
    }
}

/// An Ekta node (downloader, seed, or DSR relay).
pub struct EktaPeer {
    me: u32,
    cfg: EktaConfig,
    role: EktaRole,
    spec: SwarmSpec,
    dsr: Dsr,
    members: Vec<u32>,
    have: Bitmap,
    /// File -> known holders (from lookup responses).
    holders: BTreeMap<u32, Vec<u32>>,
    /// Records stored at this node as the responsible DHT member.
    stored_records: BTreeMap<u32, Vec<u32>>,
    /// Outstanding piece requests: piece -> (holder, sent, retries).
    outstanding: BTreeMap<u32, (u32, SimTime, u32)>,
    /// Last lookup time and consecutive failures per file (backoff).
    lookup_sent: BTreeMap<u32, (SimTime, u32)>,
    /// Packets awaiting a route: dst -> (expiry, queued messages).
    route_queue: BTreeMap<u32, Vec<(SimTime, AppMsg)>>,
    /// Discovery state per destination: last RREQ time and consecutive
    /// unanswered attempts (exponential backoff against flood storms).
    discovering: BTreeMap<u32, (SimTime, u32)>,
    /// Publish rounds completed, for period escalation.
    publish_rounds: u32,
    completed_at: Option<SimTime>,
}

impl EktaPeer {
    /// Creates a node. `members` lists every DHT-participating peer id.
    pub fn new(
        me: u32,
        role: EktaRole,
        spec: SwarmSpec,
        members: Vec<u32>,
        cfg: EktaConfig,
    ) -> Self {
        let have = match role {
            EktaRole::Seed => Bitmap::full(spec.total_pieces),
            _ => Bitmap::new(spec.total_pieces),
        };
        EktaPeer {
            me,
            cfg,
            role,
            spec,
            dsr: Dsr::new(me),
            members,
            have,
            holders: BTreeMap::new(),
            stored_records: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            lookup_sent: BTreeMap::new(),
            route_queue: BTreeMap::new(),
            discovering: BTreeMap::new(),
            publish_rounds: 0,
            completed_at: None,
        }
    }

    /// Completion time, once every piece arrived.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Whether the download finished.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Download progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.have.fraction_set()
    }

    fn jitter(&self, ctx: &mut NodeCtx<'_>) -> SimDuration {
        SimDuration::from_micros(
            ctx.rng()
                .gen_range(0..self.cfg.tx_window.as_micros().max(1)),
        )
    }

    fn send_ip(&mut self, ctx: &mut NodeCtx<'_>, packet: IpPacket, kind: FrameKind) {
        let delay = self.jitter(ctx);
        ctx.send_frame(packet.encode(), kind, 0, delay);
    }

    /// Sends `msg` to `dst` over a DSR route, starting discovery (and
    /// queueing the message) when no route is cached.
    fn unicast(&mut self, ctx: &mut NodeCtx<'_>, dst: u32, msg: AppMsg) {
        if dst == self.me {
            self.on_app_msg(ctx, self.me, msg);
            return;
        }
        match self.dsr.route(dst).cloned() {
            Some(relays) => {
                // Full DSR source route travels in the packet so relays need
                // no routing state of their own.
                let mut packet = IpPacket::new(self.me, dst, Proto::Udp, msg.encode());
                packet.next_hop = relays.first().copied().unwrap_or(dst);
                packet.route = relays.get(1..).map(<[u32]>::to_vec).unwrap_or_default();
                self.send_ip(ctx, packet, msg.kind());
            }
            None => {
                self.route_queue
                    .entry(dst)
                    .or_default()
                    .push((ctx.now + self.cfg.route_wait, msg));
                self.maybe_discover(ctx, dst);
            }
        }
    }

    fn maybe_discover(&mut self, ctx: &mut NodeCtx<'_>, dst: u32) {
        let (last, fails) = self
            .discovering
            .get(&dst)
            .copied()
            .unwrap_or((SimTime::ZERO, 0));
        // Exponential backoff: 4 s doubling to 64 s per unanswered attempt.
        let interval = SimDuration::from_secs(4u64 << fails.min(4) as u64);
        if (fails > 0 || last > SimTime::ZERO) && ctx.now.since(last) < interval {
            return;
        }
        self.discovering
            .insert(dst, (ctx.now, fails.saturating_add(1)));
        let rreq = self.dsr.start_discovery(dst);
        let mut packet = IpPacket::new(self.me, BROADCAST, Proto::Dsr, rreq.encode());
        packet.ttl = 8;
        packet.next_hop = BROADCAST;
        self.send_ip(ctx, packet, kinds::RREQ);
    }

    fn flush_route_queue(&mut self, ctx: &mut NodeCtx<'_>, dst: u32) {
        let Some(queued) = self.route_queue.remove(&dst) else {
            return;
        };
        for (expiry, msg) in queued {
            if expiry > ctx.now {
                self.unicast(ctx, dst, msg);
            }
        }
    }

    fn publish_files(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.role == EktaRole::Router {
            return;
        }
        // Announce every fully held file to its responsible member.
        for file in 0..self.spec.file_count() {
            let range = self.spec.file_range(file);
            let full = range
                .clone()
                .all(|p| p < self.have.len() && self.have.get(p));
            if !full {
                continue;
            }
            for resp in responsible_k(&self.members, file_key(file), 3) {
                let msg = AppMsg::Publish {
                    file: file as u32,
                    holder: self.me,
                };
                self.unicast(ctx, resp, msg);
            }
        }
    }

    fn refill(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.role != EktaRole::Downloader || self.completed_at.is_some() {
            return;
        }
        let now = ctx.now;
        // Look up files we have no holders for (rate limited).
        for file in 0..self.spec.file_count() {
            let range = self.spec.file_range(file);
            let missing_any = range.clone().any(|p| !self.have.get(p));
            if !missing_any || self.holders.contains_key(&(file as u32)) {
                continue;
            }
            let (last, fails) = self
                .lookup_sent
                .get(&(file as u32))
                .copied()
                .unwrap_or((SimTime::ZERO, 0));
            // Lookup backoff: base period doubling to 16x while unanswered.
            let period =
                SimDuration::from_micros(self.cfg.lookup_period.as_micros() << fails.min(4) as u64);
            if last > SimTime::ZERO && now.since(last) < period {
                continue;
            }
            self.lookup_sent
                .insert(file as u32, (now, fails.saturating_add(1)));
            // Rotate across the replica set as attempts fail.
            let replicas = responsible_k(&self.members, file_key(file), 3);
            if replicas.is_empty() {
                continue;
            }
            let resp = replicas[fails as usize % replicas.len()];
            let msg = AppMsg::Lookup {
                file: file as u32,
                requester: self.me,
            };
            self.unicast(ctx, resp, msg);
        }
        // Request pieces from known holders.
        let mut missing: Vec<usize> = self
            .have
            .iter_missing()
            .filter(|p| !self.outstanding.contains_key(&(*p as u32)))
            .collect();
        missing.sort_unstable();
        for piece in missing {
            if self.outstanding.len() >= self.cfg.window {
                break;
            }
            let file = self.spec.file_of(piece) as u32;
            let Some(holders) = self.holders.get(&file) else {
                continue;
            };
            if holders.is_empty() {
                continue;
            }
            // Prefer holders with short known routes (Pastry's locality
            // property); break ties randomly to spread load.
            let tie = ctx.rng().gen_range(0..holders.len());
            let holder = holders
                .iter()
                .enumerate()
                .min_by_key(|(i, &h)| {
                    let dist = self.dsr.route(h).map_or(usize::MAX, Vec::len);
                    (dist, (*i + tie) % holders.len())
                })
                .map(|(_, &h)| h)
                .expect("nonempty");
            let piece = piece as u32;
            self.outstanding.insert(piece, (holder, now, 0));
            self.unicast(ctx, holder, AppMsg::PieceReq { piece });
        }
    }

    fn on_app_msg(&mut self, ctx: &mut NodeCtx<'_>, src: u32, msg: AppMsg) {
        match msg {
            AppMsg::Publish { file, holder } => {
                let entry = self.stored_records.entry(file).or_default();
                if !entry.contains(&holder) {
                    entry.push(holder);
                }
            }
            AppMsg::Lookup { file, requester } => {
                let holders = self.stored_records.get(&file).cloned().unwrap_or_default();
                if !holders.is_empty() {
                    self.unicast(ctx, requester, AppMsg::LookupResp { file, holders });
                }
            }
            AppMsg::LookupResp { file, holders } => {
                if !holders.is_empty() {
                    self.holders.insert(file, holders);
                    self.lookup_sent.remove(&file); // backoff resets
                    self.refill(ctx);
                }
            }
            AppMsg::PieceReq { piece } => {
                if (piece as usize) < self.have.len() && self.have.get(piece as usize) {
                    let len = self.spec.piece_size as u32;
                    self.unicast(ctx, src, AppMsg::PieceData { piece, len });
                }
            }
            AppMsg::PieceData { piece, .. } => {
                if self.role != EktaRole::Downloader {
                    return;
                }
                if (piece as usize) < self.have.len() && !self.have.get(piece as usize) {
                    self.have.set(piece as usize);
                    self.outstanding.remove(&piece);
                    if self.have.is_complete() && self.completed_at.is_none() {
                        self.completed_at = Some(ctx.now);
                    }
                    self.refill(ctx);
                } else {
                    self.outstanding.remove(&piece);
                }
            }
        }
    }

    fn on_dsr(&mut self, ctx: &mut NodeCtx<'_>, packet: &IpPacket) {
        let Some(msg) = DsrMessage::decode(&packet.payload) else {
            return;
        };
        match msg {
            DsrMessage::Rreq {
                id,
                origin,
                target,
                path,
            } => match self.dsr.on_rreq(id, origin, target, &path) {
                RreqAction::Drop => {}
                RreqAction::Reply {
                    origin,
                    path,
                    return_path,
                } => {
                    let rrep = DsrMessage::Rrep {
                        origin,
                        target: self.me,
                        path,
                        return_path: return_path.clone(),
                    };
                    let next = return_path.first().copied().unwrap_or(origin);
                    let mut p = IpPacket::new(self.me, origin, Proto::Dsr, rrep.encode());
                    p.next_hop = next;
                    self.send_ip(ctx, p, kinds::RREP);
                }
                RreqAction::Forward { path } => {
                    if packet.ttl > 1 {
                        let rreq = DsrMessage::Rreq {
                            id,
                            origin,
                            target,
                            path,
                        };
                        let mut p = IpPacket::new(origin, BROADCAST, Proto::Dsr, rreq.encode());
                        p.ttl = packet.ttl - 1;
                        p.next_hop = BROADCAST;
                        self.send_ip(ctx, p, kinds::RREQ);
                    }
                }
            },
            DsrMessage::Rrep {
                origin,
                target,
                path,
                mut return_path,
            } => {
                if !packet.for_hop(NodeId(self.me)) {
                    return;
                }
                if origin == self.me {
                    // Discovery complete: reset the backoff.
                    self.dsr.learn_route_at(target, path, ctx.now);
                    self.discovering.remove(&target);
                    self.flush_route_queue(ctx, target);
                    return;
                }
                // Relay toward the origin along the remaining return path.
                // Our own position is the head of the return path.
                if return_path.first() == Some(&self.me) {
                    return_path.remove(0);
                }
                let next = return_path.first().copied().unwrap_or(origin);
                let rrep = DsrMessage::Rrep {
                    origin,
                    target,
                    path,
                    return_path,
                };
                let mut p = IpPacket::new(packet.src, origin, Proto::Dsr, rrep.encode());
                p.ttl = packet.ttl.saturating_sub(1).max(1);
                p.next_hop = next;
                self.send_ip(ctx, p, kinds::RREP);
            }
            DsrMessage::Rerr { from, to } => {
                self.dsr.on_link_break(from, to);
            }
        }
    }

    fn forward_udp(&mut self, ctx: &mut NodeCtx<'_>, mut packet: IpPacket) {
        if packet.ttl <= 1 {
            return;
        }
        packet.ttl -= 1;
        let kind = AppMsg::decode(&packet.payload)
            .map(|m| m.kind())
            .unwrap_or(kinds::DHT);
        // Pop the next relay off the source route; an exhausted route means
        // we are the last relay before the destination.
        let next = if packet.route.is_empty() {
            packet.dst
        } else {
            packet.route.remove(0)
        };
        packet.next_hop = next;
        self.send_ip(ctx, packet, kind);
    }
}

impl NetStack for EktaPeer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.cfg.tick, TOKEN_TICK);
        if self.role != EktaRole::Router {
            let stagger = SimDuration::from_micros(
                ctx.rng()
                    .gen_range(0..self.cfg.publish_period.as_micros().max(1)),
            );
            ctx.set_timer(stagger, TOKEN_PUBLISH);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            TOKEN_TICK => {
                let now = ctx.now;
                // Mobile source routes rot; age them out.
                self.dsr.expire_routes(now, SimDuration::from_secs(15));
                // Retransmissions.
                let retx_timeout = self.cfg.retx_timeout;
                let mut retx: Vec<(u32, u32)> = Vec::new();
                let mut gave_up: Vec<u32> = Vec::new();
                for (&piece, (holder, sent, tries)) in self.outstanding.iter_mut() {
                    if now.since(*sent) > retx_timeout {
                        if *tries >= 5 {
                            gave_up.push(piece);
                        } else {
                            *sent = now;
                            *tries += 1;
                            retx.push((piece, *holder));
                        }
                    }
                }
                for piece in gave_up {
                    // Holder unreachable: forget its route and re-look-up
                    // the file.
                    if let Some((holder, _, _)) = self.outstanding.remove(&piece) {
                        self.dsr.forget(holder);
                    }
                    let file = self.spec.file_of(piece as usize) as u32;
                    self.holders.remove(&file);
                }
                for (piece, holder) in retx {
                    self.unicast(ctx, holder, AppMsg::PieceReq { piece });
                }
                // Drop stale route-queue entries.
                self.route_queue.retain(|_, q| {
                    q.retain(|(exp, _)| *exp > now);
                    !q.is_empty()
                });
                self.refill(ctx);
                ctx.set_timer(self.cfg.tick, TOKEN_TICK);
            }
            TOKEN_PUBLISH => {
                self.publish_files(ctx);
                // Escalate the republish period: steady-state holders do
                // not need to re-announce every few seconds.
                self.publish_rounds = self.publish_rounds.saturating_add(1);
                let period = SimDuration::from_micros(
                    self.cfg.publish_period.as_micros() << self.publish_rounds.min(3) as u64,
                );
                ctx.set_timer(period, TOKEN_PUBLISH);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        let Some(packet) = IpPacket::decode(&frame.payload) else {
            return;
        };
        match packet.proto {
            Proto::Dsr => self.on_dsr(ctx, &packet),
            Proto::Udp => {
                if !packet.for_hop(NodeId(self.me)) {
                    return;
                }
                if packet.dst == self.me {
                    if let Some(msg) = AppMsg::decode(&packet.payload) {
                        // The sender reached us, so the symmetric path is
                        // evidently alive: keep its route fresh.
                        self.dsr.touch(packet.src, ctx.now);
                        self.on_app_msg(ctx, packet.src, msg);
                    }
                } else {
                    self.forward_udp(ctx, packet);
                }
            }
            _ => {}
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.have.state_bytes()
            + self.holders.len() * 24
            + self.stored_records.len() * 24
            + self.dsr.cache_len() * 32
            + self.outstanding.len() * 24
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_msgs_round_trip() {
        let msgs = vec![
            AppMsg::Publish { file: 1, holder: 2 },
            AppMsg::Lookup {
                file: 1,
                requester: 3,
            },
            AppMsg::LookupResp {
                file: 1,
                holders: vec![2, 9],
            },
            AppMsg::PieceReq { piece: 77 },
            AppMsg::PieceData { piece: 77, len: 32 },
        ];
        for m in msgs {
            let decoded = AppMsg::decode(&m.encode()).expect("round trip");
            assert_eq!(decoded.encode(), m.encode());
        }
        assert!(AppMsg::decode(&[]).is_none());
        assert!(AppMsg::decode(&[9]).is_none());
    }

    #[test]
    fn responsibility_is_deterministic_and_replicated() {
        let members = vec![1u32, 2, 3, 4, 5];
        for file in 0..20 {
            let r1 = responsible_k(&members, file_key(file), 3);
            let r2 = responsible_k(&members, file_key(file), 3);
            assert_eq!(r1, r2);
            assert_eq!(r1.len(), 3);
            assert!(r1.iter().all(|m| members.contains(m)));
        }
        assert!(responsible_k(&[], 5, 3).is_empty());
        assert_eq!(responsible_k(&[7], 5, 3), vec![7], "k capped at membership");
    }

    #[test]
    fn keys_spread_across_members() {
        let members: Vec<u32> = (0..10).collect();
        let mut hit = std::collections::HashSet::new();
        for file in 0..100 {
            hit.insert(responsible_k(&members, file_key(file), 1)[0]);
        }
        assert!(
            hit.len() >= 4,
            "keys should spread over members, got {}",
            hit.len()
        );
    }

    #[test]
    fn seed_full_downloader_empty() {
        let spec = SwarmSpec {
            total_pieces: 8,
            pieces_per_file: 4,
            piece_size: 16,
        };
        let seed = EktaPeer::new(
            0,
            EktaRole::Seed,
            spec.clone(),
            vec![0, 1],
            EktaConfig::default(),
        );
        assert_eq!(seed.progress(), 1.0);
        let dl = EktaPeer::new(
            1,
            EktaRole::Downloader,
            spec,
            vec![0, 1],
            EktaConfig::default(),
        );
        assert_eq!(dl.progress(), 0.0);
    }

    #[test]
    fn piece_data_carries_payload_weight() {
        let m = AppMsg::PieceData {
            piece: 0,
            len: 1024,
        };
        assert!(m.encode().len() >= 1024);
    }
}
