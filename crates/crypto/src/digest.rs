//! The 32-byte digest type shared by all primitives in this crate.

use std::fmt;

/// A 256-bit digest, the output of [`crate::sha256::sha256`] and the node
/// label type of [`crate::merkle::MerkleTree`].
///
/// # Examples
///
/// ```
/// use dapes_crypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as a sentinel for "no digest yet".
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Parses a digest from a byte slice.
    ///
    /// Returns `None` unless `bytes` is exactly 32 bytes long.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest(arr))
    }

    /// A short 8-hex-character prefix, handy for log lines and name
    /// components like the paper's `metadata-file/A23D1F9B`.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Truncates the digest to `n` bytes (used for compact name components).
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn truncated(&self, n: usize) -> Vec<u8> {
        assert!(n <= 32, "digest is only 32 bytes");
        self.0[..n].to_vec()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_all_zero() {
        assert!(Digest::ZERO.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_slice_rejects_wrong_length() {
        assert!(Digest::from_slice(&[0u8; 31]).is_none());
        assert!(Digest::from_slice(&[0u8; 33]).is_none());
        assert!(Digest::from_slice(&[0u8; 32]).is_some());
    }

    #[test]
    fn display_is_64_hex_chars() {
        let d = Digest::from_bytes([0xab; 32]);
        let s = d.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    fn short_hex_is_prefix_of_display() {
        let d = Digest::from_bytes([0x12; 32]);
        assert!(d.to_string().starts_with(&d.short_hex()));
        assert_eq!(d.short_hex().len(), 8);
    }

    #[test]
    fn truncated_returns_prefix() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let d = Digest::from_bytes(bytes);
        assert_eq!(d.truncated(4), vec![0, 1, 2, 3]);
        assert_eq!(d.truncated(0), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "digest is only 32 bytes")]
    fn truncated_panics_past_32() {
        Digest::ZERO.truncated(33);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Digest::ZERO).is_empty());
    }

    #[test]
    fn round_trips_through_bytes() {
        let d = Digest::from_bytes([7u8; 32]);
        assert_eq!(Digest::from_bytes(d.into_bytes()), d);
        assert_eq!(Digest::from_slice(d.as_ref()), Some(d));
    }
}
