//! Signing under shared local trust anchors.
//!
//! The paper assumes (§III) that peers "have common 'local' trust anchors
//! established" and use them to decide whether the collection producer is
//! trusted. We model the anchor as a shared secret from which per-producer
//! keys are derived; signatures are HMAC-SHA256 tags under the producer key.
//! Any peer holding the anchor can verify any producer's signature — exactly
//! the verification capability the protocol requires — without big-integer
//! public-key arithmetic the protocol never observes. The substitution is
//! recorded in `DESIGN.md`.
//!
//! Key derivation is two-step: `producer name → key id → signing key`. Only
//! the key id travels on the wire, and verification needs nothing but the
//! anchor and the key id, mirroring how NDN verifiers locate a key by its
//! KeyLocator. All signing flows through the [`Signer`]/[`Verifier`] traits,
//! so a real asymmetric scheme can be dropped in without touching protocol
//! code.
//!
//! # The advert-signing flow
//!
//! The authenticated control plane (`dapes-core`'s `auth` module) builds on
//! these primitives. A producer's discovery reply or bitmap advertisement
//! is *sealed*: the plaintext advert is suffixed with a monotonic
//! microsecond timestamp and then signed with the producer's
//! [`ProducerKey`] — `sealed = advert ‖ timestamp ‖ Signature`. A receiver
//! derives the claimed producer's key id from the peer id carried inside
//! the advert ([`TrustAnchor::key_id_for`]), recomputes the tag over
//! `advert ‖ timestamp`, and compares in constant time. Only then does the
//! timestamp feed the per-producer replay guard: a stamp at or below the
//! producer's high-water mark — or older than the replay window — is
//! rejected as a replay even though its signature is genuine.
//!
//! # Caveat: a shared anchor is a shared secret
//!
//! Because the anchor is symmetric, *any* holder of the anchor can mint a
//! valid signature for *any* producer name — the scheme authenticates
//! "someone inside the trust domain", not a specific peer. That matches
//! the paper's threat model (the attacker is outside the common local
//! trust anchor), and the adversarial suite's forger accordingly signs
//! under a *rogue* anchor and is rejected. An insider attacker would
//! require the asymmetric drop-in replacement behind [`Signer`] /
//! [`Verifier`]; nothing in the protocol code would change.

use crate::digest::Digest;
use crate::hmac::{hmac_sha256, verify_tag};
use crate::sha256::sha256;
use std::fmt;
use std::sync::Arc;

/// A detached signature: the signing key's identifier plus the tag bytes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Identifies the producer key that made this signature.
    pub key_id: KeyId,
    /// The 32-byte tag.
    pub tag: Digest,
}

impl Signature {
    /// Size on the wire: key id + tag.
    pub const WIRE_SIZE: usize = 8 + 32;

    /// Serializes to bytes for embedding in a packet's SignatureValue.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        out.extend_from_slice(&self.key_id.0.to_be_bytes());
        out.extend_from_slice(self.tag.as_bytes());
        out
    }

    /// Parses a signature serialized by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::WIRE_SIZE {
            return None;
        }
        let key_id = KeyId(u64::from_be_bytes(bytes[..8].try_into().ok()?));
        let tag = Digest::from_slice(&bytes[8..])?;
        Some(Signature { key_id, tag })
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(key={:x}, tag={})",
            self.key_id.0,
            self.tag.short_hex()
        )
    }
}

/// Compact identifier of a producer key, carried on the wire in place of a
/// full NDN KeyLocator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyId({:016x})", self.0)
    }
}

/// Anything that can produce signatures over byte strings.
pub trait Signer {
    /// Signs `message`, returning a detached signature.
    fn sign(&self, message: &[u8]) -> Signature;
    /// The key identifier that will appear in produced signatures.
    fn key_id(&self) -> KeyId;
}

/// Anything that can check signatures over byte strings.
pub trait Verifier {
    /// Returns `true` when `signature` is a valid signature of `message`.
    fn verify_signature(&self, message: &[u8], signature: &Signature) -> bool;
}

/// A shared local trust anchor from which per-producer keys derive.
///
/// # Examples
///
/// ```
/// use dapes_crypto::signing::{Signer, TrustAnchor, Verifier};
///
/// let anchor = TrustAnchor::from_seed(b"rural-area");
/// let producer = anchor.keypair("resident-a");
/// let sig = producer.sign(b"collection metadata");
/// assert!(anchor.verify("resident-a", b"collection metadata", &sig));
/// assert!(anchor.verify_signature(b"collection metadata", &sig));
/// assert!(!anchor.verify_signature(b"tampered", &sig));
/// ```
#[derive(Clone)]
pub struct TrustAnchor {
    secret: Arc<[u8; 32]>,
}

impl fmt::Debug for TrustAnchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "TrustAnchor(..)")
    }
}

impl TrustAnchor {
    /// Derives an anchor from an arbitrary seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        TrustAnchor {
            secret: Arc::new(sha256(seed).into_bytes()),
        }
    }

    /// The key id a given producer name maps to.
    pub fn key_id_for(&self, producer_name: &str) -> KeyId {
        let name_key = hmac_sha256(&self.secret[..], producer_name.as_bytes());
        let d = sha256(name_key.as_bytes());
        KeyId(u64::from_be_bytes(
            d.as_bytes()[..8].try_into().expect("8 bytes"),
        ))
    }

    /// Derives the signing key bound to a key id.
    fn signing_key(&self, key_id: KeyId) -> [u8; 32] {
        hmac_sha256(&self.secret[..], &key_id.0.to_be_bytes()).into_bytes()
    }

    /// Creates the signing half for a named producer.
    pub fn keypair(&self, producer_name: &str) -> ProducerKey {
        let key_id = self.key_id_for(producer_name);
        ProducerKey {
            key: self.signing_key(key_id),
            key_id,
            name: producer_name.to_owned(),
        }
    }

    /// Verifies a signature claimed to be from `producer_name`.
    ///
    /// This checks both that the signature's key id is the one derived from
    /// `producer_name` (producer authentication) and that the tag verifies
    /// (integrity).
    pub fn verify(&self, producer_name: &str, message: &[u8], signature: &Signature) -> bool {
        self.key_id_for(producer_name) == signature.key_id
            && self.verify_signature(message, signature)
    }
}

impl Verifier for TrustAnchor {
    /// Verifies a signature using only the key id it carries.
    fn verify_signature(&self, message: &[u8], signature: &Signature) -> bool {
        let key = self.signing_key(signature.key_id);
        verify_tag(&hmac_sha256(&key, message), &signature.tag)
    }
}

/// The signing half handed to a collection producer.
#[derive(Clone)]
pub struct ProducerKey {
    key: [u8; 32],
    key_id: KeyId,
    name: String,
}

impl fmt::Debug for ProducerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProducerKey({}, {:?})", self.name, self.key_id)
    }
}

impl ProducerKey {
    /// The producer's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Signer for ProducerKey {
    fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            key_id: self.key_id,
            tag: hmac_sha256(&self.key, message),
        }
    }

    fn key_id(&self) -> KeyId {
        self.key_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_signature_verifies_with_name() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let key = anchor.keypair("alice");
        let sig = key.sign(b"hello");
        assert!(anchor.verify("alice", b"hello", &sig));
    }

    #[test]
    fn name_free_verification_succeeds() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let sig = anchor.keypair("alice").sign(b"metadata");
        assert!(anchor.verify_signature(b"metadata", &sig));
        assert!(!anchor.verify_signature(b"other", &sig));
    }

    #[test]
    fn wrong_name_or_message_fails() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let key = anchor.keypair("alice");
        let sig = key.sign(b"hello");
        assert!(!anchor.verify("bob", b"hello", &sig));
        assert!(!anchor.verify("alice", b"hellO", &sig));
    }

    #[test]
    fn different_anchors_do_not_cross_verify() {
        let a1 = TrustAnchor::from_seed(b"one");
        let a2 = TrustAnchor::from_seed(b"two");
        let sig = a1.keypair("alice").sign(b"m");
        assert!(!a2.verify("alice", b"m", &sig));
        assert!(!a2.verify_signature(b"m", &sig));
    }

    #[test]
    fn distinct_producers_have_distinct_key_ids() {
        let anchor = TrustAnchor::from_seed(b"seed");
        assert_ne!(anchor.key_id_for("alice"), anchor.key_id_for("bob"));
        assert_eq!(anchor.keypair("alice").key_id(), anchor.key_id_for("alice"));
    }

    #[test]
    fn tampered_key_id_fails() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let mut sig = anchor.keypair("alice").sign(b"m");
        sig.key_id = KeyId(sig.key_id.0 ^ 1);
        assert!(!anchor.verify_signature(b"m", &sig));
        assert!(!anchor.verify("alice", b"m", &sig));
    }

    #[test]
    fn tampered_tag_fails() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let mut sig = anchor.keypair("alice").sign(b"m");
        let mut bytes = sig.tag.into_bytes();
        bytes[0] ^= 1;
        sig.tag = Digest::from_bytes(bytes);
        assert!(!anchor.verify("alice", b"m", &sig));
    }

    #[test]
    fn signature_bytes_round_trip() {
        let anchor = TrustAnchor::from_seed(b"seed");
        let sig = anchor.keypair("p").sign(b"x");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), Signature::WIRE_SIZE);
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
        assert!(Signature::from_bytes(&bytes[..39]).is_none());
        assert!(Signature::from_bytes(&[]).is_none());
    }

    #[test]
    fn debug_never_prints_secret() {
        let anchor = TrustAnchor::from_seed(b"super-secret");
        let dbg = format!("{anchor:?}");
        assert!(!dbg.contains("super"));
    }
}
