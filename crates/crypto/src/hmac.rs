//! HMAC-SHA256 (RFC 2104), the MAC behind the trust-anchor signature scheme.

use crate::digest::Digest;
use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are first hashed, per RFC 2104.
///
/// # Examples
///
/// ```
/// use dapes_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     tag.to_string(),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Constant-time equality of two digests.
///
/// The simulator is not attacker-facing, but verification code should still
/// model the real discipline: compare the whole tag regardless of where the
/// first mismatch occurs.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_string(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_string(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_string(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_differ() {
        let a = hmac_sha256(b"key-a", b"msg");
        let b = hmac_sha256(b"key-b", b"msg");
        assert_ne!(a, b);
    }

    #[test]
    fn different_messages_differ() {
        let a = hmac_sha256(b"key", b"msg-a");
        let b = hmac_sha256(b"key", b"msg-b");
        assert_ne!(a, b);
    }

    #[test]
    fn verify_tag_detects_single_bit_flip() {
        let tag = hmac_sha256(b"key", b"msg");
        assert!(verify_tag(&tag, &tag));
        let mut bytes = tag.into_bytes();
        bytes[31] ^= 1;
        assert!(!verify_tag(&tag, &Digest::from_bytes(bytes)));
        let mut bytes2 = tag.into_bytes();
        bytes2[0] ^= 0x80;
        assert!(!verify_tag(&tag, &Digest::from_bytes(bytes2)));
    }

    #[test]
    fn verify_tag_rejects_every_single_bit_flip() {
        // Exhaustive: all 256 single-bit corruptions of the 32-byte tag
        // must fail verification. A MAC with any blind spot here would let
        // a tampered segment through the adversarial screens.
        let tag = hmac_sha256(b"key", b"the segment body under test");
        for byte in 0..32 {
            for bit in 0..8 {
                let mut bytes = tag.into_bytes();
                bytes[byte] ^= 1 << bit;
                assert!(
                    !verify_tag(&tag, &Digest::from_bytes(bytes)),
                    "flip of byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn exactly_block_sized_key_is_used_verbatim() {
        // A 64-byte key must not be hashed; 65 bytes must be.
        let key64 = [0x11u8; 64];
        let key65 = [0x11u8; 65];
        assert_ne!(hmac_sha256(&key64, b"m"), hmac_sha256(&key65, b"m"));
    }
}
