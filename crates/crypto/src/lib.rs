//! Cryptographic primitives for the DAPES reproduction.
//!
//! The DAPES paper relies on NDN's cryptographic machinery: every Data packet
//! is signed at production time, collection metadata is signed by the
//! collection producer, and packet integrity is verified either through
//! per-packet digests or Merkle trees (paper §IV-C). This crate provides the
//! equivalents from scratch:
//!
//! * [`sha256`] — a FIPS 180-4 SHA-256 implementation,
//! * [`hmac`] — HMAC-SHA256 (RFC 2104),
//! * [`merkle`] — Merkle trees with inclusion proofs (paper's Merkle-tree
//!   metadata format),
//! * [`signing`] — a [`Signer`]/[`Verifier`] abstraction. The default scheme
//!   is an HMAC under a shared *local trust anchor* key, matching the paper's
//!   assumption (§III) that peers share common local trust anchors. See
//!   `DESIGN.md` for why this substitution preserves protocol behaviour.
//!
//! # Examples
//!
//! ```
//! use dapes_crypto::{sha256::sha256, signing::{Signer, TrustAnchor}};
//!
//! let digest = sha256(b"bridge-picture");
//! assert_eq!(digest.as_bytes().len(), 32);
//!
//! let anchor = TrustAnchor::from_seed(b"rural-area-anchor");
//! let producer = anchor.keypair("resident-a");
//! let sig = producer.sign(b"metadata bytes");
//! assert!(anchor.verify("resident-a", b"metadata bytes", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod signing;

pub use digest::Digest;
pub use merkle::{MerkleProof, MerkleTree};
pub use signing::{Signature, Signer, TrustAnchor, Verifier};
