//! Merkle trees for the paper's Merkle-tree metadata format (§IV-C).
//!
//! The collection producer builds one tree per file (or one for the whole
//! collection) and ships only the root hash in the metadata. Receivers can
//! verify all packets of a file once they hold the full leaf set, or verify a
//! single packet early if the sender attaches a [`MerkleProof`].
//!
//! Interior nodes hash a domain-separated concatenation of their children so
//! that a leaf can never be confused with an interior node (second-preimage
//! hardening), and odd nodes are promoted unchanged rather than duplicated.

use crate::digest::Digest;
use crate::sha256::Sha256;

const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

/// Hashes a leaf payload with leaf domain separation.
pub fn leaf_hash(payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(payload);
    h.finalize()
}

/// Hashes two child digests with interior-node domain separation.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A Merkle tree over a sequence of leaf payloads.
///
/// # Examples
///
/// ```
/// use dapes_crypto::merkle::MerkleTree;
///
/// let packets: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
/// let tree = MerkleTree::from_leaves(packets.iter().map(|p| p.as_slice()));
/// let proof = tree.prove(42).expect("leaf 42 exists");
/// assert!(proof.verify(&tree.root(), &packets[42]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level has exactly one digest.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads.
    ///
    /// An empty iterator produces a single-node tree whose root is the leaf
    /// hash of the empty string, so `root()` is always defined.
    pub fn from_leaves<'a, I>(leaves: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let level0: Vec<Digest> = leaves.into_iter().map(leaf_hash).collect();
        Self::from_leaf_hashes(if level0.is_empty() {
            vec![leaf_hash(b"")]
        } else {
            level0
        })
    }

    /// Builds a tree from precomputed leaf digests.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        assert!(!leaf_hashes.is_empty(), "a merkle tree needs >= 1 leaf");
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut it = prev.chunks(2);
            for pair in &mut it {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    // Odd node: promote unchanged (no duplication).
                    [l] => next.push(*l),
                    _ => unreachable!("chunks(2) yields 1..=2 items"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds a tree over a byte buffer split into `chunk_size`-byte
    /// leaves (the last chunk may be short). This is the chunked-file
    /// pipeline's shape: one leaf per segment Data packet.
    ///
    /// An empty buffer produces the same single-node tree as an empty
    /// leaf iterator, so `root()` is always defined.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0.
    pub fn from_chunks(bytes: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Self::from_leaves(bytes.chunks(chunk_size))
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The digest of leaf `index`, if it exists.
    pub fn leaf(&self, index: usize) -> Option<Digest> {
        self.levels[0].get(index).copied()
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if `index` is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib_idx = idx ^ 1;
            if let Some(sib) = level.get(sib_idx) {
                siblings.push(ProofStep {
                    sibling: *sib,
                    sibling_on_left: sib_idx < idx,
                });
            }
            // When the sibling is missing (odd promotion) the node carries
            // up unchanged, so no step is recorded.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            leaf_count: self.leaf_count(),
            siblings,
        })
    }

    /// Verifies that `leaf_hashes` recomputes to `expected_root`.
    ///
    /// This is the paper's deferred-verification path: once all packets of a
    /// file are retrieved, hash them and compare against the metadata root.
    pub fn verify_leaves(expected_root: &Digest, leaf_hashes: Vec<Digest>) -> bool {
        if leaf_hashes.is_empty() {
            return false;
        }
        MerkleTree::from_leaf_hashes(leaf_hashes).root() == *expected_root
    }
}

/// One sibling step of a [`MerkleProof`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling digest combined at this level.
    pub sibling: Digest,
    /// Whether the sibling sits to the left of the running hash.
    pub sibling_on_left: bool,
}

/// An inclusion proof binding one leaf payload to a tree root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Total number of leaves in the tree the proof was built from.
    pub leaf_count: usize,
    /// Bottom-up sibling path.
    pub siblings: Vec<ProofStep>,
}

impl MerkleProof {
    /// Checks the proof against a root for a given leaf payload.
    pub fn verify(&self, root: &Digest, payload: &[u8]) -> bool {
        self.verify_leaf_hash(root, leaf_hash(payload))
    }

    /// Checks the proof given a precomputed leaf digest.
    pub fn verify_leaf_hash(&self, root: &Digest, leaf: Digest) -> bool {
        let mut acc = leaf;
        for step in &self.siblings {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == *root
    }

    /// Serialized size in bytes (for overhead accounting).
    pub fn wire_size(&self) -> usize {
        // index + count as u32s, then 33 bytes per step (digest + side flag).
        8 + self.siblings.len() * 33
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("packet-{i}").into_bytes()).collect()
    }

    fn tree_of(n: usize) -> (MerkleTree, Vec<Vec<u8>>) {
        let p = payloads(n);
        let t = MerkleTree::from_leaves(p.iter().map(|v| v.as_slice()));
        (t, p)
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let (t, p) = tree_of(1);
        assert_eq!(t.root(), leaf_hash(&p[0]));
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_defined_root() {
        let t = MerkleTree::from_leaves(std::iter::empty());
        assert_eq!(t.root(), leaf_hash(b""));
    }

    #[test]
    fn two_leaves_root_is_pair_hash() {
        let (t, p) = tree_of(2);
        assert_eq!(t.root(), node_hash(&leaf_hash(&p[0]), &leaf_hash(&p[1])));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_indices() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100] {
            let (t, p) = tree_of(n);
            for (i, payload) in p.iter().enumerate() {
                let proof = t.prove(i).expect("in range");
                assert!(proof.verify(&t.root(), payload), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_payload() {
        let (t, p) = tree_of(8);
        let proof = t.prove(3).expect("in range");
        assert!(!proof.verify(&t.root(), &p[4]));
        assert!(!proof.verify(&t.root(), b"forged"));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let (t, p) = tree_of(8);
        let (other, _) = tree_of(9);
        let proof = t.prove(0).expect("in range");
        assert!(!proof.verify(&other.root(), &p[0]));
    }

    #[test]
    fn prove_out_of_range_is_none() {
        let (t, _) = tree_of(4);
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn verify_leaves_accepts_exact_set() {
        let (t, p) = tree_of(10);
        let hashes: Vec<Digest> = p.iter().map(|v| leaf_hash(v)).collect();
        assert!(MerkleTree::verify_leaves(&t.root(), hashes));
    }

    #[test]
    fn verify_leaves_rejects_mutation_reorder_truncation() {
        let (t, p) = tree_of(10);
        let hashes: Vec<Digest> = p.iter().map(|v| leaf_hash(v)).collect();

        let mut mutated = hashes.clone();
        mutated[5] = leaf_hash(b"tampered");
        assert!(!MerkleTree::verify_leaves(&t.root(), mutated));

        let mut reordered = hashes.clone();
        reordered.swap(0, 9);
        assert!(!MerkleTree::verify_leaves(&t.root(), reordered));

        let truncated = hashes[..9].to_vec();
        assert!(!MerkleTree::verify_leaves(&t.root(), truncated));

        assert!(!MerkleTree::verify_leaves(&t.root(), vec![]));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A 65-byte "payload" that mimics an interior node's input must not
        // collide with the interior hash.
        let l = leaf_hash(b"a");
        let r = leaf_hash(b"b");
        let mut fake = Vec::new();
        fake.extend_from_slice(l.as_bytes());
        fake.extend_from_slice(r.as_bytes());
        assert_ne!(leaf_hash(&fake), node_hash(&l, &r));
    }

    #[test]
    fn odd_promotion_keeps_proofs_short() {
        // 5 leaves: depth is ceil(log2(5)) = 3; the promoted leaf's proof can
        // be shorter than depth.
        let (t, p) = tree_of(5);
        let proof = t.prove(4).expect("in range");
        assert!(proof.siblings.len() <= 3);
        assert!(proof.verify(&t.root(), &p[4]));
    }

    #[test]
    fn roots_differ_when_any_leaf_differs() {
        let (t1, _) = tree_of(16);
        let mut p2 = payloads(16);
        p2[7][0] ^= 1;
        let t2 = MerkleTree::from_leaves(p2.iter().map(|v| v.as_slice()));
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn from_chunks_matches_explicit_leaves() {
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for chunk in [1usize, 7, 64, 999, 1000, 4096] {
            let t = MerkleTree::from_chunks(&bytes, chunk);
            let explicit = MerkleTree::from_leaves(bytes.chunks(chunk));
            assert_eq!(t, explicit, "chunk={chunk}");
            assert_eq!(t.leaf_count(), bytes.len().div_ceil(chunk));
        }
        // Empty buffer: same defined root as the empty iterator.
        assert_eq!(
            MerkleTree::from_chunks(&[], 64).root(),
            MerkleTree::from_leaves(std::iter::empty()).root()
        );
    }

    #[test]
    fn wire_size_tracks_depth() {
        let (t, _) = tree_of(1024);
        let proof = t.prove(0).expect("in range");
        assert_eq!(proof.wire_size(), 8 + 10 * 33);
    }
}
