//! Authenticated control plane: the signed advert/discovery envelope and
//! the replay high-water-mark table.
//!
//! The paper assumes cooperative peers, but its off-the-grid setting is
//! exactly where spoofed adverts and replayed announcements are cheapest to
//! mount. When the `signed_adverts` knob on
//! [`DapesConfig`](crate::config::DapesConfig) is on, every bitmap
//! advertisement and discovery reply is
//! *sealed*: the base payload gains a trailer carrying a strictly monotonic
//! per-producer timestamp and a [`Signature`] over `base || timestamp`
//! under the sender's producer key (`"peer-{id}"`, derived from the shared
//! trust anchor exactly like content signing). Receivers *open* the
//! envelope before any protocol state is touched: a bad tag or a forged
//! producer name drops the frame ([`OpenError::BadSignature`]); a timestamp
//! below the sender's recorded high-water mark — or older than the replay
//! window — drops it as a replay ([`ReplayVerdict::Replayed`]), while a
//! timestamp *equal* to the mark is an honest wireless re-hearing
//! ([`ReplayVerdict::Duplicate`]) processed like any benign frame.
//!
//! The trailer is strictly appended so the sealed wire form is
//! `base || timestamp(8B BE) || key_id(8B BE) || tag(32B)`; stripping
//! [`ENVELOPE_SIZE`] bytes recovers the exact base payload the unsigned
//! code path produces, which is what keeps benign golden traces
//! bit-identical when the axis is toggled off.

use dapes_crypto::signing::{KeyId, Signature, Signer, TrustAnchor};
use dapes_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Bytes the envelope appends to the base payload: an 8-byte big-endian
/// timestamp (microseconds), then [`Signature::WIRE_SIZE`] signature bytes.
pub const ENVELOPE_SIZE: usize = 8 + Signature::WIRE_SIZE;

/// Why an envelope failed to open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenError {
    /// Trailer missing/truncated, tag mismatch, or the signature's key id
    /// is not the one the claimed producer name derives to.
    BadSignature,
    /// Timestamp at or below the sender's high-water mark, or older than
    /// the replay window.
    Replay,
}

/// What the replay guard concluded about a verified announcement.
///
/// The three-way split matters for honest wireless traffic: the *same*
/// sealed frame is routinely heard more than once (rebroadcasts, relays,
/// overlapping coverage), and those re-hearings carry the exact timestamp
/// already recorded. Counting them as replays would pollute the
/// attack-accounting invariant, so they get their own verdict and are
/// processed like any benign frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Timestamp strictly above the recorded mark (and inside the window);
    /// the mark advanced.
    Fresh,
    /// Timestamp exactly at the recorded mark: an honest re-hearing of a
    /// frame we already accepted. Process it normally; nothing recorded.
    Duplicate,
    /// Timestamp *below* the recorded mark, or older than the replay
    /// window: a re-injected announcement. Drop and count it.
    Replayed,
}

/// Signs `base` for the peer that owns `signer`, returning
/// `base || timestamp || signature` with the signature computed over
/// `base || timestamp`.
///
/// `timestamp` must come from [`MonotonicStamp::next`] so two adverts from
/// the same peer never share a timestamp (the receiver-side high-water
/// mark would otherwise reject the second as a replay).
pub fn seal(base: &[u8], timestamp_us: u64, signer: &dyn Signer) -> Vec<u8> {
    let mut out = Vec::with_capacity(base.len() + ENVELOPE_SIZE);
    out.extend_from_slice(base);
    out.extend_from_slice(&timestamp_us.to_be_bytes());
    let sig = signer.sign(&out);
    out.extend_from_slice(&sig.to_bytes());
    debug_assert_eq!(out.len(), base.len() + ENVELOPE_SIZE);
    out
}

/// Splits a sealed payload into `(base, timestamp, signature)` without
/// verifying anything. Returns `None` when the payload is too short to
/// carry an envelope.
pub fn split(sealed: &[u8]) -> Option<(&[u8], u64, Signature)> {
    let base_len = sealed.len().checked_sub(ENVELOPE_SIZE)?;
    let ts = u64::from_be_bytes(sealed[base_len..base_len + 8].try_into().ok()?);
    let sig = Signature::from_bytes(&sealed[base_len + 8..])?;
    Some((&sealed[..base_len], ts, sig))
}

/// The base payload of a sealed frame, dropped without verification.
///
/// Used by forwarding-plane peeks (e.g. the multi-hop bitmap decision)
/// that only need the advertised bits and leave authentication to the
/// control plane that actually consumes the advert.
pub fn strip(sealed: &[u8]) -> Option<&[u8]> {
    split(sealed).map(|(base, _, _)| base)
}

/// Verifies a sealed payload against the trust anchor: the signature must
/// cover `base || timestamp` and its key id must be the one
/// `claimed_producer` derives to. Returns the base payload and timestamp.
pub fn open<'a>(
    sealed: &'a [u8],
    claimed_producer: &str,
    anchor: &TrustAnchor,
) -> Result<(&'a [u8], u64), OpenError> {
    let (base, ts, sig) = split(sealed).ok_or(OpenError::BadSignature)?;
    let signed_len = base.len() + 8;
    if !anchor.verify(claimed_producer, &sealed[..signed_len], &sig) {
        return Err(OpenError::BadSignature);
    }
    Ok((base, ts))
}

/// Strictly monotonic per-peer timestamp source for sealing.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicStamp {
    last: u64,
}

impl MonotonicStamp {
    /// The next timestamp: `max(now, last + 1)`, so repeated adverts in
    /// the same microsecond still advance the receiver-side mark.
    pub fn next(&mut self, now: SimTime) -> u64 {
        self.last = now.as_micros().max(self.last + 1);
        self.last
    }
}

/// Bounded per-producer `(key id → timestamp)` high-water-mark table.
///
/// A sealed announcement is accepted only when its timestamp is *strictly
/// above* the mark recorded for its key id and no older than the replay
/// window; acceptance advances the mark. Entries unheard for the peer TTL
/// are swept, and when the table is full the stalest entry is evicted —
/// the table is bounded regardless of how many key ids an attacker mints.
#[derive(Clone, Debug)]
pub struct ReplayGuard {
    /// `key id → (high-water mark, last time we heard this producer)`.
    marks: BTreeMap<KeyId, (u64, SimTime)>,
    capacity: usize,
    window: SimDuration,
    ttl: SimDuration,
}

impl ReplayGuard {
    /// Creates a guard holding at most `capacity` producer marks.
    pub fn new(capacity: usize, window: SimDuration, ttl: SimDuration) -> Self {
        ReplayGuard {
            marks: BTreeMap::new(),
            capacity: capacity.max(1),
            window,
            ttl,
        }
    }

    /// Checks a verified announcement's `(key id, timestamp)` and records
    /// it when fresh. Never returns [`ReplayVerdict::Fresh`] for a
    /// timestamp at or below the recorded mark: equality is an honest
    /// [`ReplayVerdict::Duplicate`] re-hearing, anything below (or stale
    /// beyond the replay window) is [`ReplayVerdict::Replayed`].
    pub fn check(&mut self, key_id: KeyId, timestamp_us: u64, now: SimTime) -> ReplayVerdict {
        let age = now.as_micros().saturating_sub(timestamp_us);
        if age > self.window.as_micros() {
            return ReplayVerdict::Replayed;
        }
        if let Some(&(mark, _)) = self.marks.get(&key_id) {
            if timestamp_us == mark {
                return ReplayVerdict::Duplicate;
            }
            if timestamp_us < mark {
                return ReplayVerdict::Replayed;
            }
        }
        if !self.marks.contains_key(&key_id) && self.marks.len() >= self.capacity {
            // Evict the stalest producer (deterministic: ties break on the
            // smaller key id, the BTreeMap iteration order).
            if let Some(stalest) = self
                .marks
                .iter()
                .min_by_key(|(id, &(_, heard))| (heard, **id))
                .map(|(id, _)| *id)
            {
                self.marks.remove(&stalest);
            }
        }
        self.marks.insert(key_id, (timestamp_us, now));
        ReplayVerdict::Fresh
    }

    /// Drops marks for producers unheard longer than the peer TTL,
    /// returning how many expired.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let before = self.marks.len();
        let ttl = self.ttl;
        self.marks
            .retain(|_, &mut (_, heard)| now.since(heard) <= ttl);
        before - self.marks.len()
    }

    /// Recorded high-water mark for a key id, if any.
    pub fn mark(&self, key_id: KeyId) -> Option<u64> {
        self.marks.get(&key_id).map(|&(mark, _)| mark)
    }

    /// Number of producers currently tracked.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no producer is tracked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor() -> TrustAnchor {
        TrustAnchor::from_seed(b"auth-tests")
    }

    fn guard() -> ReplayGuard {
        ReplayGuard::new(64, SimDuration::from_secs(2), SimDuration::from_secs(10))
    }

    #[test]
    fn seal_open_round_trip() {
        let anchor = anchor();
        let key = anchor.keypair("peer-7");
        let sealed = seal(b"advert-bits", 1_234, &key);
        assert_eq!(sealed.len(), b"advert-bits".len() + ENVELOPE_SIZE);
        let (base, ts) = open(&sealed, "peer-7", &anchor).expect("opens");
        assert_eq!(base, b"advert-bits");
        assert_eq!(ts, 1_234);
        assert_eq!(strip(&sealed), Some(&b"advert-bits"[..]));
    }

    #[test]
    fn forged_producer_name_rejected() {
        let anchor = anchor();
        let sealed = seal(b"x", 1, &anchor.keypair("peer-1"));
        assert_eq!(
            open(&sealed, "peer-2", &anchor),
            Err(OpenError::BadSignature)
        );
    }

    #[test]
    fn rogue_anchor_signature_rejected() {
        let rogue = TrustAnchor::from_seed(b"rogue");
        let sealed = seal(b"x", 1, &rogue.keypair("peer-1"));
        assert_eq!(
            open(&sealed, "peer-1", &anchor()),
            Err(OpenError::BadSignature)
        );
    }

    #[test]
    fn tampered_base_rejected() {
        let anchor = anchor();
        let mut sealed = seal(b"hello", 1, &anchor.keypair("peer-1"));
        sealed[0] ^= 0x01;
        assert_eq!(
            open(&sealed, "peer-1", &anchor),
            Err(OpenError::BadSignature)
        );
    }

    #[test]
    fn tampered_timestamp_rejected() {
        let anchor = anchor();
        let mut sealed = seal(b"hello", 1, &anchor.keypair("peer-1"));
        let ts_at = sealed.len() - ENVELOPE_SIZE;
        sealed[ts_at + 7] ^= 0x01;
        assert_eq!(
            open(&sealed, "peer-1", &anchor),
            Err(OpenError::BadSignature)
        );
    }

    #[test]
    fn truncated_envelope_rejected() {
        let anchor = anchor();
        let sealed = seal(b"hello", 1, &anchor.keypair("peer-1"));
        for len in [0, 1, ENVELOPE_SIZE - 1] {
            assert_eq!(
                open(&sealed[..len], "peer-1", &anchor),
                Err(OpenError::BadSignature),
                "len {len}"
            );
        }
        assert!(split(&sealed[..ENVELOPE_SIZE - 1]).is_none());
    }

    #[test]
    fn monotonic_stamp_never_repeats() {
        let mut s = MonotonicStamp::default();
        let a = s.next(SimTime::from_micros(100));
        let b = s.next(SimTime::from_micros(100));
        let c = s.next(SimTime::from_micros(50));
        assert_eq!(a, 100);
        assert_eq!(b, 101);
        assert_eq!(c, 102, "clock going backwards still advances");
        assert_eq!(s.next(SimTime::from_micros(1_000)), 1_000);
    }

    #[test]
    fn replay_guard_never_fresh_at_or_below_mark() {
        let mut g = guard();
        let id = KeyId(9);
        let now = SimTime::from_micros(1_000);
        assert_eq!(g.check(id, 500, now), ReplayVerdict::Fresh);
        assert_eq!(g.check(id, 500, now), ReplayVerdict::Duplicate, "equal");
        assert_eq!(g.check(id, 499, now), ReplayVerdict::Replayed, "below");
        assert_eq!(g.check(id, 501, now), ReplayVerdict::Fresh, "above");
        assert_eq!(g.mark(id), Some(501));
    }

    #[test]
    fn replay_guard_duplicate_keeps_mark_and_heard_time() {
        let mut g = guard();
        let id = KeyId(4);
        assert_eq!(
            g.check(id, 100, SimTime::from_micros(150)),
            ReplayVerdict::Fresh
        );
        assert_eq!(
            g.check(id, 100, SimTime::from_micros(900)),
            ReplayVerdict::Duplicate
        );
        assert_eq!(g.mark(id), Some(100), "duplicate records nothing");
        // The heard time was not refreshed by the duplicate, so the peer
        // still expires on the original schedule.
        assert_eq!(
            g.sweep(SimTime::from_micros(150) + SimDuration::from_secs(11)),
            1
        );
    }

    #[test]
    fn replay_guard_rejects_outside_window() {
        let mut g = guard();
        let now = SimTime::from_secs(10);
        let stale = now.as_micros() - SimDuration::from_secs(2).as_micros() - 1;
        assert_eq!(g.check(KeyId(1), stale, now), ReplayVerdict::Replayed);
        assert_eq!(
            g.check(KeyId(1), stale + 1, now),
            ReplayVerdict::Fresh,
            "window edge"
        );
    }

    #[test]
    fn replay_guard_sweeps_stale_peers() {
        let mut g = guard();
        assert_eq!(
            g.check(KeyId(1), 100, SimTime::from_micros(200)),
            ReplayVerdict::Fresh
        );
        assert_eq!(g.sweep(SimTime::from_secs(5)), 0, "within ttl");
        assert_eq!(g.sweep(SimTime::from_secs(20)), 1, "expired");
        assert!(g.is_empty());
    }

    #[test]
    fn replay_guard_bounded_evicts_stalest() {
        let mut g = ReplayGuard::new(2, SimDuration::from_secs(60), SimDuration::from_secs(60));
        assert_eq!(
            g.check(KeyId(1), 100, SimTime::from_micros(100)),
            ReplayVerdict::Fresh
        );
        assert_eq!(
            g.check(KeyId(2), 200, SimTime::from_micros(200)),
            ReplayVerdict::Fresh
        );
        assert_eq!(
            g.check(KeyId(3), 300, SimTime::from_micros(300)),
            ReplayVerdict::Fresh
        );
        assert_eq!(g.len(), 2);
        assert_eq!(g.mark(KeyId(1)), None, "stalest evicted");
        assert_eq!(g.mark(KeyId(3)), Some(300));
    }
}
