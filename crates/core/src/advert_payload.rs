//! Wire payloads for bitmap advertisements.
//!
//! A bitmap Interest carries the *sender's* bitmap in its
//! ApplicationParameters (paper §IV-D: "each such Interest carries the
//! sender's bitmap"); a bitmap Data carries the *replier's* bitmap in its
//! Content. Both use the same `peer id || bitmap` encoding.

use crate::bitmap::Bitmap;

/// Encodes `peer || bitmap` for Interest parameters or Data content.
pub fn encode_bitmap_params(peer: u32, bitmap: &Bitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + Bitmap::wire_size(bitmap.len()));
    out.extend_from_slice(&peer.to_be_bytes());
    out.extend_from_slice(&bitmap.to_wire());
    out
}

/// Decodes a payload produced by [`encode_bitmap_params`]. Length-strict:
/// trailing bytes (such as an unstripped [`crate::auth`] envelope) are
/// rejected, so the sealed and plain forms never alias.
pub fn decode_bitmap_params(wire: &[u8]) -> Option<(u32, Bitmap)> {
    if wire.len() < 4 {
        return None;
    }
    let peer = u32::from_be_bytes(wire[..4].try_into().ok()?);
    let bitmap = Bitmap::from_wire(&wire[4..])?;
    if wire.len() != 4 + Bitmap::wire_size(bitmap.len()) {
        return None;
    }
    Some((peer, bitmap))
}

/// Decodes a bitmap payload that may carry the signed-advert envelope
/// ([`crate::auth`]): tries the plain encoding first, then once more with
/// the envelope trailer stripped — *without verifying it*.
///
/// This is for forwarding-plane peeks (the multi-hop bitmap decision,
/// opportunistic overhearing sites behind the authenticated screen) that
/// only need the advertised bits and must work identically whichever side
/// of the `signed_adverts` toggle produced the frame. Consumers that admit
/// the advert into protocol state authenticate via [`crate::auth::open`]
/// first.
pub fn decode_bitmap_params_maybe_sealed(wire: &[u8]) -> Option<(u32, Bitmap)> {
    decode_bitmap_params(wire).or_else(|| crate::auth::strip(wire).and_then(decode_bitmap_params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Bitmap::new(100);
        b.set(1);
        b.set(99);
        let wire = encode_bitmap_params(77, &b);
        let (peer, back) = decode_bitmap_params(&wire).expect("round trip");
        assert_eq!(peer, 77);
        assert_eq!(back, b);
    }

    #[test]
    fn rejects_truncation() {
        let wire = encode_bitmap_params(1, &Bitmap::new(64));
        assert!(decode_bitmap_params(&wire[..3]).is_none());
        assert!(decode_bitmap_params(&wire[..wire.len() - 1]).is_none());
        assert!(decode_bitmap_params(&[]).is_none());
    }

    #[test]
    fn maybe_sealed_accepts_both_forms() {
        use dapes_crypto::signing::TrustAnchor;
        let mut b = Bitmap::new(64);
        b.set(5);
        let plain = encode_bitmap_params(3, &b);
        assert_eq!(
            decode_bitmap_params_maybe_sealed(&plain),
            Some((3, b.clone()))
        );
        let anchor = TrustAnchor::from_seed(b"advert-payload-tests");
        let sealed = crate::auth::seal(&plain, 42, &anchor.keypair("peer-3"));
        assert!(decode_bitmap_params(&sealed).is_none(), "trailer rejected");
        assert_eq!(decode_bitmap_params_maybe_sealed(&sealed), Some((3, b)));
    }

    #[test]
    fn size_matches_paper_example() {
        // 10240-packet collection: 4 (peer) + 4 (len) + 1280 (bits).
        let wire = encode_bitmap_params(1, &Bitmap::new(10_240));
        assert_eq!(wire.len(), 1288);
    }
}
