//! Wire payloads for bitmap advertisements.
//!
//! A bitmap Interest carries the *sender's* bitmap in its
//! ApplicationParameters (paper §IV-D: "each such Interest carries the
//! sender's bitmap"); a bitmap Data carries the *replier's* bitmap in its
//! Content. Both use the same `peer id || bitmap` encoding.

use crate::bitmap::Bitmap;

/// Encodes `peer || bitmap` for Interest parameters or Data content.
pub fn encode_bitmap_params(peer: u32, bitmap: &Bitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + Bitmap::wire_size(bitmap.len()));
    out.extend_from_slice(&peer.to_be_bytes());
    out.extend_from_slice(&bitmap.to_wire());
    out
}

/// Decodes a payload produced by [`encode_bitmap_params`].
pub fn decode_bitmap_params(wire: &[u8]) -> Option<(u32, Bitmap)> {
    if wire.len() < 4 {
        return None;
    }
    let peer = u32::from_be_bytes(wire[..4].try_into().ok()?);
    let bitmap = Bitmap::from_wire(&wire[4..])?;
    Some((peer, bitmap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Bitmap::new(100);
        b.set(1);
        b.set(99);
        let wire = encode_bitmap_params(77, &b);
        let (peer, back) = decode_bitmap_params(&wire).expect("round trip");
        assert_eq!(peer, 77);
        assert_eq!(back, b);
    }

    #[test]
    fn rejects_truncation() {
        let wire = encode_bitmap_params(1, &Bitmap::new(64));
        assert!(decode_bitmap_params(&wire[..3]).is_none());
        assert!(decode_bitmap_params(&wire[..wire.len() - 1]).is_none());
        assert!(decode_bitmap_params(&[]).is_none());
    }

    #[test]
    fn size_matches_paper_example() {
        // 10240-packet collection: 4 (peer) + 4 (len) + 1280 (bits).
        let wire = encode_bitmap_params(1, &Bitmap::new(10_240));
        assert_eq!(wire.len(), 1288);
    }
}
