//! DAPES configuration: every design knob the paper evaluates.

use crate::metadata::MetadataFormat;
use crate::rpf::{RpfVariant, StartPacket};
use dapes_ndn::cs::EvictionPolicyKind;
use dapes_netsim::exec::ExecProfile;
use dapes_netsim::time::SimDuration;

/// How many bitmaps to collect in an encounter before/while fetching data
/// (the Fig. 9c/9d sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BitmapBudget {
    /// Collect up to this many bitmaps.
    Count(u32),
    /// Collect the bitmap of every interested peer in range.
    #[default]
    All,
}

impl BitmapBudget {
    /// The effective target given how many interested neighbors are known.
    pub fn target(&self, interested_neighbors: usize) -> usize {
        match *self {
            BitmapBudget::Count(n) => (n as usize).min(interested_neighbors.max(1)),
            BitmapBudget::All => interested_neighbors.max(1),
        }
    }
}

/// When data fetching starts relative to bitmap collection (paper §IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvertSchedule {
    /// Exchange the budgeted bitmaps first, then fetch data (Fig. 9c).
    BitmapsFirst(BitmapBudget),
    /// Start fetching after the first bitmap, keep collecting up to the
    /// budget (Fig. 9d; the paper's winner and default).
    Interleaved(BitmapBudget),
}

impl Default for AdvertSchedule {
    fn default() -> Self {
        AdvertSchedule::Interleaved(BitmapBudget::All)
    }
}

impl AdvertSchedule {
    /// The bitmap budget regardless of scheduling flavour.
    pub fn budget(&self) -> BitmapBudget {
        match *self {
            AdvertSchedule::BitmapsFirst(b) | AdvertSchedule::Interleaved(b) => b,
        }
    }

    /// Bitmaps required before data fetching may begin.
    pub fn required_before_fetch(&self, interested_neighbors: usize) -> usize {
        match self {
            AdvertSchedule::BitmapsFirst(b) => b.target(interested_neighbors),
            AdvertSchedule::Interleaved(_) => 1,
        }
    }
}

/// Full DAPES peer configuration. Defaults follow the paper's §VI-B setup.
#[derive(Clone, Debug)]
pub struct DapesConfig {
    /// RPF flavour (paper default: local neighborhood).
    pub rpf: RpfVariant,
    /// Tie-break / start-packet policy.
    pub start: StartPacket,
    /// Bitmap scheduling.
    pub schedule: AdvertSchedule,
    /// PEBA collision mitigation on bitmap transmissions.
    pub peba: bool,
    /// Multi-hop forwarding enabled.
    pub multihop: bool,
    /// Forwarding probability without knowledge (paper default 20 %).
    pub forward_prob: f64,
    /// Metadata encoding for produced collections.
    pub metadata_format: MetadataFormat,
    /// The random transmission window for data/Interest jitter (paper:
    /// 20 ms).
    pub tx_window: SimDuration,
    /// PEBA slot length.
    pub slot_len: SimDuration,
    /// Outstanding content Interests per download.
    pub fetch_window: usize,
    /// Base retransmission timeout for content/metadata Interests. The
    /// effective timeout doubles per retransmission (bounded exponential
    /// backoff) up to [`retx_backoff_cap`](Self::retx_backoff_cap).
    pub retx_timeout: SimDuration,
    /// Give up re-expressing a packet after this many retransmissions and
    /// requeue it.
    pub max_retx: u32,
    /// Ceiling on the per-packet backed-off retransmission timeout. Keeps a
    /// downloader probing at a bounded rate through a partition or a crashed
    /// upstream instead of backing off into silence.
    pub retx_backoff_cap: SimDuration,
    /// Fastest discovery beacon period.
    pub discovery_min: SimDuration,
    /// Slowest discovery beacon period (isolation backoff cap).
    pub discovery_max: SimDuration,
    /// Window within which a heard peer keeps discovery fast.
    pub discovery_recent: SimDuration,
    /// Neighbors unheard for this long drop out of knowledge/encounters.
    pub neighbor_timeout: SimDuration,
    /// Interval between advertisement rounds while downloading.
    pub advert_interval: SimDuration,
    /// Encounter-history capacity (encounter-based RPF).
    pub encounter_history: usize,
    /// Content Store capacity in packets (used when `cs_budget_bytes`
    /// is unset).
    pub cs_capacity: usize,
    /// Content Store memory budget in bytes (wire-size accounted). When
    /// set, it replaces the packet-count cap; `None` keeps the historical
    /// count-capped store bit-identical.
    pub cs_budget_bytes: Option<usize>,
    /// Content Store eviction policy (FIFO is the trace-equivalence
    /// baseline).
    pub cs_policy: EvictionPolicyKind,
    /// How long a forwarded Interest may wait for data before suppression.
    pub response_timeout: SimDuration,
    /// How long a suppression lasts.
    pub suppress_duration: SimDuration,
    /// Housekeeping tick (retransmissions, expiry sweeps).
    pub tick: SimDuration,
    /// Execution-strategy profile shared with the simulator. The peer
    /// consults two of its knobs:
    ///
    /// * [`lazy_peek`](ExecProfile::lazy_peek) — resolve overheard frames
    ///   from a name-first header peek (CS hit, duplicate nonce, no PIT
    ///   match) before paying for a full TLV decode. Behaviour is
    ///   bit-identical either way; the equivalence relies on frames being
    ///   either well-formed or rejected by their routable prefix, which
    ///   holds in the simulator (loss is whole-frame Bernoulli drop,
    ///   never byte corruption).
    /// * [`relay_patch`](ExecProfile::relay_patch) — relay Interests
    ///   straight from the peeked header when their hop limit can be
    ///   patched as a single wire byte, never constructing an
    ///   [`dapes_ndn::packet::Interest`]. Requires `lazy_peek`.
    ///
    /// The remaining profile knobs (queue, delivery, cores, …) belong to
    /// the world; carrying the whole profile here keeps one value the
    /// single source of truth for a run's execution strategy.
    pub exec: ExecProfile,
    /// Seal bitmap advertisements and discovery replies in the signed
    /// envelope ([`crate::auth`]): a monotonic per-producer timestamp plus
    /// a trust-anchor signature over the payload, verified (and
    /// replay-checked) before any announcement touches protocol state.
    /// Default-on; toggling it off reproduces the pre-authentication wire
    /// format byte for byte, so benign golden traces stay bit-identical
    /// with the adversarial axis disabled.
    pub signed_adverts: bool,
    /// How far in the past a sealed announcement's timestamp may lie before
    /// it is rejected as a replay (alongside the per-producer high-water
    /// mark, which catches re-injections inside the window). Must exceed
    /// the longest benign re-serve path — a discovery reply answered from
    /// a neighbor's Content Store within its 1 s freshness, or a bitmap
    /// reply served inside its ~2 s advertisement round — with margin.
    pub replay_window_ms: u64,
    /// Producers unheard for this long are swept from the replay table —
    /// the stale-peer expiry of the authenticated discovery set.
    pub peer_ttl_ms: u64,
}

impl Default for DapesConfig {
    fn default() -> Self {
        DapesConfig {
            rpf: RpfVariant::LocalNeighborhood,
            start: StartPacket::Random,
            schedule: AdvertSchedule::default(),
            peba: true,
            multihop: true,
            forward_prob: 0.20,
            metadata_format: MetadataFormat::MerkleRoots,
            tx_window: SimDuration::from_millis(20),
            slot_len: SimDuration::from_millis(2),
            fetch_window: 4,
            retx_timeout: SimDuration::from_millis(500),
            max_retx: 8,
            retx_backoff_cap: SimDuration::from_secs(4),
            discovery_min: SimDuration::from_secs(1),
            discovery_max: SimDuration::from_secs(8),
            discovery_recent: SimDuration::from_secs(5),
            neighbor_timeout: SimDuration::from_secs(5),
            advert_interval: SimDuration::from_secs(2),
            encounter_history: 16,
            cs_capacity: 4096,
            cs_budget_bytes: None,
            cs_policy: EvictionPolicyKind::Fifo,
            response_timeout: SimDuration::from_millis(400),
            suppress_duration: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(100),
            exec: ExecProfile::default(),
            signed_adverts: true,
            replay_window_ms: 5_000,
            peer_ttl_ms: 10_000,
        }
    }
}

impl DapesConfig {
    /// The paper's single-hop configuration (Fig. 9g baseline).
    pub fn single_hop() -> Self {
        DapesConfig {
            multihop: false,
            ..DapesConfig::default()
        }
    }

    /// Forwarding shim for the pre-[`ExecProfile`] field.
    #[deprecated(
        since = "0.10.0",
        note = "set `exec.lazy_peek` (ExecProfile::with_lazy_peek)"
    )]
    pub fn with_lazy_peek(mut self, lazy_peek: bool) -> Self {
        self.exec.lazy_peek = lazy_peek;
        self
    }

    /// Forwarding shim for the pre-[`ExecProfile`] field.
    #[deprecated(
        since = "0.10.0",
        note = "set `exec.relay_patch` (ExecProfile::with_relay_patch)"
    )]
    pub fn with_relay_patch(mut self, relay_patch: bool) -> Self {
        self.exec.relay_patch = relay_patch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = DapesConfig::default();
        assert_eq!(c.rpf, RpfVariant::LocalNeighborhood);
        assert_eq!(c.schedule, AdvertSchedule::Interleaved(BitmapBudget::All));
        assert!(c.peba);
        assert!(c.multihop);
        assert!((c.forward_prob - 0.2).abs() < 1e-12);
        assert_eq!(c.tx_window, SimDuration::from_millis(20));
    }

    #[test]
    fn budget_targets() {
        assert_eq!(BitmapBudget::Count(2).target(5), 2);
        assert_eq!(BitmapBudget::Count(4).target(2), 2, "capped at neighbors");
        assert_eq!(BitmapBudget::All.target(3), 3);
        assert_eq!(BitmapBudget::All.target(0), 1, "never zero");
    }

    #[test]
    fn schedule_gating() {
        let first = AdvertSchedule::BitmapsFirst(BitmapBudget::Count(3));
        assert_eq!(first.required_before_fetch(5), 3);
        assert_eq!(first.required_before_fetch(1), 1);
        let inter = AdvertSchedule::Interleaved(BitmapBudget::Count(3));
        assert_eq!(
            inter.required_before_fetch(5),
            1,
            "interleaved starts after 1"
        );
        assert_eq!(inter.budget(), BitmapBudget::Count(3));
    }

    #[test]
    fn single_hop_disables_multihop_only() {
        let c = DapesConfig::single_hop();
        assert!(!c.multihop);
        assert!(c.peba);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_exec_shims_forward_to_the_profile() {
        let c = DapesConfig::default()
            .with_lazy_peek(false)
            .with_relay_patch(false);
        assert!(!c.exec.lazy_peek);
        assert!(!c.exec.relay_patch);
    }

    #[test]
    fn signed_adverts_default_on_with_paper_scale_windows() {
        let c = DapesConfig::default();
        assert!(c.signed_adverts);
        assert_eq!(c.replay_window_ms, 5_000);
        assert_eq!(c.peer_ttl_ms, 10_000);
    }
}
