//! Peer and file-collection discovery (paper §IV-B).
//!
//! Peers periodically broadcast *discovery Interests*; receivers answer with
//! discovery Data listing the metadata names of the collections they hold.
//! The beacon period adapts: frequent while peers are around, backing off
//! exponentially in isolation.

use dapes_ndn::name::Name;
use dapes_netsim::time::{SimDuration, SimTime};

/// Adaptive discovery beacon timing.
#[derive(Clone, Debug)]
pub struct DiscoveryState {
    period: SimDuration,
    min_period: SimDuration,
    max_period: SimDuration,
    /// How recently a peer must have been heard to count as "encountered".
    recent_window: SimDuration,
    last_peer_heard: Option<SimTime>,
}

impl DiscoveryState {
    /// Creates the beacon state. The period starts at `min_period`.
    pub fn new(
        min_period: SimDuration,
        max_period: SimDuration,
        recent_window: SimDuration,
    ) -> Self {
        DiscoveryState {
            period: min_period,
            min_period,
            max_period,
            recent_window,
            last_peer_heard: None,
        }
    }

    /// Notes that any peer was heard (any DAPES frame counts).
    pub fn note_peer_heard(&mut self, now: SimTime) {
        self.last_peer_heard = Some(now);
    }

    /// Computes the delay until the next beacon and advances the internal
    /// period: reset to the minimum when peers were heard recently,
    /// otherwise doubled up to the maximum.
    pub fn next_period(&mut self, now: SimTime) -> SimDuration {
        let recently = self
            .last_peer_heard
            .is_some_and(|t| now.since(t) <= self.recent_window);
        if recently {
            self.period = self.min_period;
        } else {
            self.period = SimDuration::from_micros(
                (self.period.as_micros() * 2).min(self.max_period.as_micros()),
            );
        }
        self.period
    }

    /// The current period without advancing it.
    pub fn period(&self) -> SimDuration {
        self.period
    }
}

/// One collection offered in a discovery reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfferedCollection {
    /// The collection name.
    pub collection: Name,
    /// The full metadata name (`/<collection>/metadata-file/<digest8>`).
    pub metadata: Name,
}

/// The payload of a discovery Data packet (and, in reduced form, the peer
/// id carried in discovery Interests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveryInfo {
    /// The advertising peer.
    pub peer: u32,
    /// Collections the peer can serve metadata for.
    pub offers: Vec<OfferedCollection>,
}

impl DiscoveryInfo {
    /// Serializes to bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.peer.to_be_bytes());
        out.extend_from_slice(&(self.offers.len() as u16).to_be_bytes());
        for offer in &self.offers {
            for name in [&offer.collection, &offer.metadata] {
                let uri = name.to_string();
                out.extend_from_slice(&(uri.len() as u16).to_be_bytes());
                out.extend_from_slice(uri.as_bytes());
            }
        }
        out
    }

    /// Parses the [`DiscoveryInfo::to_wire`] encoding.
    pub fn from_wire(wire: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = wire.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let peer = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let count = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let mut offers = Vec::with_capacity(count);
        for _ in 0..count {
            let mut names = Vec::with_capacity(2);
            for _ in 0..2 {
                let len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
                let uri = std::str::from_utf8(take(&mut pos, len)?).ok()?;
                names.push(Name::from_uri(uri));
            }
            let metadata = names.pop().expect("two names");
            let collection = names.pop().expect("two names");
            offers.push(OfferedCollection {
                collection,
                metadata,
            });
        }
        if pos != wire.len() {
            return None;
        }
        Some(DiscoveryInfo { peer, offers })
    }

    /// Parses a discovery payload that may carry the signed-advert envelope
    /// ([`crate::auth`]): tries the plain encoding first, then once more
    /// with the envelope trailer stripped — *without verifying it*.
    ///
    /// Like [`crate::advert_payload::decode_bitmap_params_maybe_sealed`],
    /// this serves sites that only peek at the announcement; consumers that
    /// admit it into the discovery set authenticate via
    /// [`crate::auth::open`] first.
    pub fn from_wire_maybe_sealed(wire: &[u8]) -> Option<Self> {
        DiscoveryInfo::from_wire(wire)
            .or_else(|| crate::auth::strip(wire).and_then(DiscoveryInfo::from_wire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> DiscoveryState {
        DiscoveryState::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(8),
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn period_backs_off_in_isolation() {
        let mut s = state();
        let t = SimTime::from_secs(100);
        assert_eq!(s.next_period(t), SimDuration::from_secs(2));
        assert_eq!(s.next_period(t), SimDuration::from_secs(4));
        assert_eq!(s.next_period(t), SimDuration::from_secs(8));
        assert_eq!(s.next_period(t), SimDuration::from_secs(8), "capped");
    }

    #[test]
    fn period_resets_when_peers_around() {
        let mut s = state();
        let mut t = SimTime::from_secs(100);
        s.next_period(t);
        s.next_period(t);
        assert_eq!(s.period(), SimDuration::from_secs(4));
        s.note_peer_heard(t);
        t += SimDuration::from_secs(1);
        assert_eq!(s.next_period(t), SimDuration::from_secs(1), "back to min");
    }

    #[test]
    fn stale_peer_sighting_does_not_reset() {
        let mut s = state();
        let t0 = SimTime::from_secs(100);
        s.note_peer_heard(t0);
        // 6 s later the sighting is outside the 5 s window.
        let t1 = t0 + SimDuration::from_secs(6);
        assert_eq!(s.next_period(t1), SimDuration::from_secs(2));
    }

    #[test]
    fn info_round_trip() {
        let info = DiscoveryInfo {
            peer: 42,
            offers: vec![
                OfferedCollection {
                    collection: Name::from_uri("/damaged-bridge-1533783192"),
                    metadata: Name::from_uri("/damaged-bridge-1533783192/metadata-file/A23D1F9B"),
                },
                OfferedCollection {
                    collection: Name::from_uri("/road-closure-1"),
                    metadata: Name::from_uri("/road-closure-1/metadata-file/00FF00FF"),
                },
            ],
        };
        let wire = info.to_wire();
        assert_eq!(DiscoveryInfo::from_wire(&wire), Some(info));
    }

    #[test]
    fn empty_offer_list_round_trips() {
        let info = DiscoveryInfo {
            peer: 7,
            offers: vec![],
        };
        assert_eq!(DiscoveryInfo::from_wire(&info.to_wire()), Some(info));
    }

    #[test]
    fn maybe_sealed_accepts_both_forms() {
        use dapes_crypto::signing::TrustAnchor;
        let info = DiscoveryInfo {
            peer: 5,
            offers: vec![],
        };
        let plain = info.to_wire();
        assert_eq!(
            DiscoveryInfo::from_wire_maybe_sealed(&plain),
            Some(info.clone())
        );
        let anchor = TrustAnchor::from_seed(b"discovery-tests");
        let sealed = crate::auth::seal(&plain, 9, &anchor.keypair("peer-5"));
        assert!(
            DiscoveryInfo::from_wire(&sealed).is_none(),
            "trailer rejected"
        );
        assert_eq!(DiscoveryInfo::from_wire_maybe_sealed(&sealed), Some(info));
    }

    #[test]
    fn from_wire_rejects_corruption() {
        let info = DiscoveryInfo {
            peer: 1,
            offers: vec![OfferedCollection {
                collection: Name::from_uri("/c"),
                metadata: Name::from_uri("/c/metadata-file/AA"),
            }],
        };
        let wire = info.to_wire();
        assert!(DiscoveryInfo::from_wire(&wire[..wire.len() - 1]).is_none());
        assert!(DiscoveryInfo::from_wire(&[]).is_none());
        let mut trailing = wire;
        trailing.push(9);
        assert!(DiscoveryInfo::from_wire(&trailing).is_none());
    }
}
