//! The chunked-file segment pipeline: file → fixed-size chunks → Merkle
//! tree → per-segment Data packets plus a catalog.
//!
//! This is the producer-side storage path a real file-sharing swarm needs
//! (the index/blob split of production content stores): a file's bytes are
//! cut into `chunk_size`-byte segments, each segment becomes an immutable
//! Data packet under the collection namespace
//! (`/<collection>/<file>/<seq>`), and a compact [`Catalog`] — chunk
//! geometry plus the Merkle root over the chunks — is published beside
//! them under `/<collection>/<file>/catalog`. A downloader that fetches
//! the catalog first knows exactly how many segments to request and can
//! verify each one early with a [`MerkleProof`], or the whole file at the
//! end against the root.
//!
//! In-simulation, file bytes are *seeded synthetic*: each chunk's content
//! is [`generate_content`] keyed by the segment's packet name — exactly
//! the substitution [`crate::collection`] makes — so a terabyte-scale
//! catalog costs no storage while every digest, size and proof is real.

use crate::collection::generate_content;
use crate::namespace;
use dapes_crypto::digest::Digest;
use dapes_crypto::merkle::{MerkleProof, MerkleTree};
use dapes_ndn::cs::ContentStore;
use dapes_ndn::name::Name;
use dapes_ndn::packet::Data;
use dapes_netsim::time::SimTime;

/// Compact per-file chunk metadata: geometry plus the Merkle root. This is
/// the payload of the catalog Data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Catalog {
    /// Segment payload size in bytes (the last segment may be short).
    pub chunk_size: u32,
    /// Total file size in bytes.
    pub size_bytes: u64,
    /// Number of segments (≥ 1; an empty file still has one empty segment).
    pub chunk_count: u32,
    /// Merkle root over the chunk payloads (leaf order = segment order).
    pub root: Digest,
}

impl Catalog {
    /// Encoded size: chunk_size ‖ size_bytes ‖ chunk_count ‖ root.
    pub const WIRE_SIZE: usize = 4 + 8 + 4 + 32;

    /// Fixed-layout big-endian encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        out.extend_from_slice(&self.chunk_size.to_be_bytes());
        out.extend_from_slice(&self.size_bytes.to_be_bytes());
        out.extend_from_slice(&self.chunk_count.to_be_bytes());
        out.extend_from_slice(self.root.as_bytes());
        out
    }

    /// Decodes an encoded catalog; `None` on any size or geometry
    /// mismatch (a catalog whose fields disagree with each other is as
    /// useless as a truncated one).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::WIRE_SIZE {
            return None;
        }
        let chunk_size = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
        let size_bytes = u64::from_be_bytes(bytes[4..12].try_into().ok()?);
        let chunk_count = u32::from_be_bytes(bytes[12..16].try_into().ok()?);
        let root = Digest::from_slice(&bytes[16..48])?;
        if chunk_size == 0 {
            return None;
        }
        let expect = size_bytes.div_ceil(chunk_size as u64).max(1);
        if chunk_count as u64 != expect {
            return None;
        }
        Some(Catalog {
            chunk_size,
            size_bytes,
            chunk_count,
            root,
        })
    }
}

/// A file segmented into fixed-size chunks with its Merkle tree, ready to
/// emit per-segment Data packets and a catalog.
///
/// # Examples
///
/// ```
/// use dapes_core::pipeline::ChunkedFile;
/// use dapes_ndn::name::Name;
///
/// let col = Name::from_uri("/damaged-bridge-1533783192");
/// let file = ChunkedFile::synthetic(&col, "bridge-picture", 2500, 1024);
/// assert_eq!(file.chunk_count(), 3);
/// let seg = file.segment(2).unwrap();
/// assert_eq!(seg.name().to_string(), "/damaged-bridge-1533783192/bridge-picture/2");
/// let proof = file.prove(2).unwrap();
/// assert!(proof.verify(&file.root(), seg.content()));
/// ```
#[derive(Clone, Debug)]
pub struct ChunkedFile {
    collection: Name,
    file: String,
    chunk_size: usize,
    bytes: Vec<u8>,
    tree: MerkleTree,
}

impl ChunkedFile {
    /// Chunks an in-memory byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0.
    pub fn from_bytes(
        collection: &Name,
        file: impl Into<String>,
        bytes: Vec<u8>,
        chunk_size: usize,
    ) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let tree = MerkleTree::from_chunks(&bytes, chunk_size);
        ChunkedFile {
            collection: collection.clone(),
            file: file.into(),
            chunk_size,
            bytes,
            tree,
        }
    }

    /// Builds a file of seeded synthetic bytes: chunk `seq`'s content is
    /// [`generate_content`] keyed by that segment's packet name, so any
    /// peer can regenerate identical segments from the name alone (the
    /// same substitution the collection producer makes).
    pub fn synthetic(
        collection: &Name,
        file: impl Into<String>,
        size_bytes: usize,
        chunk_size: usize,
    ) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let file = file.into();
        let mut bytes = Vec::with_capacity(size_bytes);
        let mut seq = 0u64;
        while bytes.len() < size_bytes {
            let len = chunk_size.min(size_bytes - bytes.len());
            let pname = namespace::packet_name(collection, &file, seq);
            bytes.extend_from_slice(&generate_content(&pname, len));
            seq += 1;
        }
        Self::from_bytes(collection, file, bytes, chunk_size)
    }

    /// The collection this file publishes under.
    pub fn collection(&self) -> &Name {
        &self.collection
    }

    /// The file name component.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Total file size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of segments (an empty file still has one empty segment, so
    /// every file is fetchable).
    pub fn chunk_count(&self) -> usize {
        self.bytes.len().div_ceil(self.chunk_size).max(1)
    }

    /// The payload bytes of chunk `seq`.
    pub fn chunk(&self, seq: usize) -> Option<&[u8]> {
        if seq >= self.chunk_count() {
            return None;
        }
        let start = seq * self.chunk_size;
        let end = (start + self.chunk_size).min(self.bytes.len());
        Some(&self.bytes[start..end])
    }

    /// The Merkle root over the chunks.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// The underlying Merkle tree.
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Emits the Data packet for segment `seq`:
    /// `/<collection>/<file>/<seq>` carrying the chunk payload, with no
    /// FreshnessPeriod — segments are immutable, so they serve
    /// freshness-agnostic Interests from any cache forever and never
    /// answer MustBeFresh.
    pub fn segment(&self, seq: usize) -> Option<Data> {
        let chunk = self.chunk(seq)?;
        let name = namespace::packet_name(&self.collection, &self.file, seq as u64);
        Some(Data::new(name, chunk.to_vec()))
    }

    /// All segment packets in order.
    pub fn segments(&self) -> impl Iterator<Item = Data> + '_ {
        (0..self.chunk_count()).filter_map(|seq| self.segment(seq))
    }

    /// Inclusion proof for segment `seq` against [`ChunkedFile::root`].
    pub fn prove(&self, seq: usize) -> Option<MerkleProof> {
        self.tree.prove(seq)
    }

    /// Verifies a received segment packet against a catalog: the proof
    /// must bind the packet's payload to the catalog's root at the
    /// segment's own index.
    pub fn verify_segment(catalog: &Catalog, proof: &MerkleProof, seq: usize, data: &Data) -> bool {
        proof.leaf_index == seq
            && proof.leaf_count == catalog.chunk_count as usize
            && proof.verify(&catalog.root, data.content())
    }

    /// The catalog describing this file.
    pub fn catalog(&self) -> Catalog {
        Catalog {
            chunk_size: self.chunk_size as u32,
            size_bytes: self.bytes.len() as u64,
            chunk_count: self.chunk_count() as u32,
            root: self.root(),
        }
    }

    /// The catalog Data packet under `/<collection>/<file>/catalog`. Like
    /// the segments it is immutable (no FreshnessPeriod): a new file
    /// version publishes under a new name, never by mutating a cached
    /// catalog.
    pub fn catalog_data(&self) -> Data {
        let name = namespace::catalog_name(&self.collection, &self.file);
        Data::new(name, self.catalog().encode())
    }

    /// Seeds the catalog and every segment into a Content Store (the
    /// producer- or repo-side bootstrap), returning the number of packets
    /// inserted. Insertion order is catalog first, then segments in
    /// sequence order — deterministic, so FIFO stores built this way are
    /// bit-identical across processes.
    pub fn seed_into(&self, cs: &mut ContentStore, now: SimTime) -> usize {
        cs.insert(self.catalog_data(), now);
        let mut count = 1;
        for seg in self.segments() {
            cs.insert(seg, now);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapes_crypto::merkle::leaf_hash;

    fn col() -> Name {
        Name::from_uri("/damaged-bridge-1533783192")
    }

    #[test]
    fn chunk_geometry_covers_the_file_exactly() {
        let f = ChunkedFile::synthetic(&col(), "pic", 2500, 1024);
        assert_eq!(f.chunk_count(), 3);
        assert_eq!(f.chunk(0).unwrap().len(), 1024);
        assert_eq!(f.chunk(1).unwrap().len(), 1024);
        assert_eq!(f.chunk(2).unwrap().len(), 452);
        assert!(f.chunk(3).is_none());
        let total: usize = (0..f.chunk_count())
            .map(|i| f.chunk(i).unwrap().len())
            .sum();
        assert_eq!(total, f.size_bytes());
    }

    #[test]
    fn synthetic_bytes_match_the_collection_substitution() {
        // Chunk seq's payload is generate_content(packet_name(.., seq)) —
        // identical to what the collection producer would emit for the
        // same name, so segments regenerate from the name alone.
        let f = ChunkedFile::synthetic(&col(), "pic", 2500, 1024);
        for seq in 0..f.chunk_count() {
            let pname = namespace::packet_name(&col(), "pic", seq as u64);
            let expect = generate_content(&pname, f.chunk(seq).unwrap().len());
            assert_eq!(f.chunk(seq).unwrap(), &expect[..], "chunk {seq}");
        }
        // And two builds are bit-identical.
        let g = ChunkedFile::synthetic(&col(), "pic", 2500, 1024);
        assert_eq!(f.root(), g.root());
    }

    #[test]
    fn segments_carry_namespace_names_and_are_never_fresh() {
        let f = ChunkedFile::synthetic(&col(), "pic", 2048, 1024);
        let segs: Vec<Data> = f.segments().collect();
        assert_eq!(segs.len(), 2);
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(
                seg.name(),
                &namespace::packet_name(&col(), "pic", i as u64),
                "segment {i}"
            );
            assert_eq!(
                seg.freshness_ms(),
                0,
                "immutable segments carry no freshness"
            );
        }
    }

    #[test]
    fn every_segment_verifies_against_the_catalog() {
        // The full pipeline round trip: file → chunks → tree → per-segment
        // proof → verify against the published catalog.
        let f = ChunkedFile::synthetic(&col(), "pic", 10_000, 1024);
        let catalog = Catalog::decode(f.catalog_data().content()).expect("decodes");
        assert_eq!(catalog, f.catalog());
        for seq in 0..f.chunk_count() {
            let seg = f.segment(seq).unwrap();
            let proof = f.prove(seq).unwrap();
            assert!(
                ChunkedFile::verify_segment(&catalog, &proof, seq, &seg),
                "segment {seq}"
            );
            // The proof must not validate any other segment index.
            let other = (seq + 1) % f.chunk_count();
            if other != seq {
                let wrong = f.segment(other).unwrap();
                assert!(!ChunkedFile::verify_segment(&catalog, &proof, seq, &wrong));
            }
        }
        // Deferred verification: all leaf hashes recompute the root.
        let hashes: Vec<Digest> = (0..f.chunk_count())
            .map(|i| leaf_hash(f.chunk(i).unwrap()))
            .collect();
        assert!(MerkleTree::verify_leaves(&catalog.root, hashes));
    }

    #[test]
    fn tampered_segment_fails_verification() {
        let f = ChunkedFile::synthetic(&col(), "pic", 4096, 1024);
        let catalog = f.catalog();
        let proof = f.prove(1).unwrap();
        let seg = f.segment(1).unwrap();
        let mut bad = seg.content().to_vec();
        bad[0] ^= 1;
        let forged = Data::new(seg.name().clone(), bad);
        assert!(!ChunkedFile::verify_segment(&catalog, &proof, 1, &forged));
    }

    #[test]
    fn catalog_wire_round_trips_and_rejects_inconsistency() {
        let f = ChunkedFile::synthetic(&col(), "pic", 2500, 1024);
        let c = f.catalog();
        let wire = c.encode();
        assert_eq!(wire.len(), Catalog::WIRE_SIZE);
        assert_eq!(Catalog::decode(&wire), Some(c));
        // Truncation and padding both reject.
        assert_eq!(Catalog::decode(&wire[..wire.len() - 1]), None);
        let mut padded = wire.clone();
        padded.push(0);
        assert_eq!(Catalog::decode(&padded), None);
        // A chunk_count that disagrees with the geometry rejects.
        let mut bad = wire.clone();
        bad[15] ^= 1; // chunk_count low byte
        assert_eq!(Catalog::decode(&bad), None);
        // A zero chunk_size rejects.
        let mut zeroed = wire;
        zeroed[..4].fill(0);
        assert_eq!(Catalog::decode(&zeroed), None);
    }

    #[test]
    fn empty_file_still_has_one_fetchable_segment() {
        let f = ChunkedFile::synthetic(&col(), "empty", 0, 1024);
        assert_eq!(f.chunk_count(), 1);
        assert_eq!(f.chunk(0).unwrap().len(), 0);
        let seg = f.segment(0).unwrap();
        assert!(seg.content().is_empty());
        let catalog = Catalog::decode(f.catalog_data().content()).expect("decodes");
        let proof = f.prove(0).unwrap();
        assert!(ChunkedFile::verify_segment(&catalog, &proof, 0, &seg));
    }

    #[test]
    fn seed_into_populates_catalog_and_segments() {
        use dapes_ndn::cs::{ContentStore, CsBudget, EvictionPolicyKind};
        let f = ChunkedFile::synthetic(&col(), "pic", 5000, 1024);
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(1 << 20), EvictionPolicyKind::Lru);
        let inserted = f.seed_into(&mut cs, SimTime::ZERO);
        assert_eq!(inserted, f.chunk_count() + 1);
        assert_eq!(cs.len(), inserted);
        // The catalog resolves, decodes, and describes the segments that
        // are all resident.
        let cat_data = cs
            .lookup_exact(&namespace::catalog_name(&col(), "pic"))
            .expect("catalog resident");
        let catalog = Catalog::decode(cat_data.content()).expect("decodes");
        for seq in 0..catalog.chunk_count as u64 {
            assert!(
                cs.lookup_exact(&namespace::packet_name(&col(), "pic", seq))
                    .is_some(),
                "segment {seq} resident"
            );
        }
        cs.audit().expect("clean");
    }
}
