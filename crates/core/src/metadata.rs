//! Collection metadata: secure initialization of the sharing process
//! (paper §IV-C).
//!
//! The collection producer signs a metadata file describing every file in
//! the collection. Two encodings are implemented, with the paper's
//! trade-off between size and verification latency:
//!
//! * [`MetadataFormat::PacketDigest`] — per-packet digests
//!   (`[packet-index]/[packet-digest]` subnames): large (segments into many
//!   packets) but each received packet verifies immediately.
//! * [`MetadataFormat::MerkleRoots`] — one Merkle root per file: fits in a
//!   single packet, but a file verifies only once all its packets arrived.
//!
//! The metadata also fixes the packet ordering used by bitmaps: files in
//! metadata order, packets in sequence order (paper §IV-D).

use dapes_crypto::merkle::{leaf_hash, MerkleTree};
use dapes_crypto::sha256::sha256;
use dapes_crypto::signing::Signer;
use dapes_crypto::Digest;
use dapes_ndn::name::Name;
use dapes_ndn::packet::Data;
use std::collections::BTreeMap;
use std::fmt;

use crate::namespace;

/// Truncated per-packet digest stored in the packet-digest format.
pub const PACKET_DIGEST_LEN: usize = 8;
/// Payload bytes per metadata segment.
pub const SEGMENT_SIZE: usize = 1024;

/// Which metadata encoding a collection uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MetadataFormat {
    /// Per-packet truncated digests; immediate verification.
    PacketDigest,
    /// One Merkle root per file; deferred verification.
    #[default]
    MerkleRoots,
}

/// Metadata for one file of the collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileEntry {
    /// File name (one name component).
    pub name: String,
    /// Number of packets in the file.
    pub packet_count: u32,
    /// File size in bytes (lets receivers size the final packet).
    pub size_bytes: u64,
    /// Truncated content digests (packet-digest format only).
    pub digests: Vec<[u8; PACKET_DIGEST_LEN]>,
    /// Merkle root over packet contents (Merkle format only).
    pub root: Option<Digest>,
}

/// The decoded metadata file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metadata {
    /// Encoding in use.
    pub format: MetadataFormat,
    /// The producer's name under the local trust anchor, used to locate the
    /// verification key (an NDN KeyLocator in spirit).
    pub producer: String,
    /// Packet payload size the producer segmented with.
    pub packet_size: u32,
    /// Files in collection order (this order defines the bitmap layout).
    pub files: Vec<FileEntry>,
}

/// Outcome of verifying one received packet against the metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketVerification {
    /// Digest matched (packet-digest format).
    Verified,
    /// Cannot verify until the whole file arrived (Merkle format).
    Deferred,
    /// Digest mismatch: the packet is corrupt or forged.
    Failed,
}

impl Metadata {
    /// Total packets across all files.
    pub fn total_packets(&self) -> usize {
        self.files.iter().map(|f| f.packet_count as usize).sum()
    }

    /// Builds the index that maps global packet positions to names.
    pub fn index(&self) -> PacketIndex {
        PacketIndex::new(
            self.files
                .iter()
                .map(|f| (f.name.clone(), f.packet_count))
                .collect(),
        )
    }

    /// Verifies the content of global packet `idx`.
    pub fn verify_packet(&self, idx: usize, content: &[u8]) -> PacketVerification {
        let index = self.index();
        let Some((file_pos, seq)) = index.locate(idx) else {
            return PacketVerification::Failed;
        };
        let entry = &self.files[file_pos];
        match self.format {
            MetadataFormat::PacketDigest => {
                let expect = match entry.digests.get(seq as usize) {
                    Some(d) => d,
                    None => return PacketVerification::Failed,
                };
                let got = sha256(content);
                if &got.as_bytes()[..PACKET_DIGEST_LEN] == expect {
                    PacketVerification::Verified
                } else {
                    PacketVerification::Failed
                }
            }
            MetadataFormat::MerkleRoots => PacketVerification::Deferred,
        }
    }

    /// Verifies a completed file in the Merkle format given the content
    /// digests (leaf hashes) of its packets in order. For the packet-digest
    /// format this re-checks every truncated digest.
    pub fn verify_file(&self, file_pos: usize, packet_contents: &[Vec<u8>]) -> bool {
        let Some(entry) = self.files.get(file_pos) else {
            return false;
        };
        if packet_contents.len() != entry.packet_count as usize {
            return false;
        }
        match self.format {
            MetadataFormat::MerkleRoots => {
                let Some(root) = entry.root else { return false };
                let leaves: Vec<Digest> = packet_contents.iter().map(|c| leaf_hash(c)).collect();
                MerkleTree::verify_leaves(&root, leaves)
            }
            MetadataFormat::PacketDigest => packet_contents.iter().enumerate().all(|(i, c)| {
                entry
                    .digests
                    .get(i)
                    .is_some_and(|expect| &sha256(c).as_bytes()[..PACKET_DIGEST_LEN] == expect)
            }),
        }
    }

    /// Payload size of global packet `idx`, derived from the file size and
    /// the producer's packet size.
    pub fn packet_payload_size(&self, idx: usize) -> Option<usize> {
        let (file_pos, seq) = self.index().locate(idx)?;
        let f = &self.files[file_pos];
        let ps = self.packet_size as usize;
        let full = f.size_bytes as usize / ps;
        Some(if (seq as usize) < full {
            ps
        } else {
            ((f.size_bytes as usize % ps).max(usize::from(f.size_bytes == 0))).max(1)
        })
    }

    /// Serializes the metadata body (before segmentation and signing).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(match self.format {
            MetadataFormat::PacketDigest => 0u8,
            MetadataFormat::MerkleRoots => 1u8,
        });
        out.extend_from_slice(&self.packet_size.to_be_bytes());
        let producer = self.producer.as_bytes();
        out.extend_from_slice(&(producer.len() as u16).to_be_bytes());
        out.extend_from_slice(producer);
        out.extend_from_slice(&(self.files.len() as u32).to_be_bytes());
        for f in &self.files {
            let name = f.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_be_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&f.packet_count.to_be_bytes());
            out.extend_from_slice(&f.size_bytes.to_be_bytes());
            match self.format {
                MetadataFormat::PacketDigest => {
                    for d in &f.digests {
                        out.extend_from_slice(d);
                    }
                }
                MetadataFormat::MerkleRoots => {
                    out.extend_from_slice(f.root.unwrap_or(Digest::ZERO).as_bytes());
                }
            }
        }
        out
    }

    /// Parses a body serialized by [`Metadata::encode_body`].
    pub fn decode_body(body: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = body.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let format = match take(&mut pos, 1)?[0] {
            0 => MetadataFormat::PacketDigest,
            1 => MetadataFormat::MerkleRoots,
            _ => return None,
        };
        let packet_size = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let producer_len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let producer = String::from_utf8(take(&mut pos, producer_len)?.to_vec()).ok()?;
        let file_count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        // Guard against absurd counts from corrupt input.
        if file_count > 1_000_000 {
            return None;
        }
        let mut files = Vec::with_capacity(file_count);
        for _ in 0..file_count {
            let name_len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
            let packet_count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let size_bytes = u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let mut entry = FileEntry {
                name,
                packet_count,
                size_bytes,
                digests: Vec::new(),
                root: None,
            };
            match format {
                MetadataFormat::PacketDigest => {
                    let mut digests = Vec::with_capacity(packet_count as usize);
                    for _ in 0..packet_count {
                        let d: [u8; PACKET_DIGEST_LEN] =
                            take(&mut pos, PACKET_DIGEST_LEN)?.try_into().ok()?;
                        digests.push(d);
                    }
                    entry.digests = digests;
                }
                MetadataFormat::MerkleRoots => {
                    entry.root = Digest::from_slice(take(&mut pos, 32)?);
                    entry.root?;
                }
            }
            files.push(entry);
        }
        if pos != body.len() {
            return None;
        }
        Some(Metadata {
            format,
            producer,
            packet_size,
            files,
        })
    }

    /// The 8-hex-character digest of the body, used in the metadata name
    /// (the paper's `metadata-file/A23D1F9B`).
    pub fn digest8(&self) -> String {
        sha256(&self.encode_body()).short_hex().to_uppercase()
    }

    /// The full metadata name for a collection.
    pub fn name_for(&self, collection: &Name) -> Name {
        namespace::metadata_name(collection, &self.digest8())
    }

    /// Splits the body into signed Data segments. Every segment's content
    /// is `u32 total_segments || chunk`, so a receiver learns the total from
    /// any segment.
    pub fn to_segments(&self, collection: &Name, signer: &dyn Signer) -> Vec<Data> {
        let body = self.encode_body();
        let meta_name = self.name_for(collection);
        // The body always holds at least the format byte and file count, so
        // chunks() yields at least one segment.
        let total = body.len().div_ceil(SEGMENT_SIZE).max(1) as u32;
        let mut segments = Vec::with_capacity(total as usize);
        for (i, chunk) in body.chunks(SEGMENT_SIZE).enumerate() {
            let mut content = Vec::with_capacity(4 + chunk.len());
            content.extend_from_slice(&total.to_be_bytes());
            content.extend_from_slice(chunk);
            let name = namespace::metadata_segment_name(&meta_name, i as u64);
            segments.push(Data::new(name, content).signed(signer));
        }
        segments
    }

    /// Approximate heap bytes (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.files
            .iter()
            .map(|f| f.name.len() + f.digests.len() * PACKET_DIGEST_LEN + 64)
            .sum()
    }
}

/// Reassembles metadata segments fetched out of order.
#[derive(Debug, Default)]
pub struct MetadataAssembler {
    total: Option<u32>,
    segments: BTreeMap<u32, Vec<u8>>,
}

impl MetadataAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total segment count, once any segment has been fed.
    pub fn total(&self) -> Option<u32> {
        self.total
    }

    /// Segment numbers still missing (empty until the first segment).
    pub fn missing(&self) -> Vec<u32> {
        match self.total {
            None => Vec::new(),
            Some(t) => (0..t).filter(|s| !self.segments.contains_key(s)).collect(),
        }
    }

    /// Feeds one segment's Data content. Returns the decoded metadata when
    /// complete; `None` otherwise (including on malformed input).
    pub fn feed(&mut self, segment: u32, content: &[u8]) -> Option<Metadata> {
        if content.len() < 4 {
            return None;
        }
        let total = u32::from_be_bytes(content[..4].try_into().ok()?);
        if total == 0 {
            return None;
        }
        match self.total {
            None => self.total = Some(total),
            Some(t) if t != total => return None, // inconsistent: ignore
            _ => {}
        }
        if segment >= total {
            return None;
        }
        self.segments.insert(segment, content[4..].to_vec());
        if self.segments.len() == total as usize {
            let mut body = Vec::new();
            for i in 0..total {
                body.extend_from_slice(self.segments.get(&i).expect("all present"));
            }
            Metadata::decode_body(&body)
        } else {
            None
        }
    }
}

/// Maps global packet positions (bitmap bits) to `(file, seq)` and names.
///
/// The first packet of the first file is bit 0; bits advance through each
/// file's packets, then the next file (paper §IV-D's ordering).
#[derive(Clone, PartialEq, Eq)]
pub struct PacketIndex {
    files: Vec<(String, u32)>,
    /// Cumulative packet counts; `offsets[i]` is the global index of file
    /// `i`'s first packet.
    offsets: Vec<usize>,
    total: usize,
}

impl PacketIndex {
    /// Builds an index from `(file name, packet count)` pairs in order.
    pub fn new(files: Vec<(String, u32)>) -> Self {
        let mut offsets = Vec::with_capacity(files.len());
        let mut acc = 0usize;
        for (_, count) in &files {
            offsets.push(acc);
            acc += *count as usize;
        }
        PacketIndex {
            files,
            offsets,
            total: acc,
        }
    }

    /// Total packets in the collection.
    pub fn total_packets(&self) -> usize {
        self.total
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// `(file name, packet count)` for file `pos`.
    pub fn file(&self, pos: usize) -> Option<(&str, u32)> {
        self.files.get(pos).map(|(n, c)| (n.as_str(), *c))
    }

    /// Locates global index `idx` as `(file position, seq within file)`.
    pub fn locate(&self, idx: usize) -> Option<(usize, u64)> {
        if idx >= self.total {
            return None;
        }
        let file_pos = match self.offsets.binary_search(&idx) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        Some((file_pos, (idx - self.offsets[file_pos]) as u64))
    }

    /// Global index of `(file name, seq)`.
    pub fn global_index(&self, file: &str, seq: u64) -> Option<usize> {
        let pos = self.files.iter().position(|(n, _)| n == file)?;
        if seq >= self.files[pos].1 as u64 {
            return None;
        }
        Some(self.offsets[pos] + seq as usize)
    }

    /// The NDN name of global packet `idx` under `collection`.
    pub fn packet_name(&self, collection: &Name, idx: usize) -> Option<Name> {
        let (file_pos, seq) = self.locate(idx)?;
        Some(namespace::packet_name(
            collection,
            &self.files[file_pos].0,
            seq,
        ))
    }

    /// Range of global indices belonging to file `pos`.
    pub fn file_range(&self, pos: usize) -> Option<std::ops::Range<usize>> {
        let start = *self.offsets.get(pos)?;
        Some(start..start + self.files[pos].1 as usize)
    }
}

impl fmt::Debug for PacketIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PacketIndex({} files, {} packets)",
            self.files.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapes_crypto::signing::TrustAnchor;

    fn digest_meta() -> Metadata {
        let mk = |name: &str, contents: &[&[u8]]| FileEntry {
            name: name.to_owned(),
            packet_count: contents.len() as u32,
            size_bytes: contents.iter().map(|c| c.len() as u64).sum(),
            digests: contents
                .iter()
                .map(|c| {
                    sha256(c).as_bytes()[..PACKET_DIGEST_LEN]
                        .try_into()
                        .expect("8 bytes")
                })
                .collect(),
            root: None,
        };
        Metadata {
            format: MetadataFormat::PacketDigest,
            producer: "resident-a".into(),
            packet_size: 2,
            files: vec![
                mk("bridge-picture", &[b"p0", b"p1", b"p2"]),
                mk("bridge-location", &[b"l0", b"l1"]),
            ],
        }
    }

    fn merkle_meta() -> Metadata {
        let mk = |name: &str, contents: &[&[u8]]| FileEntry {
            name: name.to_owned(),
            packet_count: contents.len() as u32,
            size_bytes: contents.iter().map(|c| c.len() as u64).sum(),
            digests: Vec::new(),
            root: Some(MerkleTree::from_leaves(contents.iter().copied()).root()),
        };
        Metadata {
            format: MetadataFormat::MerkleRoots,
            producer: "resident-a".into(),
            packet_size: 2,
            files: vec![
                mk("bridge-picture", &[b"p0", b"p1", b"p2"]),
                mk("bridge-location", &[b"l0", b"l1"]),
            ],
        }
    }

    #[test]
    fn body_round_trip_both_formats() {
        for meta in [digest_meta(), merkle_meta()] {
            let body = meta.encode_body();
            let back = Metadata::decode_body(&body).expect("decode");
            assert_eq!(back, meta);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let meta = digest_meta();
        let body = meta.encode_body();
        assert!(Metadata::decode_body(&body[..body.len() - 1]).is_none());
        assert!(Metadata::decode_body(&[]).is_none());
        let mut trailing = body.clone();
        trailing.push(0);
        assert!(Metadata::decode_body(&trailing).is_none());
        let mut bad_format = body;
        bad_format[0] = 9;
        assert!(Metadata::decode_body(&bad_format).is_none());
    }

    #[test]
    fn packet_digest_verifies_immediately() {
        let meta = digest_meta();
        assert_eq!(meta.verify_packet(0, b"p0"), PacketVerification::Verified);
        assert_eq!(meta.verify_packet(4, b"l1"), PacketVerification::Verified);
        assert_eq!(meta.verify_packet(0, b"junk"), PacketVerification::Failed);
        assert_eq!(meta.verify_packet(99, b"p0"), PacketVerification::Failed);
    }

    #[test]
    fn merkle_defers_then_verifies_file() {
        let meta = merkle_meta();
        assert_eq!(meta.verify_packet(0, b"p0"), PacketVerification::Deferred);
        assert!(meta.verify_file(0, &[b"p0".to_vec(), b"p1".to_vec(), b"p2".to_vec()]));
        assert!(!meta.verify_file(0, &[b"p0".to_vec(), b"junk".to_vec(), b"p2".to_vec()]));
        assert!(!meta.verify_file(0, &[b"p0".to_vec()]), "wrong count");
        assert!(meta.verify_file(1, &[b"l0".to_vec(), b"l1".to_vec()]));
        assert!(!meta.verify_file(9, &[]));
    }

    #[test]
    fn packet_digest_verify_file_rechecks_all() {
        let meta = digest_meta();
        assert!(meta.verify_file(1, &[b"l0".to_vec(), b"l1".to_vec()]));
        assert!(
            !meta.verify_file(1, &[b"l1".to_vec(), b"l0".to_vec()]),
            "order matters"
        );
    }

    #[test]
    fn digest8_is_stable_and_name_shaped() {
        let meta = merkle_meta();
        let d8 = meta.digest8();
        assert_eq!(d8.len(), 8);
        assert_eq!(meta.digest8(), d8);
        let name = meta.name_for(&Name::from_uri("/damaged-bridge-1533783192"));
        assert_eq!(
            name.to_string(),
            format!("/damaged-bridge-1533783192/metadata-file/{d8}")
        );
    }

    #[test]
    fn merkle_metadata_fits_one_segment() {
        let meta = merkle_meta();
        let anchor = TrustAnchor::from_seed(b"a");
        let segs = meta.to_segments(&Name::from_uri("/col"), &anchor.keypair("p"));
        assert_eq!(segs.len(), 1, "paper: merkle metadata fits a single packet");
        assert!(segs[0].verify(&anchor));
    }

    #[test]
    fn large_digest_metadata_segments_and_reassembles() {
        // 3000 packets x 8-byte digests ≈ 24 KB -> ~24 segments.
        let contents: Vec<Vec<u8>> = (0..3000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let meta = Metadata {
            format: MetadataFormat::PacketDigest,
            producer: "p".into(),
            packet_size: 4,
            files: vec![FileEntry {
                name: "big".into(),
                packet_count: contents.len() as u32,
                size_bytes: contents.iter().map(|c| c.len() as u64).sum(),
                digests: contents
                    .iter()
                    .map(|c| {
                        sha256(c).as_bytes()[..PACKET_DIGEST_LEN]
                            .try_into()
                            .expect("8")
                    })
                    .collect(),
                root: None,
            }],
        };
        let anchor = TrustAnchor::from_seed(b"a");
        let segs = meta.to_segments(&Name::from_uri("/col"), &anchor.keypair("p"));
        assert!(segs.len() > 10, "got {} segments", segs.len());

        // Feed out of order.
        let mut asm = MetadataAssembler::new();
        let mut result = None;
        for (i, seg) in segs.iter().enumerate().rev() {
            assert!(seg.verify(&anchor));
            let segno = seg.name().last().and_then(|c| c.to_seq()).expect("seg no") as u32;
            assert_eq!(segno as usize, i);
            result = asm.feed(segno, seg.content());
        }
        assert_eq!(result.expect("complete"), meta);
    }

    #[test]
    fn assembler_reports_missing_and_tolerates_dupes() {
        let meta = digest_meta();
        let anchor = TrustAnchor::from_seed(b"a");
        let segs = meta.to_segments(&Name::from_uri("/col"), &anchor.keypair("p"));
        assert_eq!(segs.len(), 1);
        let mut asm = MetadataAssembler::new();
        assert!(asm.missing().is_empty());
        let out = asm.feed(0, segs[0].content());
        assert_eq!(out.expect("complete"), meta);
        // Duplicate feed just re-completes.
        assert!(asm.feed(0, segs[0].content()).is_some());
        // Bad segment number ignored.
        assert!(asm.feed(99, segs[0].content()).is_none());
    }

    #[test]
    fn index_maps_bits_like_the_paper() {
        // Paper §IV-D: first file's packets first; the first packet of the
        // second file is bit 100 for a 100-packet first file.
        let idx = PacketIndex::new(vec![
            ("bridge-picture".into(), 100),
            ("bridge-location".into(), 2),
        ]);
        assert_eq!(idx.total_packets(), 102);
        assert_eq!(idx.locate(0), Some((0, 0)));
        assert_eq!(idx.locate(99), Some((0, 99)));
        assert_eq!(idx.locate(100), Some((1, 0)));
        assert_eq!(idx.locate(101), Some((1, 1)));
        assert_eq!(idx.locate(102), None);
        assert_eq!(idx.global_index("bridge-location", 0), Some(100));
        assert_eq!(idx.global_index("bridge-location", 2), None);
        assert_eq!(idx.global_index("nope", 0), None);
        let name = idx
            .packet_name(&Name::from_uri("/damaged-bridge-1533783192"), 100)
            .expect("name");
        assert_eq!(
            name.to_string(),
            "/damaged-bridge-1533783192/bridge-location/0"
        );
        assert_eq!(idx.file_range(0), Some(0..100));
        assert_eq!(idx.file_range(1), Some(100..102));
    }

    #[test]
    fn index_round_trips_via_metadata() {
        let meta = digest_meta();
        let idx = meta.index();
        for i in 0..meta.total_packets() {
            let (fp, seq) = idx.locate(i).expect("in range");
            let (fname, _) = idx.file(fp).expect("file");
            assert_eq!(idx.global_index(fname, seq), Some(i));
        }
    }
}
