//! Frame-kind constants and per-peer protocol statistics.
//!
//! The frame kinds let the simulator's per-kind transmission counters
//! reproduce the paper's overhead breakdowns: for DAPES the overhead is
//! "discovery Interests and data, bitmap Interests and data, and the
//! Interest/data packets transmitted for the file collection sharing,
//! including forwarding transmissions by intermediate nodes" (§VI-B).

use dapes_netsim::radio::FrameKind;
use dapes_netsim::time::SimTime;

/// DAPES frame kinds (baselines use 20+).
pub mod kinds {
    use super::FrameKind;

    /// Discovery Interest beacon.
    pub const DISCOVERY_INTEREST: FrameKind = FrameKind(1);
    /// Discovery Data reply.
    pub const DISCOVERY_DATA: FrameKind = FrameKind(2);
    /// Metadata segment Interest.
    pub const METADATA_INTEREST: FrameKind = FrameKind(3);
    /// Metadata segment Data.
    pub const METADATA_DATA: FrameKind = FrameKind(4);
    /// Bitmap (advertisement) Interest.
    pub const BITMAP_INTEREST: FrameKind = FrameKind(5);
    /// Bitmap Data reply.
    pub const BITMAP_DATA: FrameKind = FrameKind(6);
    /// Content Interest.
    pub const CONTENT_INTEREST: FrameKind = FrameKind(7);
    /// Content Data.
    pub const CONTENT_DATA: FrameKind = FrameKind(8);

    /// Every DAPES kind, i.e. the paper's DAPES overhead set.
    pub const ALL_DAPES: [FrameKind; 8] = [
        DISCOVERY_INTEREST,
        DISCOVERY_DATA,
        METADATA_INTEREST,
        METADATA_DATA,
        BITMAP_INTEREST,
        BITMAP_DATA,
        CONTENT_INTEREST,
        CONTENT_DATA,
    ];
}

/// Counters kept by each DAPES peer.
#[derive(Clone, Debug, Default)]
pub struct PeerStats {
    /// Content Interests sent (first transmissions).
    pub interests_sent: u64,
    /// Content Interest retransmissions.
    pub retransmissions: u64,
    /// Content Data packets received for our own downloads.
    pub data_received: u64,
    /// Packets that verified (immediately or via a completed file).
    pub packets_verified: u64,
    /// Verification failures (corrupt or forged packets dropped).
    pub verify_failures: u64,
    /// Bitmaps we transmitted (Interests carrying ours plus replies).
    pub bitmaps_sent: u64,
    /// Bitmaps received/overheard from others.
    pub bitmaps_heard: u64,
    /// Bitmap transmissions cancelled because the union covered us.
    pub bitmaps_cancelled: u64,
    /// PEBA backoffs taken after detected collisions.
    pub peba_backoffs: u64,
    /// Discovery beacons sent.
    pub discovery_sent: u64,
    /// Data replies we served to other peers.
    pub packets_served: u64,
    /// Interests we re-broadcast as an intermediate node.
    pub interests_forwarded: u64,
    /// Overheard frames fully resolved from a name-first header peek,
    /// without a full TLV decode — always the sum of the six per-outcome
    /// counters below.
    pub frames_peek_resolved: u64,
    /// Peek-resolved Interests answered from the Content Store (exact hits
    /// through the wire index plus CanBePrefix hits through the ordered
    /// wire index).
    pub peek_cs_hits: u64,
    /// Peek-resolved Interests dropped as duplicate nonces.
    pub peek_dup_nonces: u64,
    /// Peek-resolved Interests dropped for lack of a usable FIB route (the
    /// not-for-me case: PIT entry recorded, forwarding suppressed).
    pub peek_fib_drops: u64,
    /// Peek-resolved Data frames that matched no PIT entry and were neither
    /// cached nor wanted.
    pub peek_unsolicited_data: u64,
    /// Peek-resolved Interests relayed on the decode-free path: PIT entry
    /// recorded and the frame re-broadcast (or the hop limit found
    /// exhausted) without constructing an `Interest`.
    pub peek_relayed: u64,
    /// Peek-resolved Interests the forwarding strategy suppressed on the
    /// decode-free path (PIT entry still recorded).
    pub peek_relay_suppressed: u64,
    /// Frames actually re-broadcast on the decode-free relay path — the
    /// received bytes handed straight back to the radio, hop-limit byte
    /// patched copy-on-write when the Interest carries one. A subset of
    /// [`PeerStats::peek_relayed`], which also counts hop-exhausted relays
    /// that transmit nothing.
    pub frames_relay_patched: u64,
    /// Sealed adverts/discovery replies dropped for a bad or forged
    /// signature (wrong tag, truncated envelope, or a key id that does not
    /// match the claimed producer).
    pub adverts_rejected_bad_sig: u64,
    /// Sealed adverts/discovery replies dropped by the replay guard
    /// (timestamp at or below the producer's high-water mark, or older
    /// than the replay window).
    pub adverts_rejected_replay: u64,
    /// Producers swept from the replay table after going unheard for the
    /// peer TTL (stale-peer expiry of the authenticated discovery set).
    pub peers_expired: u64,
    /// Content/metadata Data frames dropped before any Content Store or
    /// PIT state was touched because their signature failed to verify.
    pub segments_rejected_tamper: u64,
    /// Interests dropped as duplicate nonces that arrived *after* the PIT
    /// entry's own lifetime was refreshed by a replayed copy — i.e. the
    /// dup-nonce drops attributable to re-injected (not merely flooded)
    /// Interests.
    pub interests_rejected_replay: u64,
    /// Frames that failed to parse as NDN packets at all and were dropped
    /// on the floor (the noise-flood sink).
    pub flood_frames_dropped: u64,
    /// Outstanding fetches abandoned after `max_retx` backed-off
    /// retransmissions (content packets are requeued for a later window;
    /// metadata segments re-enter the fetch plan on the next encounter).
    pub retx_give_ups: u64,
    /// Neighbors expired from the multi-hop neighbor table after going
    /// unheard for the neighbor timeout — crashed or departed peers leaving
    /// the forwarding strategy's view.
    pub neighbors_expired: u64,
    /// Segments a restarted downloader salvaged from its previous
    /// incarnation and never re-fetched.
    pub resumed_segments_skipped: u64,
    /// Content Interests sent for a segment the salvaged state already
    /// held — always zero unless resume is broken.
    pub resumed_refetch: u64,
    /// Completion time of all wanted collections, once reached.
    pub completed_at: Option<SimTime>,
}

impl PeerStats {
    /// Records completion once; later calls keep the first time.
    pub fn complete(&mut self, now: SimTime) {
        if self.completed_at.is_none() {
            self.completed_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in kinds::ALL_DAPES {
            assert!(seen.insert(k), "duplicate kind {k:?}");
        }
    }

    #[test]
    fn completion_records_first_time_only() {
        let mut s = PeerStats::default();
        assert_eq!(s.completed_at, None);
        s.complete(SimTime::from_secs(5));
        s.complete(SimTime::from_secs(9));
        assert_eq!(s.completed_at, Some(SimTime::from_secs(5)));
    }
}
