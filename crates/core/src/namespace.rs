//! The DAPES namespace (paper §IV-A, §IV-B).
//!
//! Three kinds of names exist:
//!
//! * **Collection data**: `/<collection>/<file>/<seq>`, e.g.
//!   `/damaged-bridge-1533783192/bridge-picture/0`. The collection component
//!   carries a Unix timestamp suffix chosen by the producer.
//! * **Metadata**: `/<collection>/metadata-file/<digest8>/<segment>`, where
//!   `digest8` is a short digest of the metadata body (the paper's
//!   `metadata-file/A23D1F9B`).
//! * **Signalling** under the application prefix `/dapes`:
//!   `/dapes/discovery` for peer/collection discovery and
//!   `/dapes/bitmap/<collection>/<origin-peer>/<round>` for advertisements.

use dapes_ndn::name::{Component, Name};

/// The reserved application prefix.
pub const APP_PREFIX: &str = "/dapes";
/// The discovery namespace component.
pub const DISCOVERY: &str = "discovery";
/// The bitmap (advertisement) namespace component.
pub const BITMAP: &str = "bitmap";
/// The metadata file-name component.
pub const METADATA_FILE: &str = "metadata-file";

/// Returns the discovery prefix `/dapes/discovery`.
pub fn discovery_prefix() -> Name {
    Name::from_uri(APP_PREFIX).child(DISCOVERY)
}

/// Name of a peer's discovery reply: `/dapes/discovery/<peer>`.
pub fn discovery_reply_name(peer: u32) -> Name {
    discovery_prefix().child(peer as u64)
}

/// Returns the bitmap prefix `/dapes/bitmap`.
pub fn bitmap_prefix() -> Name {
    Name::from_uri(APP_PREFIX).child(BITMAP)
}

/// Name of a bitmap Interest: `/dapes/bitmap/<collection>/<origin>/<round>`.
///
/// The collection name is flattened into a single component using its URI
/// string so the bitmap namespace stays fixed-depth.
pub fn bitmap_interest_name(collection: &Name, origin_peer: u32, round: u64) -> Name {
    bitmap_prefix()
        .child(Component::from_str_component(&collection.to_string()))
        .child(origin_peer as u64)
        .child(round)
}

/// Name of a bitmap reply: the Interest name plus the replier component.
pub fn bitmap_reply_name(interest_name: &Name, replier: u32) -> Name {
    interest_name.child(replier as u64)
}

/// Parses `/dapes/bitmap/<collection>/<origin>/<round>[/<replier>]`.
///
/// Returns `(collection, origin, round, Option<replier>)`.
pub fn parse_bitmap_name(name: &Name) -> Option<(Name, u32, u64, Option<u32>)> {
    if !bitmap_prefix().is_prefix_of(name) || name.len() < 5 {
        return None;
    }
    let collection = Name::from_uri(std::str::from_utf8(name.component(2)?.as_bytes()).ok()?);
    let origin = name.component(3)?.to_seq()? as u32;
    let round = name.component(4)?.to_seq()?;
    let replier = name.component(5).and_then(|c| c.to_seq()).map(|s| s as u32);
    Some((collection, origin, round, replier))
}

/// Name of packet `seq` of `file` in `collection`.
pub fn packet_name(collection: &Name, file: &str, seq: u64) -> Name {
    collection.child(file).child(seq)
}

/// The per-file catalog component (chunked-file pipeline).
pub const CATALOG: &str = "catalog";

/// Name of a file's chunk catalog: `/<collection>/<file>/catalog`.
///
/// The textual `catalog` component can never collide with a content
/// packet's numeric `<seq>` tail, so the catalog lives beside the
/// segments under the same file prefix.
pub fn catalog_name(collection: &Name, file: &str) -> Name {
    collection.child(file).child(CATALOG)
}

/// The metadata name for a collection: `/<collection>/metadata-file/<digest8>`.
pub fn metadata_name(collection: &Name, digest8: &str) -> Name {
    collection.child(METADATA_FILE).child(digest8)
}

/// Name of one metadata segment.
pub fn metadata_segment_name(metadata: &Name, segment: u64) -> Name {
    metadata.child(segment)
}

/// Classifies a name within the DAPES namespace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DapesName {
    /// A discovery Interest or reply.
    Discovery {
        /// Replier peer for reply names.
        replier: Option<u32>,
    },
    /// A bitmap Interest or reply.
    Bitmap {
        /// The collection the bitmap describes.
        collection: Name,
        /// The peer that opened the advertisement round.
        origin: u32,
        /// Monotonic round counter (keeps names fresh across rounds).
        round: u64,
        /// The replier, for reply names.
        replier: Option<u32>,
    },
    /// A metadata segment: `/<collection>/metadata-file/<digest8>/<seg>`.
    Metadata {
        /// The collection prefix.
        collection: Name,
        /// Metadata name including digest: `/<collection>/metadata-file/<d8>`.
        metadata: Name,
        /// Segment number, when present.
        segment: Option<u64>,
    },
    /// A collection content packet `/<collection>/<file>/<seq>`.
    Content {
        /// The collection prefix.
        collection: Name,
        /// File name component as text.
        file: String,
        /// Packet sequence within the file.
        seq: u64,
    },
}

/// Parses any DAPES name. Content names are recognised by shape
/// (3 components with a numeric tail) once the `/dapes` and metadata forms
/// are excluded.
pub fn classify(name: &Name) -> Option<DapesName> {
    if discovery_prefix().is_prefix_of(name) {
        let replier = name.component(2).and_then(|c| c.to_seq()).map(|s| s as u32);
        return Some(DapesName::Discovery { replier });
    }
    if let Some((collection, origin, round, replier)) = parse_bitmap_name(name) {
        return Some(DapesName::Bitmap {
            collection,
            origin,
            round,
            replier,
        });
    }
    // Metadata: /<collection>/metadata-file/<digest8>[/<seg>]
    if name.len() >= 3 {
        let c1 = name.component(1)?;
        if c1.as_bytes() == METADATA_FILE.as_bytes() {
            let collection = name.prefix(1);
            let metadata = name.prefix(3);
            let segment = name.component(3).and_then(|c| c.to_seq());
            return Some(DapesName::Metadata {
                collection,
                metadata,
                segment,
            });
        }
    }
    // Content: /<collection>/<file>/<seq>
    if name.len() == 3 {
        let seq = name.component(2)?.to_seq()?;
        let file = std::str::from_utf8(name.component(1)?.as_bytes())
            .ok()?
            .to_owned();
        return Some(DapesName::Content {
            collection: name.prefix(1),
            file,
            seq,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_names() {
        assert_eq!(discovery_prefix().to_string(), "/dapes/discovery");
        assert_eq!(discovery_reply_name(7).to_string(), "/dapes/discovery/7");
        assert_eq!(
            classify(&discovery_prefix()),
            Some(DapesName::Discovery { replier: None })
        );
        assert_eq!(
            classify(&discovery_reply_name(7)),
            Some(DapesName::Discovery { replier: Some(7) })
        );
    }

    #[test]
    fn bitmap_names_round_trip() {
        let col = Name::from_uri("/damaged-bridge-1533783192");
        let iname = bitmap_interest_name(&col, 3, 12);
        let (c, o, r, rep) = parse_bitmap_name(&iname).expect("parses");
        assert_eq!((c, o, r, rep), (col.clone(), 3, 12, None));
        let rname = bitmap_reply_name(&iname, 9);
        let (c2, o2, r2, rep2) = parse_bitmap_name(&rname).expect("parses");
        assert_eq!((c2, o2, r2, rep2), (col, 3, 12, Some(9)));
    }

    #[test]
    fn content_names_classify() {
        let col = Name::from_uri("/damaged-bridge-1533783192");
        let n = packet_name(&col, "bridge-picture", 0);
        assert_eq!(n.to_string(), "/damaged-bridge-1533783192/bridge-picture/0");
        match classify(&n) {
            Some(DapesName::Content {
                collection,
                file,
                seq,
            }) => {
                assert_eq!(collection, col);
                assert_eq!(file, "bridge-picture");
                assert_eq!(seq, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metadata_names_classify() {
        let col = Name::from_uri("/damaged-bridge-1533783192");
        let meta = metadata_name(&col, "A23D1F9B");
        let seg = metadata_segment_name(&meta, 2);
        match classify(&seg) {
            Some(DapesName::Metadata {
                collection,
                metadata,
                segment,
            }) => {
                assert_eq!(collection, col);
                assert_eq!(metadata, meta);
                assert_eq!(segment, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        match classify(&meta) {
            Some(DapesName::Metadata { segment, .. }) => assert_eq!(segment, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn catalog_names_sit_beside_segments_without_classifying_as_content() {
        let col = Name::from_uri("/damaged-bridge-1533783192");
        let cat = catalog_name(&col, "bridge-picture");
        assert_eq!(
            cat.to_string(),
            "/damaged-bridge-1533783192/bridge-picture/catalog"
        );
        // Same file prefix as the segments, so one CanBePrefix Interest
        // namespace covers both.
        assert!(col.child("bridge-picture").is_prefix_of(&cat));
        // The textual tail never parses as a content sequence number.
        assert_eq!(classify(&cat), None);
    }

    #[test]
    fn non_dapes_names_rejected() {
        assert_eq!(classify(&Name::from_uri("/col/file/not-a-number")), None);
        assert_eq!(classify(&Name::from_uri("/col")), None);
        assert_eq!(classify(&Name::from_uri("/col/a/b/c/d")), None);
    }

    #[test]
    fn content_packet_names_with_nested_collection_flatten_in_bitmap() {
        // Collection names with several components survive the bitmap
        // flattening.
        let col = Name::from_uri("/area/damaged-bridge-1");
        let iname = bitmap_interest_name(&col, 1, 1);
        let (c, ..) = parse_bitmap_name(&iname).expect("parses");
        assert_eq!(c, col);
    }
}
