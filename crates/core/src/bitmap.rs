//! Compact possession bitmaps (paper §IV-D).
//!
//! Each bit maps to one packet of a collection, ordered by the position of
//! the file in the metadata and the packet within the file. Peers exchange
//! these in bitmap Interests/Data to advertise what they hold.

use std::fmt;

/// A fixed-size bitmap over the packets of one collection.
///
/// # Examples
///
/// ```
/// use dapes_core::bitmap::Bitmap;
///
/// let mut b = Bitmap::new(10);
/// b.set(3);
/// b.set(7);
/// assert_eq!(b.count_set(), 2);
/// assert!(b.get(3) && !b.get(4));
/// assert_eq!(Bitmap::from_wire(&b.to_wire()).expect("round trip"), b);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap over `len` packets.
    pub fn new(len: usize) -> Self {
        Bitmap {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bitmap (a complete peer, e.g. the producer).
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap::new(len);
        for w in &mut b.bits {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of packets this bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero packets.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`. Returns whether the bit was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let word = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        let newly = *word & mask == 0;
        *word |= mask;
        newly
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_missing(&self) -> usize {
        self.len - self.count_set()
    }

    /// Whether every packet is present.
    pub fn is_complete(&self) -> bool {
        self.count_set() == self.len
    }

    /// Fraction of packets present, in `[0, 1]`; zero-length bitmaps count
    /// as complete.
    pub fn fraction_set(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.count_set() as f64 / self.len as f64
        }
    }

    /// Iterator over indices of set bits.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Iterator over indices of missing bits.
    pub fn iter_missing(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Count of bits set in `self` but clear in `other` — "packets I have
    /// that are missing from the previously transmitted bitmaps", the PEBA
    /// priority quantity (paper §IV-F).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn count_set_and_missing_from(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Serializes as `u32 len || packed little-endian words`.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len() * 8);
        out.extend_from_slice(&(self.len as u32).to_be_bytes());
        let n_bytes = self.len.div_ceil(8);
        let mut bytes = Vec::with_capacity(self.bits.len() * 8);
        for w in &self.bits {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&bytes[..n_bytes]);
        out
    }

    /// Parses the [`Bitmap::to_wire`] encoding.
    pub fn from_wire(wire: &[u8]) -> Option<Self> {
        if wire.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(wire[..4].try_into().ok()?) as usize;
        let n_bytes = len.div_ceil(8);
        let body = wire.get(4..4 + n_bytes)?;
        let mut bits = vec![0u64; len.div_ceil(64)];
        for (i, &byte) in body.iter().enumerate() {
            bits[i / 8] |= (byte as u64) << ((i % 8) * 8);
        }
        let mut b = Bitmap { bits, len };
        b.mask_tail();
        Some(b)
    }

    /// Wire size in bytes for a bitmap of `len` packets.
    pub fn wire_size(len: usize) -> usize {
        4 + len.div_ceil(8)
    }

    /// Approximate heap bytes (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.bits.len() * 8 + 16
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({}/{})", self.count_set(), self.len)
    }
}

impl fmt::Display for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero_full_is_all_one() {
        let z = Bitmap::new(100);
        assert_eq!(z.count_set(), 0);
        assert_eq!(z.count_missing(), 100);
        let f = Bitmap::full(100);
        assert!(f.is_complete());
        assert_eq!(f.count_set(), 100);
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(129), "already set");
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_set(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn full_masks_tail_bits() {
        let f = Bitmap::full(70);
        assert_eq!(f.count_set(), 70);
        // Round-trip must preserve exactly 70.
        let rt = Bitmap::from_wire(&f.to_wire()).expect("round trip");
        assert_eq!(rt.count_set(), 70);
    }

    #[test]
    fn wire_round_trip_various_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 128, 1000, 10240] {
            let mut b = Bitmap::new(len);
            for i in (0..len).step_by(3) {
                b.set(i);
            }
            let wire = b.to_wire();
            assert_eq!(wire.len(), Bitmap::wire_size(len));
            assert_eq!(
                Bitmap::from_wire(&wire).expect("round trip"),
                b,
                "len={len}"
            );
        }
    }

    #[test]
    fn from_wire_rejects_truncation() {
        let b = Bitmap::full(100);
        let wire = b.to_wire();
        assert!(Bitmap::from_wire(&wire[..wire.len() - 1]).is_none());
        assert!(Bitmap::from_wire(&[]).is_none());
        assert!(Bitmap::from_wire(&[0, 0]).is_none());
    }

    #[test]
    fn paper_bitmap_size_example() {
        // 10 files x 1 MB at 1 KB packets = 10240 packets -> 1284 bytes.
        assert_eq!(Bitmap::wire_size(10_240), 4 + 1280);
    }

    #[test]
    fn union_and_difference_counts() {
        let mut a = Bitmap::new(10);
        let mut b = Bitmap::new(10);
        for i in [0, 1, 2, 3] {
            a.set(i);
        }
        for i in [2, 3, 4, 5] {
            b.set(i);
        }
        assert_eq!(a.count_set_and_missing_from(&b), 2); // {0,1}
        assert_eq!(b.count_set_and_missing_from(&a), 2); // {4,5}
        a.union_with(&b);
        assert_eq!(a.count_set(), 6);
        assert_eq!(b.count_set_and_missing_from(&a), 0);
    }

    #[test]
    fn figure5_priority_counts() {
        // Paper Fig. 5: A=1001011000, B=0110001000, C=0000000111(0), D=1001100000.
        // Wait — D's bitmap is 9 bits in the figure; normalise all to 10.
        let parse = |s: &str| {
            let mut b = Bitmap::new(10);
            for (i, c) in s.chars().enumerate() {
                if c == '1' {
                    b.set(i);
                }
            }
            b
        };
        let a = parse("1001011000");
        let b = parse("0110001000");
        let c = parse("0000000111");
        let d = parse("1001100000");
        // Six packets missing from A's bitmap: {1,2,4,7,8,9}.
        assert_eq!(a.count_missing(), 6);
        // C has three of them, B two, D one (paper's worked example).
        assert_eq!(c.count_set_and_missing_from(&a), 3);
        assert_eq!(b.count_set_and_missing_from(&a), 2);
        assert_eq!(d.count_set_and_missing_from(&a), 1);
    }

    #[test]
    fn iterators_cover_set_and_missing() {
        let mut b = Bitmap::new(6);
        b.set(1);
        b.set(4);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(b.iter_missing().collect::<Vec<_>>(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn fraction_set_handles_empty() {
        assert_eq!(Bitmap::new(0).fraction_set(), 1.0);
        let mut b = Bitmap::new(4);
        b.set(0);
        assert!((b.fraction_set() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_truncates() {
        let b = Bitmap::new(100);
        assert!(b.to_string().ends_with('…'));
        assert_eq!(Bitmap::new(3).to_string(), "000");
    }
}
