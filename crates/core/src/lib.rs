//! DAPES: DAta-centric Peer-to-peer filE Sharing for off-the-grid
//! scenarios — a Rust reproduction of the ICDCS 2020 paper.
//!
//! DAPES shares file collections among intermittently connected mobile
//! peers on top of Named Data Networking. This crate implements the paper's
//! full design:
//!
//! * the hierarchical [`namespace`] identifying collections, files and
//!   packets (§IV-A);
//! * signed [`metadata`] in packet-digest and Merkle-tree encodings (§IV-C);
//! * compact possession [`bitmap`]s and their exchange as data
//!   advertisements (§IV-D);
//! * [`rpf`] — local-neighborhood and encounter-based Rarest-Piece-First
//!   fetching (§IV-E);
//! * [`advert`] — advertisement transmission prioritization and the PEBA
//!   collision-mitigation backoff (§IV-F);
//! * [`multihop`] — forwarding/suppression over the NDN stateful forwarding
//!   plane, for pure forwarders and DAPES intermediate nodes (§V);
//! * [`peer`] — the complete peer state machine, runnable on the
//!   [`dapes_netsim`] simulator;
//! * [`auth`] — the signed advert/discovery envelope, monotonic stamps and
//!   the replay high-water-mark guard;
//! * [`adversary`] — attacker node types (forger, tamperer, replayer,
//!   flooder) for the adversarial scenario axis.
//!
//! # Quick start
//!
//! ```
//! use dapes_core::prelude::*;
//! use dapes_crypto::signing::TrustAnchor;
//!
//! // A producer builds a collection of two files.
//! let spec = CollectionSpec {
//!     name: dapes_ndn::name::Name::from_uri("/damaged-bridge-1533783192"),
//!     files: vec![
//!         FileSpec::new("bridge-picture", 100 * 1024),
//!         FileSpec::new("bridge-location", 2 * 1024),
//!     ],
//!     packet_size: 1024,
//!     format: MetadataFormat::MerkleRoots,
//!     producer: "resident-a".into(),
//! };
//! let collection = Collection::build(spec);
//! assert_eq!(collection.total_packets(), 102);
//!
//! // Peers verify its metadata under the shared local trust anchor.
//! let anchor = TrustAnchor::from_seed(b"rural-area");
//! let segments = collection.metadata_segments(&anchor);
//! assert!(segments.iter().all(|s| s.verify(&anchor)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod advert;
pub mod advert_payload;
pub mod auth;
pub mod bitmap;
pub mod collection;
pub mod config;
pub mod discovery;
pub mod metadata;
pub mod multihop;
pub mod namespace;
pub mod peer;
pub mod pipeline;
pub mod rpf;
pub mod stats;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::adversary::{Adversary, AdversaryKind};
    pub use crate::advert::AdvertScheduler;
    pub use crate::auth::{MonotonicStamp, ReplayGuard, ReplayVerdict};
    pub use crate::bitmap::Bitmap;
    pub use crate::collection::{Collection, CollectionSpec, FileSpec};
    pub use crate::config::{AdvertSchedule, BitmapBudget, DapesConfig};
    pub use crate::discovery::{DiscoveryInfo, OfferedCollection};
    pub use crate::metadata::{Metadata, MetadataFormat, PacketIndex};
    pub use crate::multihop::{MultihopState, NodeRole};
    pub use crate::peer::{DapesPeer, SalvagedDownload, WantPolicy};
    pub use crate::pipeline::{Catalog, ChunkedFile};
    pub use crate::rpf::{RpfVariant, StartPacket};
    pub use crate::stats::{kinds, PeerStats};
}

pub use prelude::*;
