//! Rarest-Piece-First data fetching strategies (paper §IV-E).
//!
//! Two rarity estimators are implemented:
//!
//! * [`RpfVariant::LocalNeighborhood`] — rarity counts how many *currently
//!   connected* peers lack a packet; the list expires with the encounter
//!   (no long-term state).
//! * [`RpfVariant::EncounterBased`] — rarity is estimated over a bounded
//!   history of bitmaps from previously encountered peers.
//!
//! Ties are broken by sequence position ("same packet" start) or by a
//! per-peer pseudo-random shuffle ("random packet" start), the design knob
//! of Fig. 9a.

use crate::bitmap::Bitmap;
use std::collections::VecDeque;

/// Which RPF flavour a peer runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RpfVariant {
    /// Rarity across the current neighborhood (default; paper's winner).
    #[default]
    LocalNeighborhood,
    /// Rarity across a bounded history of encountered peers.
    EncounterBased,
}

/// Tie-breaking order for equally rare packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StartPacket {
    /// Everyone starts from the same (lowest-index) packet.
    Same,
    /// Each peer starts from a per-peer random permutation (the paper shows
    /// this downloads 11–15 % faster by diversifying replication).
    #[default]
    Random,
}

/// Bounded FIFO of bitmaps from encountered peers, for
/// [`RpfVariant::EncounterBased`].
#[derive(Clone, Debug)]
pub struct EncounterHistory {
    bitmaps: VecDeque<(u32, Bitmap)>,
    capacity: usize,
}

impl EncounterHistory {
    /// Creates a history remembering at most `capacity` peers.
    pub fn new(capacity: usize) -> Self {
        EncounterHistory {
            bitmaps: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records (or refreshes) a peer's bitmap.
    pub fn record(&mut self, peer: u32, bitmap: Bitmap) {
        self.bitmaps.retain(|(p, _)| *p != peer);
        self.bitmaps.push_back((peer, bitmap));
        while self.bitmaps.len() > self.capacity {
            self.bitmaps.pop_front();
        }
    }

    /// Bitmaps currently remembered.
    pub fn bitmaps(&self) -> impl Iterator<Item = &Bitmap> {
        self.bitmaps.iter().map(|(_, b)| b)
    }

    /// Number of remembered peers.
    pub fn len(&self) -> usize {
        self.bitmaps.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.bitmaps.is_empty()
    }

    /// Approximate heap bytes (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.bitmaps.iter().map(|(_, b)| b.state_bytes() + 4).sum()
    }
}

/// Computes per-packet rarity: how many of `bitmaps` *lack* each packet.
/// Higher is rarer. Packets nobody advertises score `bitmaps.len()`.
pub fn rarity_counts<'a, I>(total_packets: usize, bitmaps: I) -> Vec<u32>
where
    I: IntoIterator<Item = &'a Bitmap>,
{
    let mut rarity = vec![0u32; total_packets];
    for bm in bitmaps {
        for (i, r) in rarity
            .iter_mut()
            .enumerate()
            .take(bm.len().min(total_packets))
        {
            if !bm.get(i) {
                *r += 1;
            }
        }
    }
    rarity
}

/// A deterministic per-peer tie-break key (SplitMix64 of the index).
fn shuffle_key(seed: u64, idx: usize) -> u64 {
    let mut z = seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Produces the fetch order for `missing` packets: descending rarity, ties
/// broken per `start`.
///
/// `seed` individualises the [`StartPacket::Random`] shuffle per peer.
pub fn fetch_order(
    missing: impl IntoIterator<Item = usize>,
    rarity: &[u32],
    start: StartPacket,
    seed: u64,
) -> Vec<usize> {
    let mut order: Vec<usize> = missing.into_iter().collect();
    match start {
        StartPacket::Same => {
            order.sort_by_key(|&i| (std::cmp::Reverse(rarity.get(i).copied().unwrap_or(0)), i));
        }
        StartPacket::Random => {
            order.sort_by_key(|&i| {
                (
                    std::cmp::Reverse(rarity.get(i).copied().unwrap_or(0)),
                    shuffle_key(seed, i),
                )
            });
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &str) -> Bitmap {
        let mut b = Bitmap::new(bits.len());
        for (i, c) in bits.chars().enumerate() {
            if c == '1' {
                b.set(i);
            }
        }
        b
    }

    #[test]
    fn rarity_counts_missing_peers() {
        let b1 = bm("1100");
        let b2 = bm("1010");
        let rarity = rarity_counts(4, [&b1, &b2]);
        // packet 0: both have -> 0; packet 1: b2 lacks -> 1;
        // packet 2: b1 lacks -> 1; packet 3: both lack -> 2.
        assert_eq!(rarity, vec![0, 1, 1, 2]);
    }

    #[test]
    fn rarity_with_no_bitmaps_is_zero() {
        assert_eq!(rarity_counts(3, []), vec![0, 0, 0]);
    }

    #[test]
    fn rarity_handles_shorter_bitmaps() {
        let short = bm("10");
        let rarity = rarity_counts(4, [&short]);
        assert_eq!(
            rarity,
            vec![0, 1, 0, 0],
            "bits past the bitmap are unknown, not missing"
        );
    }

    #[test]
    fn fetch_order_puts_rarest_first() {
        let rarity = vec![0, 3, 1, 2];
        let order = fetch_order(0..4, &rarity, StartPacket::Same, 0);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn same_start_breaks_ties_by_index() {
        let rarity = vec![1, 1, 1, 1];
        let order = fetch_order(0..4, &rarity, StartPacket::Same, 99);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_start_differs_per_seed_but_is_deterministic() {
        let rarity = vec![1; 64];
        let o1 = fetch_order(0..64, &rarity, StartPacket::Random, 7);
        let o2 = fetch_order(0..64, &rarity, StartPacket::Random, 7);
        let o3 = fetch_order(0..64, &rarity, StartPacket::Random, 8);
        assert_eq!(o1, o2, "same seed, same order");
        assert_ne!(o1, o3, "different seeds diversify");
        let mut sorted = o1;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn random_start_still_respects_rarity() {
        let mut rarity = vec![0; 10];
        rarity[7] = 5;
        let order = fetch_order(0..10, &rarity, StartPacket::Random, 3);
        assert_eq!(order[0], 7, "rarest packet always first");
    }

    #[test]
    fn fetch_order_restricted_to_missing() {
        let rarity = vec![9, 8, 7, 6];
        let order = fetch_order([1, 3], &rarity, StartPacket::Same, 0);
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn encounter_history_bounded_fifo() {
        let mut h = EncounterHistory::new(2);
        h.record(1, bm("10"));
        h.record(2, bm("01"));
        h.record(3, bm("11"));
        assert_eq!(h.len(), 2);
        let peers: Vec<u32> = h.bitmaps.iter().map(|(p, _)| *p).collect();
        assert_eq!(peers, vec![2, 3], "oldest evicted");
    }

    #[test]
    fn encounter_history_refresh_moves_to_back() {
        let mut h = EncounterHistory::new(2);
        h.record(1, bm("10"));
        h.record(2, bm("01"));
        h.record(1, bm("11")); // refresh peer 1
        h.record(3, bm("00"));
        let peers: Vec<u32> = h.bitmaps.iter().map(|(p, _)| *p).collect();
        assert_eq!(peers, vec![1, 3], "peer 2 evicted, refreshed 1 survives");
    }

    #[test]
    fn local_vs_encounter_rarity_can_disagree() {
        // Current neighborhood has packet 0 everywhere; the history says
        // packet 0 is rare in the swarm.
        let neighbor = bm("11");
        let mut history = EncounterHistory::new(4);
        history.record(5, bm("01"));
        history.record(6, bm("01"));
        let local = rarity_counts(2, [&neighbor]);
        let enc = rarity_counts(2, history.bitmaps());
        assert!(local[0] < enc[0]);
    }
}
