//! File collections and the producer side of DAPES.
//!
//! A [`Collection`] describes a named group of files segmented into
//! fixed-size packets (the paper's damaged-bridge example: a picture file
//! plus a location file grouped under `/damaged-bridge-<timestamp>`).
//!
//! # Content model
//!
//! Packet contents are *deterministically generated* from the packet name
//! (seeded by SHA-256). This reproduces everything the evaluation measures —
//! packet sizes, air time, digests, verification — while letting the
//! simulator run collections of hundreds of megabytes without peers
//! retaining payload bytes: any peer that *has* a packet (a bitmap bit) can
//! regenerate and re-sign it on demand, because signing keys derive from the
//! shared trust anchor (see `DESIGN.md`, substitutions).

use crate::metadata::{FileEntry, Metadata, MetadataFormat, PacketIndex, PACKET_DIGEST_LEN};
use dapes_crypto::merkle::MerkleTree;
use dapes_crypto::sha256::sha256;
use dapes_crypto::signing::TrustAnchor;
use dapes_ndn::name::Name;
use dapes_ndn::packet::Data;

/// Description of one file to include in a collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileSpec {
    /// File name (used as a name component).
    pub name: String,
    /// File size in bytes.
    pub size_bytes: usize,
}

impl FileSpec {
    /// Creates a file spec.
    pub fn new(name: impl Into<String>, size_bytes: usize) -> Self {
        FileSpec {
            name: name.into(),
            size_bytes,
        }
    }
}

/// Parameters for building a [`Collection`].
#[derive(Clone, Debug)]
pub struct CollectionSpec {
    /// The collection name, e.g. `/damaged-bridge-1533783192`.
    pub name: Name,
    /// Files in order (their order fixes the bitmap layout).
    pub files: Vec<FileSpec>,
    /// Packet payload size in bytes (paper: 1 KB).
    pub packet_size: usize,
    /// Metadata encoding.
    pub format: MetadataFormat,
    /// Producer identity under the trust anchor.
    pub producer: String,
}

impl CollectionSpec {
    /// The paper's default workload: `n_files` files of `file_size` bytes
    /// each at 1 KB packets (§VI-B1: ten 1 MB files unless noted).
    pub fn uniform(name: &str, n_files: usize, file_size: usize) -> Self {
        CollectionSpec {
            name: Name::from_uri(name),
            files: (0..n_files)
                .map(|i| FileSpec::new(format!("file-{i}"), file_size))
                .collect(),
            packet_size: 1024,
            format: MetadataFormat::MerkleRoots,
            producer: "producer".to_owned(),
        }
    }
}

/// Deterministic packet content: a SHA-256-seeded byte stream keyed by the
/// packet name.
pub fn generate_content(packet_name: &Name, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    let seed = sha256(packet_name.to_string().as_bytes());
    let mut counter = 0u64;
    while out.len() < size {
        let block = sha256(&[seed.as_bytes().as_slice(), &counter.to_be_bytes()].concat());
        let take = (size - out.len()).min(32);
        out.extend_from_slice(&block.as_bytes()[..take]);
        counter += 1;
    }
    out
}

/// A fully described collection: spec, per-packet layout, and signed
/// metadata. Cheap to clone is *not* a goal; share via `Rc`/`Arc` if needed.
#[derive(Clone, Debug)]
pub struct Collection {
    spec: CollectionSpec,
    metadata: Metadata,
    index: PacketIndex,
}

impl Collection {
    /// Builds a collection: computes per-packet digests (or Merkle roots)
    /// over the generated contents and assembles the metadata.
    pub fn build(spec: CollectionSpec) -> Self {
        let mut files = Vec::with_capacity(spec.files.len());
        for file in &spec.files {
            let packet_count = file.size_bytes.div_ceil(spec.packet_size).max(1) as u32;
            let mut digests = Vec::new();
            let mut leaf_payloads: Vec<Vec<u8>> = Vec::new();
            for seq in 0..packet_count {
                let pname = crate::namespace::packet_name(&spec.name, &file.name, seq as u64);
                let psize = packet_payload_size(file.size_bytes, spec.packet_size, seq);
                let content = generate_content(&pname, psize);
                match spec.format {
                    MetadataFormat::PacketDigest => {
                        let d: [u8; PACKET_DIGEST_LEN] = sha256(&content).as_bytes()
                            [..PACKET_DIGEST_LEN]
                            .try_into()
                            .expect("8 bytes");
                        digests.push(d);
                    }
                    MetadataFormat::MerkleRoots => leaf_payloads.push(content),
                }
            }
            let root = match spec.format {
                MetadataFormat::MerkleRoots => {
                    Some(MerkleTree::from_leaves(leaf_payloads.iter().map(|v| v.as_slice())).root())
                }
                MetadataFormat::PacketDigest => None,
            };
            files.push(FileEntry {
                name: file.name.clone(),
                packet_count,
                size_bytes: file.size_bytes as u64,
                digests,
                root,
            });
        }
        let metadata = Metadata {
            format: spec.format,
            producer: spec.producer.clone(),
            packet_size: spec.packet_size as u32,
            files,
        };
        let index = metadata.index();
        Collection {
            spec,
            metadata,
            index,
        }
    }

    /// The collection name.
    pub fn name(&self) -> &Name {
        &self.spec.name
    }

    /// The signed-metadata description.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// The packet index (bitmap layout).
    pub fn index(&self) -> &PacketIndex {
        &self.index
    }

    /// Total packets.
    pub fn total_packets(&self) -> usize {
        self.index.total_packets()
    }

    /// The producer name.
    pub fn producer(&self) -> &str {
        &self.spec.producer
    }

    /// The metadata name `/collection/metadata-file/<digest8>`.
    pub fn metadata_name(&self) -> Name {
        self.metadata.name_for(&self.spec.name)
    }

    /// Signed metadata segments, produced with the producer's key.
    pub fn metadata_segments(&self, anchor: &TrustAnchor) -> Vec<Data> {
        let key = anchor.keypair(&self.spec.producer);
        self.metadata.to_segments(&self.spec.name, &key)
    }

    /// Payload size of global packet `idx`.
    pub fn packet_size_of(&self, idx: usize) -> Option<usize> {
        let (file_pos, seq) = self.index.locate(idx)?;
        let file = &self.spec.files[file_pos];
        Some(packet_payload_size(
            file.size_bytes,
            self.spec.packet_size,
            seq as u32,
        ))
    }

    /// Regenerates and signs the Data packet at global index `idx`.
    ///
    /// Any peer holding the trust anchor can produce bit-identical packets,
    /// which is how peers serve packets without retaining payload bytes.
    pub fn packet_data(&self, idx: usize, anchor: &TrustAnchor) -> Option<Data> {
        let name = self.index.packet_name(&self.spec.name, idx)?;
        let size = self.packet_size_of(idx)?;
        let content = generate_content(&name, size);
        let key = anchor.keypair(&self.spec.producer);
        Some(Data::new(name, content).signed(&key))
    }
}

/// Regenerates and signs the Data packet at global index `idx` of a
/// collection known only through its `metadata` — this is how downloaders
/// serve packets they hold without retaining payload bytes.
pub fn regenerate_packet(
    collection: &Name,
    metadata: &Metadata,
    idx: usize,
    anchor: &TrustAnchor,
) -> Option<Data> {
    let index = metadata.index();
    let name = index.packet_name(collection, idx)?;
    let size = metadata.packet_payload_size(idx)?;
    let content = generate_content(&name, size);
    let key = anchor.keypair(&metadata.producer);
    Some(Data::new(name, content).signed(&key))
}

fn packet_payload_size(file_size: usize, packet_size: usize, seq: u32) -> usize {
    let full = file_size / packet_size;
    if (seq as usize) < full {
        packet_size
    } else {
        // Final (possibly short) packet; empty files still get one packet.
        (file_size % packet_size).max(usize::from(file_size == 0))
    }
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::PacketVerification;

    fn anchor() -> TrustAnchor {
        TrustAnchor::from_seed(b"rural-area")
    }

    fn small_spec(format: MetadataFormat) -> CollectionSpec {
        CollectionSpec {
            name: Name::from_uri("/damaged-bridge-1533783192"),
            files: vec![
                FileSpec::new("bridge-picture", 2500),
                FileSpec::new("bridge-location", 900),
            ],
            packet_size: 1024,
            format,
            producer: "resident-a".into(),
        }
    }

    #[test]
    fn packet_layout_matches_sizes() {
        let col = Collection::build(small_spec(MetadataFormat::MerkleRoots));
        // 2500 B -> 3 packets (1024, 1024, 452); 900 B -> 1 packet.
        assert_eq!(col.total_packets(), 4);
        assert_eq!(col.packet_size_of(0), Some(1024));
        assert_eq!(col.packet_size_of(2), Some(452));
        assert_eq!(col.packet_size_of(3), Some(900));
        assert_eq!(col.packet_size_of(4), None);
    }

    #[test]
    fn content_is_deterministic_and_name_dependent() {
        let n1 = Name::from_uri("/c/f/0");
        let n2 = Name::from_uri("/c/f/1");
        assert_eq!(generate_content(&n1, 100), generate_content(&n1, 100));
        assert_ne!(generate_content(&n1, 100), generate_content(&n2, 100));
        assert_eq!(generate_content(&n1, 100).len(), 100);
        assert_eq!(generate_content(&n1, 0).len(), 0);
        // Prefix property: longer generations extend shorter ones.
        let long = generate_content(&n1, 200);
        assert_eq!(&long[..100], &generate_content(&n1, 100)[..]);
    }

    #[test]
    fn regenerated_packets_verify_against_digest_metadata() {
        let col = Collection::build(small_spec(MetadataFormat::PacketDigest));
        let a = anchor();
        for idx in 0..col.total_packets() {
            let data = col.packet_data(idx, &a).expect("packet");
            assert!(data.verify(&a), "signature at {idx}");
            assert_eq!(
                col.metadata().verify_packet(idx, data.content()),
                PacketVerification::Verified,
                "digest at {idx}"
            );
        }
    }

    #[test]
    fn regenerated_packets_verify_against_merkle_metadata() {
        let col = Collection::build(small_spec(MetadataFormat::MerkleRoots));
        let a = anchor();
        // Per-packet is deferred; whole file verifies.
        let data0 = col.packet_data(0, &a).expect("packet");
        assert_eq!(
            col.metadata().verify_packet(0, data0.content()),
            PacketVerification::Deferred
        );
        for (file_pos, range) in
            (0..col.index().file_count()).map(|p| (p, col.index().file_range(p).expect("range")))
        {
            let contents: Vec<Vec<u8>> = range
                .map(|i| col.packet_data(i, &a).expect("packet").content().to_vec())
                .collect();
            assert!(col.metadata().verify_file(file_pos, &contents));
        }
    }

    #[test]
    fn metadata_segments_verify_and_reassemble() {
        let col = Collection::build(small_spec(MetadataFormat::PacketDigest));
        let a = anchor();
        let segs = col.metadata_segments(&a);
        let mut asm = crate::metadata::MetadataAssembler::new();
        let mut out = None;
        for seg in &segs {
            assert!(seg.verify(&a));
            let segno = seg.name().last().and_then(|c| c.to_seq()).expect("seg") as u32;
            out = asm.feed(segno, seg.content());
        }
        assert_eq!(&out.expect("complete"), col.metadata());
    }

    #[test]
    fn uniform_spec_matches_paper_default() {
        let col = Collection::build(CollectionSpec::uniform("/col", 10, 1_000_000));
        // ceil(1 MB / 1 KB) = 977 packets per file.
        assert_eq!(col.total_packets(), 9770);
        assert_eq!(col.index().file_count(), 10);
    }

    #[test]
    fn regenerate_from_metadata_matches_producer_packets() {
        let col = Collection::build(small_spec(MetadataFormat::PacketDigest));
        let a = anchor();
        for idx in 0..col.total_packets() {
            let from_collection = col.packet_data(idx, &a).expect("producer packet");
            let from_metadata =
                regenerate_packet(col.name(), col.metadata(), idx, &a).expect("regenerated packet");
            assert_eq!(from_collection, from_metadata, "packet {idx}");
        }
    }

    #[test]
    fn two_builds_are_identical() {
        let c1 = Collection::build(small_spec(MetadataFormat::MerkleRoots));
        let c2 = Collection::build(small_spec(MetadataFormat::MerkleRoots));
        assert_eq!(c1.metadata(), c2.metadata());
        assert_eq!(c1.metadata_name(), c2.metadata_name());
        let a = anchor();
        assert_eq!(c1.packet_data(2, &a), c2.packet_data(2, &a));
    }

    #[test]
    fn empty_file_still_has_one_packet() {
        let col = Collection::build(CollectionSpec {
            name: Name::from_uri("/c"),
            files: vec![FileSpec::new("empty", 0)],
            packet_size: 1024,
            format: MetadataFormat::PacketDigest,
            producer: "p".into(),
        });
        assert_eq!(col.total_packets(), 1);
        assert_eq!(col.packet_size_of(0), Some(1));
    }
}
