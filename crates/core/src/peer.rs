//! The DAPES peer: the application state machine tying together discovery,
//! metadata retrieval, bitmap advertisements, RPF fetching, PEBA, and
//! multi-hop forwarding (paper Fig. 3).
//!
//! One [`DapesPeer`] is a [`NetStack`]: it owns an NDN forwarder whose
//! wireless face is the simulator's broadcast channel, and implements every
//! peer role of the paper:
//!
//! * **producer** — call [`DapesPeer::add_production`];
//! * **downloader** — configure [`WantPolicy`];
//! * **intermediate DAPES node** — any peer with `WantPolicy::Nothing`
//!   still overhears, builds knowledge and forwards per §V-B;
//! * **pure forwarder** — construct with [`DapesPeer::pure_forwarder`]:
//!   NDN-only caching and probabilistic forwarding per §V-A.

use crate::advert::AdvertScheduler;
use crate::advert_payload::{decode_bitmap_params_maybe_sealed, encode_bitmap_params};
use crate::auth::{self, MonotonicStamp, OpenError, ReplayGuard, ReplayVerdict};
use crate::bitmap::Bitmap;
use crate::collection::{regenerate_packet, Collection};
use crate::config::DapesConfig;
use crate::discovery::{DiscoveryInfo, DiscoveryState, OfferedCollection};
use crate::metadata::{Metadata, MetadataAssembler, PacketIndex, PacketVerification};
use crate::multihop::{DapesStrategy, MultihopState, NodeRole};
use crate::namespace::{self, DapesName};
use crate::rpf::{fetch_order, rarity_counts, EncounterHistory, RpfVariant};
use crate::stats::{kinds, PeerStats};
use dapes_crypto::merkle::leaf_hash;
use dapes_crypto::signing::TrustAnchor;
use dapes_crypto::Digest;
use dapes_ndn::face::FaceId;
use dapes_ndn::forwarder::{Action, Forwarder, ForwarderConfig, PeekOutcome};
use dapes_ndn::name::Name;
use dapes_ndn::packet::{Data, Interest, Packet, PacketHeader};
use dapes_netsim::node::{NetStack, NodeCtx, TimerHandle, TxOutcome};
use dapes_netsim::payload::Payload;
use dapes_netsim::radio::{Frame, FrameKind};
use dapes_netsim::time::{SimDuration, SimTime};
use rand::Rng;
use std::any::Any;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Which collections a peer tries to download.
#[derive(Clone, Debug, Default)]
pub enum WantPolicy {
    /// Download nothing (producers, intermediate nodes).
    #[default]
    Nothing,
    /// Download every discovered collection.
    Everything,
    /// Download these collections only.
    Collections(Vec<Name>),
}

impl WantPolicy {
    fn wants(&self, collection: &Name) -> bool {
        match self {
            WantPolicy::Nothing => false,
            WantPolicy::Everything => true,
            WantPolicy::Collections(list) => list.contains(collection),
        }
    }
}

const TOKEN_TICK: u64 = 1 << 56;
const TOKEN_DISCOVERY: u64 = 2 << 56;
const TOKEN_PENDING: u64 = 3 << 56;
const TOKEN_MASK: u64 = 0xff << 56;

/// Overheard-nonce journal capacity: enough for several replay windows of
/// traffic in a dense cell, bounded so a nonce-minting flooder cannot grow
/// it without limit.
const NONCE_JOURNAL_CAP: usize = 4096;

#[derive(Debug)]
enum PendingPayload {
    /// A fully built packet to transmit (shared wire buffer).
    Raw(Payload),
    /// Our bitmap reply for a collection, rebuilt at fire time.
    BitmapReply { collection: Name, reply_name: Name },
    /// Our own advertisement round (a bitmap Interest), built at fire time.
    BitmapInterest { collection: Name },
    /// Our discovery reply, built at fire time.
    DiscoveryReply,
}

#[derive(Debug)]
struct Pending {
    payload: PendingPayload,
    kind: FrameKind,
    timer: TimerHandle,
    /// Cancel when Data with this exact name is overheard.
    cancel_on_data: Option<Name>,
    /// Cancel when an Interest with this (name, nonce) is overheard again —
    /// someone else forwarded it first.
    cancel_on_nonce: Option<(Name, u32)>,
    /// Record as a forwarded Interest for suppression bookkeeping.
    forwarded_name: Option<Name>,
}

#[derive(Debug)]
struct InflightTx {
    /// Collection whose bitmap we transmitted, for PEBA feedback.
    bitmap_collection: Option<Name>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    FetchingMetadata,
    Active,
    Complete,
}

struct Download {
    collection: Name,
    metadata_name: Name,
    phase: Phase,
    assembler: MetadataAssembler,
    /// Outstanding metadata segment requests: seg -> (sent, retx count).
    meta_outstanding: BTreeMap<u32, (SimTime, u32)>,
    metadata: Option<Arc<Metadata>>,
    index: Option<PacketIndex>,
    have: Bitmap,
    /// Per-packet content leaf hashes retained until the file verifies
    /// (Merkle format), then dropped.
    leaf_hashes: Vec<Option<Digest>>,
    files_verified: Vec<bool>,
    /// Outstanding content requests: global idx -> (sent, retx count).
    outstanding: BTreeMap<usize, (SimTime, u32)>,
    /// Cached fetch order, consumed from the back.
    queue: Vec<usize>,
    queue_dirty: bool,
    bitmaps_this_encounter: usize,
    advert_rounds_this_encounter: usize,
    /// Highest advertisement round seen per origin peer: a new round opens
    /// a fresh prioritization burst (resets the transmitted-bitmap union).
    rounds_seen: BTreeMap<u32, u64>,
    last_advert: Option<SimTime>,
    advert: AdvertScheduler,
    history: EncounterHistory,
    completed_at: Option<SimTime>,
    /// Segments salvaged from a previous incarnation (crash + restart):
    /// a content Interest for any of these is a resume bug, counted in
    /// [`PeerStats::resumed_refetch`].
    resumed: Option<Bitmap>,
}

impl Download {
    fn state_bytes(&self) -> usize {
        self.have.state_bytes()
            + self.leaf_hashes.iter().flatten().count() * 32
            + self.metadata.as_ref().map_or(0, |m| m.state_bytes())
            + self.outstanding.len() * 24
            + self.queue.len() * 8
            + self.history.state_bytes()
    }
}

/// A collection this peer produces or fully seeds.
struct Seed {
    collection: Arc<Collection>,
    segments: Arc<Vec<Data>>,
}

/// The DAPES application peer (a [`NetStack`] for the simulator).
pub struct DapesPeer {
    id: u32,
    cfg: DapesConfig,
    anchor: TrustAnchor,
    role: NodeRole,
    forwarder: Forwarder,
    shared: Arc<Mutex<MultihopState>>,
    seeding: BTreeMap<Name, Seed>,
    downloads: BTreeMap<Name, Download>,
    wanted: WantPolicy,
    discovery: DiscoveryState,
    advert_round: u64,
    pending: BTreeMap<u64, Pending>,
    inflight: BTreeMap<u64, InflightTx>,
    next_pending: u64,
    encounter_active: bool,
    stats: PeerStats,
    /// Monotonic timestamp source for sealing our own announcements.
    stamp: MonotonicStamp,
    /// Per-producer high-water marks for verified announcements.
    replay: ReplayGuard,
    /// First-seen times of overheard Interest nonces: a nonce re-injected
    /// after the replay window is a replayed Interest, not a wireless echo.
    nonce_journal: BTreeMap<u32, SimTime>,
    /// Download state restored from a crashed incarnation, pending until
    /// the catalog is re-fetched and the download re-activates.
    salvaged: BTreeMap<Name, SalvagedDownload>,
}

/// Download state that survives a crash: what a wreck yields to the fresh
/// stack that replaces it, so a restarted downloader completes without
/// re-fetching segments it already verified.
///
/// Obtained from the dead peer with [`DapesPeer::salvage`] and handed to
/// its successor with [`DapesPeer::restore`]; the successor re-fetches the
/// catalog through the normal discovery path and folds the salvaged
/// segments in when the download re-activates.
#[derive(Clone, Debug)]
pub struct SalvagedDownload {
    /// The collection the download was for.
    pub collection: Name,
    /// Surviving segments: global packet index plus the retained content
    /// leaf hash for files still awaiting Merkle verification (`None` once
    /// a file verified and dropped its hashes).
    pub segments: Vec<(usize, Option<Digest>)>,
    /// Per-file verification flags at crash time.
    pub files_verified: Vec<bool>,
}

impl DapesPeer {
    /// Creates a full DAPES peer.
    pub fn new(id: u32, cfg: DapesConfig, anchor: TrustAnchor, wanted: WantPolicy) -> Self {
        Self::with_role(id, cfg, anchor, wanted, NodeRole::Dapes)
    }

    /// Creates a pure forwarder (§V-A): caches overheard Data, forwards
    /// probabilistically, no DAPES semantics.
    pub fn pure_forwarder(id: u32, cfg: DapesConfig, anchor: TrustAnchor) -> Self {
        Self::with_role(
            id,
            cfg,
            anchor,
            WantPolicy::Nothing,
            NodeRole::PureForwarder,
        )
    }

    fn with_role(
        id: u32,
        cfg: DapesConfig,
        anchor: TrustAnchor,
        wanted: WantPolicy,
        role: NodeRole,
    ) -> Self {
        let mut shared = MultihopState::new(role, cfg.multihop, cfg.forward_prob, id as u64 + 17);
        shared.response_timeout = cfg.response_timeout;
        shared.suppress_duration = cfg.suppress_duration;
        shared.neighbor_timeout = cfg.neighbor_timeout;
        let shared = Arc::new(Mutex::new(shared));
        let fwd_cfg = ForwarderConfig {
            cs_capacity: cfg.cs_capacity,
            cs_budget_bytes: cfg.cs_budget_bytes,
            cs_policy: cfg.cs_policy,
            cache_unsolicited: role == NodeRole::PureForwarder,
            rebroadcast_faces: vec![FaceId::WIRELESS],
            deliver_on_aggregate: vec![FaceId::APP],
            relay_patch: cfg.exec.relay_patch,
            legacy_tables: false,
        };
        let mut forwarder =
            Forwarder::with_strategy(fwd_cfg, Box::new(DapesStrategy::new(shared.clone())));
        forwarder.fib_mut().register(Name::root(), FaceId::WIRELESS);
        if role == NodeRole::Dapes {
            let dapes = Name::from_uri(namespace::APP_PREFIX);
            forwarder.fib_mut().register(dapes.clone(), FaceId::APP);
            forwarder.fib_mut().register(dapes, FaceId::WIRELESS);
        }
        let discovery =
            DiscoveryState::new(cfg.discovery_min, cfg.discovery_max, cfg.discovery_recent);
        let replay = ReplayGuard::new(
            256,
            SimDuration::from_millis(cfg.replay_window_ms),
            SimDuration::from_millis(cfg.peer_ttl_ms),
        );
        DapesPeer {
            id,
            cfg,
            anchor,
            role,
            forwarder,
            shared,
            seeding: BTreeMap::new(),
            downloads: BTreeMap::new(),
            wanted,
            discovery,
            advert_round: 0,
            pending: BTreeMap::new(),
            inflight: BTreeMap::new(),
            next_pending: 0,
            encounter_active: false,
            stats: PeerStats::default(),
            stamp: MonotonicStamp::default(),
            replay,
            nonce_journal: BTreeMap::new(),
            salvaged: BTreeMap::new(),
        }
    }

    /// Extracts the download state worth keeping across a crash: one
    /// [`SalvagedDownload`] per download whose catalog had been fetched
    /// (completed downloads included, so a finished peer does not restart
    /// from zero). Call on the wreck from a restart stack factory.
    pub fn salvage(&self) -> Vec<SalvagedDownload> {
        self.downloads
            .values()
            .filter(|d| d.phase != Phase::FetchingMetadata)
            .map(|d| SalvagedDownload {
                collection: d.collection.clone(),
                segments: d
                    .have
                    .iter_set()
                    .map(|i| (i, d.leaf_hashes.get(i).copied().flatten()))
                    .collect(),
                files_verified: d.files_verified.clone(),
            })
            .collect()
    }

    /// Installs salvaged download state into a freshly-booted peer. The
    /// segments are folded into the matching download when its catalog is
    /// re-fetched ([`PeerStats::resumed_segments_skipped`] counts them);
    /// until then they sit pending. Call before the first callback runs.
    pub fn restore(&mut self, salvaged: Vec<SalvagedDownload>) {
        for s in salvaged {
            self.salvaged.insert(s.collection.clone(), s);
        }
    }

    /// The peer id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Registers a collection this peer produces: it seeds all packets and
    /// serves signed metadata.
    pub fn add_production(&mut self, collection: Arc<Collection>) {
        let name = collection.name().clone();
        let segments = Arc::new(collection.metadata_segments(&self.anchor));
        let total = collection.total_packets();
        {
            let mut sh = self.shared.lock().expect("multihop state");
            sh.indices.insert(name.clone(), collection.index().clone());
            sh.have.insert(name.clone(), Bitmap::full(total));
        }
        self.register_collection_prefix(&name);
        self.seeding.insert(
            name,
            Seed {
                collection,
                segments,
            },
        );
    }

    /// Seeds a chunked file's catalog and segments straight into this
    /// peer's Content Store (the repo-side bootstrap of the segment
    /// pipeline): overheard Interests for the catalog or any segment are
    /// answered from cache without touching the download protocol.
    /// Registers the collection prefix so Interests route here, and
    /// returns the number of packets inserted.
    pub fn seed_chunked_file(
        &mut self,
        file: &crate::pipeline::ChunkedFile,
        now: SimTime,
    ) -> usize {
        self.register_collection_prefix(file.collection());
        file.seed_into(self.forwarder.cs_mut(), now)
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// Completion time across all wanted collections, once reached.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.stats.completed_at
    }

    /// Whether every tracked download finished.
    pub fn downloads_complete(&self) -> bool {
        !self.downloads.is_empty() && self.downloads.values().all(|d| d.phase == Phase::Complete)
    }

    /// Download progress for a collection in `[0, 1]`.
    pub fn progress(&self, collection: &Name) -> Option<f64> {
        self.downloads
            .get(collection)
            .map(|d| d.have.fraction_set())
    }

    /// The multi-hop forwarding accuracy (§VI-D's 83 % metric).
    pub fn forward_accuracy(&self) -> Option<f64> {
        self.shared
            .lock()
            .expect("multihop state")
            .forward_accuracy()
    }

    /// The NDN forwarder's decision statistics.
    pub fn forwarder_stats(&self) -> dapes_ndn::forwarder::ForwarderStats {
        *self.forwarder.stats()
    }

    /// Read access to the forwarder's Content Store, for tests asserting
    /// cache hygiene (a tampered segment must never be cached, or it would
    /// be re-served to later Interests with the peer's own authority).
    pub fn content_store(&self) -> &dapes_ndn::cs::ContentStore {
        self.forwarder.cs()
    }

    /// Number of scheduled-but-unfired transmissions (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Forward success/failure counters.
    pub fn forward_counts(&self) -> (u64, u64) {
        let sh = self.shared.lock().expect("multihop state");
        (sh.forward_successes, sh.forward_failures)
    }

    fn register_collection_prefix(&mut self, collection: &Name) {
        self.forwarder
            .fib_mut()
            .register(collection.clone(), FaceId::APP);
        self.forwarder
            .fib_mut()
            .register(collection.clone(), FaceId::WIRELESS);
    }

    // ------------------------------------------------------------------
    // Outbound plumbing
    // ------------------------------------------------------------------

    fn jitter(&self, ctx: &mut NodeCtx<'_>) -> SimDuration {
        let w = self.cfg.tx_window.as_micros().max(1);
        SimDuration::from_micros(ctx.rng().gen_range(0..w))
    }

    /// Sends our own Interest through the forwarder (creating PIT state) and
    /// broadcasts it with jitter.
    ///
    /// If the Interest aggregates into an existing PIT entry (a
    /// retransmission, or an entry created by an overheard neighbor
    /// Interest), the forwarder returns no send action — but the frame must
    /// still go on the air, since consumer retransmissions are how losses
    /// recover. A Content-Store hit on our own Interest is delivered
    /// straight to the application.
    fn express_interest(&mut self, ctx: &mut NodeCtx<'_>, interest: Interest, kind: FrameKind) {
        if self.cfg.signed_adverts {
            // Journal our own nonce: we never hear our own transmission, so
            // without this a replayed copy of our own Interest would pass
            // the replay screen unrecognized.
            self.journal_nonce(ctx.now, interest.nonce());
        }
        let actions = self
            .forwarder
            .process_interest(ctx.now, &interest, FaceId::APP);
        ctx.note_state_inserts(1);
        let mut handled = false;
        for action in actions {
            match action {
                Action::SendInterest {
                    face: FaceId::WIRELESS,
                    interest,
                } => {
                    let delay = self.jitter(ctx);
                    ctx.send_frame(interest.wire(), kind, 0, delay);
                    handled = true;
                }
                Action::SendData {
                    face: FaceId::APP,
                    data,
                } => {
                    self.handle_app_data(ctx, &data);
                    handled = true;
                }
                _ => {}
            }
        }
        if !handled {
            let delay = self.jitter(ctx);
            ctx.send_frame(interest.wire(), kind, 0, delay);
        }
    }

    /// Pushes produced Data through the forwarder (consuming our PIT entry
    /// and caching) and broadcasts whatever comes out.
    fn emit_data(&mut self, ctx: &mut NodeCtx<'_>, data: Data, kind: FrameKind) {
        let (actions, _) = self.forwarder.process_data(ctx.now, &data, FaceId::APP);
        let mut sent = false;
        for action in actions {
            if let Action::SendData { face, data } = action {
                if face == FaceId::WIRELESS && !sent {
                    ctx.send_frame(data.wire(), kind, 0, SimDuration::ZERO);
                    sent = true;
                }
            }
        }
        if !sent {
            // No PIT entry (e.g. the requester's entry lapsed): broadcast
            // anyway — the data was explicitly requested moments ago.
            ctx.send_frame(data.wire(), kind, 0, SimDuration::ZERO);
        }
    }

    #[allow(clippy::too_many_arguments)] // one call site per cancellation rule
    fn schedule_pending(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        payload: PendingPayload,
        kind: FrameKind,
        delay: SimDuration,
        cancel_on_data: Option<Name>,
        cancel_on_nonce: Option<(Name, u32)>,
        forwarded_name: Option<Name>,
    ) -> u64 {
        self.next_pending += 1;
        let id = self.next_pending;
        let timer = ctx.set_timer(delay, TOKEN_PENDING | id);
        self.pending.insert(
            id,
            Pending {
                payload,
                kind,
                timer,
                cancel_on_data,
                cancel_on_nonce,
                forwarded_name,
            },
        );
        id
    }

    fn cancel_pending_where<F: Fn(&Pending) -> bool>(&mut self, ctx: &mut NodeCtx<'_>, pred: F) {
        let ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| pred(p))
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            if let Some(p) = self.pending.remove(&id) {
                ctx.cancel_timer(p.timer);
            }
        }
    }

    fn fire_pending(&mut self, ctx: &mut NodeCtx<'_>, id: u64) {
        let Some(p) = self.pending.remove(&id) else {
            return;
        };
        match p.payload {
            PendingPayload::Raw(wire) => {
                if let Some(name) = &p.forwarded_name {
                    self.shared
                        .lock()
                        .expect("multihop state")
                        .note_forwarded(name, ctx.now);
                    self.stats.interests_forwarded += 1;
                }
                ctx.send_frame(wire, p.kind, 0, SimDuration::ZERO);
            }
            PendingPayload::DiscoveryReply => {
                let info = DiscoveryInfo {
                    peer: self.id,
                    offers: self.current_offers(),
                };
                let content = self.seal_announcement(ctx.now, info.to_wire());
                let data = Data::new(namespace::discovery_reply_name(self.id), content)
                    // Short freshness: discovery state changes as peers move, so
                    // caches must not answer discovery probes indefinitely.
                    .with_freshness_ms(1_000)
                    .signed(&self.anchor.keypair(&format!("peer-{}", self.id)));
                self.emit_data(ctx, data, kinds::DISCOVERY_DATA);
            }
            PendingPayload::BitmapReply {
                collection,
                reply_name,
            } => {
                let Some(my) = self.my_bitmap(&collection) else {
                    return;
                };
                // Re-check marginal coverage right before transmitting: the
                // union may have grown while we waited.
                let marginal = self
                    .downloads
                    .get(&collection)
                    .map(|d| d.advert.marginal(&my))
                    .unwrap_or_else(|| my.count_set());
                if self.downloads.contains_key(&collection) && marginal == 0 {
                    self.stats.bitmaps_cancelled += 1;
                    return;
                }
                let content = self.seal_announcement(ctx.now, encode_bitmap_params(self.id, &my));
                let data = Data::new(reply_name, content)
                    .signed(&self.anchor.keypair(&format!("peer-{}", self.id)));
                self.stats.bitmaps_sent += 1;
                self.next_pending += 1;
                let tx_token = self.next_pending;
                self.inflight.insert(
                    tx_token,
                    InflightTx {
                        bitmap_collection: Some(collection),
                    },
                );
                // Route through the forwarder to consume the bitmap
                // Interest's PIT entry, then broadcast with the tx token so
                // PEBA sees the collision outcome.
                let (actions, _) = self.forwarder.process_data(ctx.now, &data, FaceId::APP);
                let mut sent = false;
                for action in actions {
                    if let Action::SendData { face, data } = action {
                        if face == FaceId::WIRELESS && !sent {
                            ctx.send_frame(
                                data.wire(),
                                kinds::BITMAP_DATA,
                                tx_token,
                                SimDuration::ZERO,
                            );
                            sent = true;
                        }
                    }
                }
                if !sent {
                    ctx.send_frame(data.wire(), kinds::BITMAP_DATA, tx_token, SimDuration::ZERO);
                }
            }
            PendingPayload::BitmapInterest { collection } => {
                let Some(my) = self.my_bitmap(&collection) else {
                    return;
                };
                self.advert_round += 1;
                let name = namespace::bitmap_interest_name(&collection, self.id, self.advert_round);
                let params = self.seal_announcement(ctx.now, encode_bitmap_params(self.id, &my));
                let interest = Interest::new(name)
                    .with_can_be_prefix(true)
                    .with_nonce(ctx.rng().gen())
                    .with_lifetime_ms(2_000)
                    .with_app_parameters(params);
                if self.cfg.signed_adverts {
                    self.journal_nonce(ctx.now, interest.nonce());
                }
                self.stats.bitmaps_sent += 1;
                self.next_pending += 1;
                let tx_token = self.next_pending;
                self.inflight.insert(
                    tx_token,
                    InflightTx {
                        bitmap_collection: Some(collection),
                    },
                );
                let actions = self
                    .forwarder
                    .process_interest(ctx.now, &interest, FaceId::APP);
                for action in actions {
                    if let Action::SendInterest { face, interest } = action {
                        if face == FaceId::WIRELESS {
                            ctx.send_frame(
                                interest.wire(),
                                kinds::BITMAP_INTEREST,
                                tx_token,
                                SimDuration::ZERO,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Seals an announcement payload under our producer key when
    /// `signed_adverts` is on; otherwise returns it untouched, which keeps
    /// the axis-off wire format byte-identical to the pre-auth one.
    fn seal_announcement(&mut self, now: SimTime, base: Vec<u8>) -> Vec<u8> {
        if !self.cfg.signed_adverts {
            return base;
        }
        let ts = self.stamp.next(now);
        auth::seal(
            &base,
            ts,
            &self.anchor.keypair(&format!("peer-{}", self.id)),
        )
    }

    fn current_offers(&self) -> Vec<OfferedCollection> {
        let mut offers: Vec<OfferedCollection> = self
            .seeding
            .values()
            .map(|s| OfferedCollection {
                collection: s.collection.name().clone(),
                metadata: s.collection.metadata_name(),
            })
            .collect();
        for d in self.downloads.values() {
            if d.metadata.is_some() {
                offers.push(OfferedCollection {
                    collection: d.collection.clone(),
                    metadata: d.metadata_name.clone(),
                });
            }
        }
        offers
    }

    fn my_bitmap(&self, collection: &Name) -> Option<Bitmap> {
        if let Some(seed) = self.seeding.get(collection) {
            return Some(Bitmap::full(seed.collection.total_packets()));
        }
        self.downloads.get(collection).map(|d| d.have.clone())
    }

    // ------------------------------------------------------------------
    // Discovery & downloads
    // ------------------------------------------------------------------

    fn send_discovery_interest(&mut self, ctx: &mut NodeCtx<'_>) {
        let interest = Interest::new(namespace::discovery_prefix())
            .with_can_be_prefix(true)
            .with_must_be_fresh(true)
            .with_nonce(ctx.rng().gen())
            .with_lifetime_ms(1_000)
            .with_app_parameters(self.id.to_be_bytes().to_vec());
        self.stats.discovery_sent += 1;
        self.express_interest(ctx, interest, kinds::DISCOVERY_INTEREST);
    }

    fn handle_discovery_info(&mut self, ctx: &mut NodeCtx<'_>, info: &DiscoveryInfo) {
        if info.peer == self.id {
            return;
        }
        {
            let mut sh = self.shared.lock().expect("multihop state");
            let entry = sh.note_peer(info.peer, ctx.now);
            let _ = entry;
            for offer in &info.offers {
                sh.note_neighbor_wants(info.peer, &offer.collection, ctx.now);
            }
        }
        self.discovery.note_peer_heard(ctx.now);
        for offer in &info.offers {
            let wanted = self.wanted.wants(&offer.collection)
                && !self.downloads.contains_key(&offer.collection)
                && !self.seeding.contains_key(&offer.collection);
            if wanted {
                self.start_download(ctx, offer);
            }
        }
    }

    fn start_download(&mut self, ctx: &mut NodeCtx<'_>, offer: &OfferedCollection) {
        ctx.note_state_inserts(1);
        self.register_collection_prefix(&offer.collection);
        let download = Download {
            collection: offer.collection.clone(),
            metadata_name: offer.metadata.clone(),
            phase: Phase::FetchingMetadata,
            assembler: MetadataAssembler::new(),
            meta_outstanding: BTreeMap::new(),
            metadata: None,
            index: None,
            have: Bitmap::new(0),
            leaf_hashes: Vec::new(),
            files_verified: Vec::new(),
            outstanding: BTreeMap::new(),
            queue: Vec::new(),
            queue_dirty: true,
            bitmaps_this_encounter: 0,
            advert_rounds_this_encounter: 0,
            rounds_seen: BTreeMap::new(),
            last_advert: None,
            advert: AdvertScheduler::new(self.cfg.peba, self.cfg.tx_window, self.cfg.slot_len),
            history: EncounterHistory::new(self.cfg.encounter_history),
            completed_at: None,
            resumed: None,
        };
        self.downloads.insert(offer.collection.clone(), download);
        self.request_metadata_segment(ctx, &offer.collection, 0);
    }

    fn request_metadata_segment(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name, seg: u32) {
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        let name = namespace::metadata_segment_name(&d.metadata_name, seg as u64);
        d.meta_outstanding.insert(seg, (ctx.now, 0));
        let interest = Interest::new(name)
            .with_nonce(ctx.rng().gen())
            .with_lifetime_ms(2_000);
        self.express_interest(ctx, interest, kinds::METADATA_INTEREST);
    }

    fn handle_metadata_segment(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name, data: &Data) {
        if !data.verify(&self.anchor) {
            self.stats.verify_failures += 1;
            return;
        }
        let Some(seg) = data.name().last().and_then(|c| c.to_seq()) else {
            return;
        };
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        if d.phase != Phase::FetchingMetadata {
            return;
        }
        if !d.metadata_name.is_prefix_of(data.name()) {
            return; // different metadata version
        }
        d.meta_outstanding.remove(&(seg as u32));
        let completed = d.assembler.feed(seg as u32, data.content());
        // Request more segments (windowed).
        if completed.is_none() {
            let missing = d.assembler.missing();
            let window = self.cfg.fetch_window.max(1);
            let to_request: Vec<u32> = missing
                .into_iter()
                .filter(|s| !d.meta_outstanding.contains_key(s))
                .take(window.saturating_sub(d.meta_outstanding.len()))
                .collect();
            for seg in to_request {
                self.request_metadata_segment(ctx, collection, seg);
            }
            return;
        }
        let Some(meta) = completed else { return };
        // Validate the digest in the metadata name binds to this body.
        let expected = d
            .metadata_name
            .last()
            .map(|c| String::from_utf8_lossy(c.as_bytes()).to_string());
        if expected.as_deref() != Some(meta.digest8().as_str()) {
            self.stats.verify_failures += 1;
            return;
        }
        self.activate_download(ctx, collection, meta);
    }

    fn activate_download(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name, meta: Metadata) {
        let total = meta.total_packets();
        let index = meta.index();
        let files = meta.files.len();
        {
            let mut sh = self.shared.lock().expect("multihop state");
            sh.indices.insert(collection.clone(), index.clone());
            sh.have.insert(collection.clone(), Bitmap::new(total));
        }
        let salvaged = self.salvaged.remove(collection);
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        d.metadata = Some(Arc::new(meta));
        d.index = Some(index);
        d.have = Bitmap::new(total);
        d.leaf_hashes = vec![None; total];
        d.files_verified = vec![false; files];
        // Resume after restart: fold in what the previous incarnation held.
        // The catalog was re-fetched (it binds the segment names and Merkle
        // roots), but every salvaged segment — with its retained leaf hash,
        // so later file verification still has all leaves — is marked held
        // and never re-fetched.
        let mut resumed_complete = false;
        if let Some(s) = salvaged {
            let mut skipped = 0u64;
            for (idx, leaf) in s.segments {
                if idx < total && !d.have.get(idx) {
                    d.have.set(idx);
                    d.leaf_hashes[idx] = leaf;
                    skipped += 1;
                }
            }
            for (pos, &v) in s.files_verified.iter().enumerate().take(files) {
                if v {
                    d.files_verified[pos] = true;
                }
            }
            d.resumed = Some(d.have.clone());
            self.stats.resumed_segments_skipped += skipped;
            if let Some(have) = self
                .shared
                .lock()
                .expect("multihop state")
                .have
                .get_mut(collection)
            {
                have.union_with(&d.have);
            }
            resumed_complete = files > 0 && d.files_verified.iter().all(|&v| v);
        }
        d.phase = if resumed_complete {
            Phase::Complete
        } else {
            Phase::Active
        };
        if resumed_complete {
            d.completed_at = Some(ctx.now);
        }
        d.queue_dirty = true;
        ctx.note_state_inserts(2);
        if resumed_complete {
            if self
                .downloads
                .values()
                .all(|dl| dl.phase == Phase::Complete)
            {
                self.stats.complete(ctx.now);
            }
        } else {
            // Open the first advertisement round immediately.
            self.open_advert_round(ctx, collection);
        }
    }

    fn open_advert_round(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name) {
        // The bitmap budget (Fig. 9c/9d) gates when *data fetching* starts,
        // via `required_before_fetch`; periodic re-advertisement itself must
        // continue for as long as the download runs, or knowledge of the
        // data available nearby would rot away with neighbor expiry and
        // fetching would stall (especially in single-hop mode).
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        if d.phase != Phase::Active {
            return;
        }
        d.last_advert = Some(ctx.now);
        d.advert_rounds_this_encounter += 1;
        let delay = self.jitter(ctx);
        self.schedule_pending(
            ctx,
            PendingPayload::BitmapInterest {
                collection: collection.clone(),
            },
            kinds::BITMAP_INTEREST,
            delay,
            None,
            None,
            None,
        );
    }

    // ------------------------------------------------------------------
    // Bitmap handling
    // ------------------------------------------------------------------

    fn handle_bitmap_seen(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        collection: &Name,
        peer: u32,
        bitmap: &Bitmap,
    ) {
        if peer == self.id {
            return;
        }
        self.discovery.note_peer_heard(ctx.now);
        self.shared.lock().expect("multihop state").record_bitmap(
            peer,
            collection,
            bitmap.clone(),
            ctx.now,
        );
        ctx.note_state_inserts(1);
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        self.stats.bitmaps_heard += 1;
        d.bitmaps_this_encounter += 1;
        d.history.record(peer, bitmap.clone());
        d.queue_dirty = true;
        d.advert.record_transmitted(bitmap);
        // Re-evaluate our own pending bitmap transmissions for this
        // collection against the grown union.
        let my = d.have.clone();
        let marginal = d.advert.marginal(&my);
        let new_delay = if marginal == 0 {
            None
        } else {
            let mut rng_delay = None;
            if let Some(del) = d.advert.delay_for(&my, ctx.rng()) {
                rng_delay = Some(del);
            }
            rng_delay
        };
        let ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                matches!(&p.payload, PendingPayload::BitmapReply { collection: c, .. } if c == collection)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match new_delay {
                None => {
                    if let Some(p) = self.pending.remove(&id) {
                        ctx.cancel_timer(p.timer);
                        self.stats.bitmaps_cancelled += 1;
                    }
                }
                Some(delay) => {
                    if let Some(p) = self.pending.get_mut(&id) {
                        ctx.cancel_timer(p.timer);
                        p.timer = ctx.set_timer(delay, TOKEN_PENDING | id);
                    }
                }
            }
        }
    }

    fn handle_bitmap_interest(&mut self, ctx: &mut NodeCtx<'_>, interest: &Interest) {
        let Some((collection, origin, round, _)) = namespace::parse_bitmap_name(interest.name())
        else {
            return;
        };
        if origin == self.id {
            return;
        }
        // A new advertisement round from this origin starts a fresh
        // prioritization burst (paper §IV-F operates per transmission
        // burst): without this, one lost reply would never be re-sent
        // because the old union already "covers" us.
        if let Some(d) = self.downloads.get_mut(&collection) {
            let newest = d.rounds_seen.entry(origin).or_insert(0);
            if round > *newest {
                *newest = round;
                d.advert.reset();
            }
        }
        // The Interest carries the origin's bitmap: learn it. The envelope
        // (if any) was authenticated by the `on_frame` screen before the
        // Interest reached the forwarder, so stripping unverified is safe.
        if let Some((peer, bm)) = interest
            .app_parameters()
            .and_then(decode_bitmap_params_maybe_sealed)
        {
            self.handle_bitmap_seen(ctx, &collection, peer, &bm);
        }
        // Reply with our bitmap if we can describe this collection.
        let Some(my) = self.my_bitmap(&collection) else {
            return;
        };
        if my.is_empty() {
            return; // metadata not ready yet
        }
        let delay = match self.downloads.get_mut(&collection) {
            Some(d) => d.advert.delay_for(&my, ctx.rng()),
            None => {
                // Seeding: full bitmap, first-transmission priority.
                AdvertScheduler::new(self.cfg.peba, self.cfg.tx_window, self.cfg.slot_len)
                    .delay_for(&my, ctx.rng())
            }
        };
        let Some(delay) = delay else {
            self.stats.bitmaps_cancelled += 1;
            return;
        };
        let reply_name = namespace::bitmap_reply_name(interest.name(), self.id);
        self.schedule_pending(
            ctx,
            PendingPayload::BitmapReply {
                collection,
                reply_name,
            },
            kinds::BITMAP_DATA,
            delay,
            None,
            None,
            None,
        );
    }

    // ------------------------------------------------------------------
    // Content fetching
    // ------------------------------------------------------------------

    fn rebuild_queue(&mut self, collection: &Name) {
        let sh = self.shared.lock().expect("multihop state");
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        let Some(_) = d.metadata.as_ref() else { return };
        let total = d.have.len();
        let missing: Vec<usize> = d
            .have
            .iter_missing()
            .filter(|i| !d.outstanding.contains_key(i))
            .collect();
        let rarity = match self.cfg.rpf {
            RpfVariant::LocalNeighborhood => {
                let bitmaps: Vec<&Bitmap> = sh
                    .neighbors
                    .values()
                    .filter_map(|info| info.bitmaps.get(collection))
                    .collect();
                rarity_counts(total, bitmaps)
            }
            RpfVariant::EncounterBased => rarity_counts(total, d.history.bitmaps()),
        };
        let seed = (self.id as u64) << 32 | (total as u64 & 0xffff_ffff);
        let ordered = fetch_order(missing, &rarity, self.cfg.start, seed);
        // Partition: packets known to be nearby first; speculative
        // (multi-hop) requests afterwards. Reverse so `pop` takes the front.
        let mut available = Vec::new();
        let mut speculative = Vec::new();
        for idx in ordered {
            match sh.neighbor_has_packet(collection, idx) {
                Some(true) => available.push(idx),
                Some(false) | None => speculative.push(idx),
            }
        }
        let multihop = sh.enabled;
        drop(sh);
        let mut queue = available;
        if multihop {
            queue.extend(speculative);
        }
        queue.reverse();
        d.queue = queue;
        d.queue_dirty = false;
    }

    fn refill_fetches(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name) {
        let interested = {
            let sh = self.shared.lock().expect("multihop state");
            sh.neighbors
                .values()
                .filter(|i| i.wants.contains(collection) || i.bitmaps.contains_key(collection))
                .count()
        };
        let Some(d) = self.downloads.get(collection) else {
            return;
        };
        if d.phase != Phase::Active {
            return;
        }
        if interested == 0 {
            return; // nobody around: pause fetching
        }
        let required = self.cfg.schedule.required_before_fetch(interested);
        if d.bitmaps_this_encounter < required {
            return;
        }
        if d.queue_dirty {
            self.rebuild_queue(collection);
        }
        loop {
            let Some(d) = self.downloads.get_mut(collection) else {
                return;
            };
            if d.outstanding.len() >= self.cfg.fetch_window || d.queue.is_empty() {
                break;
            }
            let idx = d.queue.pop().expect("checked non-empty");
            if (idx < d.have.len() && d.have.get(idx)) || d.outstanding.contains_key(&idx) {
                continue;
            }
            let Some(name) = d
                .index
                .as_ref()
                .and_then(|ix| ix.packet_name(collection, idx))
            else {
                continue;
            };
            // A fetch for a salvaged segment means resume is broken — the
            // `have` check above must have skipped it. Counted, not fixed
            // up, so the fault benches can gate on it staying zero.
            if d.resumed
                .as_ref()
                .is_some_and(|r| idx < r.len() && r.get(idx))
            {
                self.stats.resumed_refetch += 1;
            }
            d.outstanding.insert(idx, (ctx.now, 0));
            self.stats.interests_sent += 1;
            let interest = Interest::new(name).with_nonce(ctx.rng().gen());
            self.express_interest(ctx, interest, kinds::CONTENT_INTEREST);
        }
    }

    fn handle_content_data(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name, data: &Data) {
        let Some(d) = self.downloads.get_mut(collection) else {
            return;
        };
        if d.phase != Phase::Active {
            return;
        }
        let (Some(meta), Some(index)) = (d.metadata.clone(), d.index.as_ref()) else {
            return;
        };
        let Some(DapesName::Content { file, seq, .. }) = namespace::classify(data.name()) else {
            return;
        };
        let Some(idx) = index.global_index(&file, seq) else {
            return;
        };
        if d.have.get(idx) {
            d.outstanding.remove(&idx);
            return;
        }
        match meta.verify_packet(idx, data.content()) {
            PacketVerification::Failed => {
                self.stats.verify_failures += 1;
                d.outstanding.remove(&idx);
                d.queue_dirty = true;
                return;
            }
            PacketVerification::Verified => {
                self.stats.packets_verified += 1;
            }
            PacketVerification::Deferred => {
                d.leaf_hashes[idx] = Some(leaf_hash(data.content()));
            }
        }
        d.outstanding.remove(&idx);
        d.have.set(idx);
        self.stats.data_received += 1;
        if let Some(have) = self
            .shared
            .lock()
            .expect("multihop state")
            .have
            .get_mut(collection)
        {
            if idx < have.len() {
                have.set(idx);
            }
        }
        // File-completion check (Merkle verification happens here).
        let (file_pos, _) = index.locate(idx).expect("located above");
        let range = index.file_range(file_pos).expect("valid file");
        if !d.files_verified[file_pos] && range.clone().all(|i| d.have.get(i)) {
            let ok = match meta.format {
                crate::metadata::MetadataFormat::PacketDigest => true,
                crate::metadata::MetadataFormat::MerkleRoots => {
                    let leaves: Vec<Digest> = range
                        .clone()
                        .map(|i| d.leaf_hashes[i].expect("all present"))
                        .collect();
                    let root = meta.files[file_pos].root;
                    match root {
                        Some(r) => dapes_crypto::merkle::MerkleTree::verify_leaves(&r, leaves),
                        None => false,
                    }
                }
            };
            if ok {
                d.files_verified[file_pos] = true;
                self.stats.packets_verified += match meta.format {
                    crate::metadata::MetadataFormat::MerkleRoots => range.len() as u64,
                    crate::metadata::MetadataFormat::PacketDigest => 0,
                };
                for i in range {
                    d.leaf_hashes[i] = None; // content hashes no longer needed
                }
            } else {
                // Whole file failed: drop and refetch it.
                self.stats.verify_failures += 1;
                for i in range {
                    d.have.clear(i);
                    d.leaf_hashes[i] = None;
                }
                d.queue_dirty = true;
            }
        }
        if d.files_verified.iter().all(|&v| v) {
            d.phase = Phase::Complete;
            d.completed_at = Some(ctx.now);
            if self
                .downloads
                .values()
                .all(|dl| dl.phase == Phase::Complete)
            {
                self.stats.complete(ctx.now);
            }
        }
        self.refill_fetches(ctx, collection);
    }

    // ------------------------------------------------------------------
    // Serving
    // ------------------------------------------------------------------

    fn serve_interest(&mut self, ctx: &mut NodeCtx<'_>, interest: &Interest) {
        match namespace::classify(interest.name()) {
            Some(DapesName::Discovery { .. }) => {
                if let Some(params) = interest.app_parameters() {
                    if params.len() == 4 {
                        let peer = u32::from_be_bytes(params.try_into().expect("4 bytes"));
                        if peer != self.id {
                            self.shared
                                .lock()
                                .expect("multihop state")
                                .note_peer(peer, ctx.now);
                            self.discovery.note_peer_heard(ctx.now);
                        }
                    }
                }
                if self.current_offers().is_empty() {
                    return;
                }
                // One pending reply at a time; a burst of probes from
                // several peers is answered by a single broadcast.
                if self
                    .pending
                    .values()
                    .any(|p| matches!(p.payload, PendingPayload::DiscoveryReply))
                {
                    return;
                }
                let delay = self.jitter(ctx);
                self.schedule_pending(
                    ctx,
                    PendingPayload::DiscoveryReply,
                    kinds::DISCOVERY_DATA,
                    delay,
                    None,
                    None,
                    None,
                );
            }
            Some(DapesName::Bitmap { .. }) => self.handle_bitmap_interest(ctx, interest),
            Some(DapesName::Metadata {
                collection,
                segment,
                ..
            }) => {
                let Some(seg) = segment else { return };
                if self.reply_pending_for(interest.name()) {
                    return;
                }
                let data = self.metadata_segment_for(&collection, seg as u32);
                if let Some(data) = data {
                    let delay = self.jitter(ctx);
                    self.schedule_pending(
                        ctx,
                        PendingPayload::Raw(data.wire()),
                        kinds::METADATA_DATA,
                        delay,
                        Some(data.name().clone()),
                        None,
                        None,
                    );
                }
            }
            Some(DapesName::Content {
                collection,
                file,
                seq,
            }) => {
                if self.reply_pending_for(interest.name()) {
                    return;
                }
                let data = self.content_packet_for(&collection, &file, seq);
                if let Some(data) = data {
                    self.stats.packets_served += 1;
                    let delay = self.jitter(ctx);
                    self.schedule_pending(
                        ctx,
                        PendingPayload::Raw(data.wire()),
                        kinds::CONTENT_DATA,
                        delay,
                        Some(data.name().clone()),
                        None,
                        None,
                    );
                }
            }
            None => {}
        }
    }

    /// Whether a reply for exactly this data name is already queued.
    fn reply_pending_for(&self, name: &Name) -> bool {
        self.pending
            .values()
            .any(|p| p.cancel_on_data.as_ref() == Some(name) && p.forwarded_name.is_none())
    }

    fn metadata_segment_for(&self, collection: &Name, seg: u32) -> Option<Data> {
        if let Some(seed) = self.seeding.get(collection) {
            return seed.segments.get(seg as usize).cloned();
        }
        let d = self.downloads.get(collection)?;
        let meta = d.metadata.as_ref()?;
        let segments = meta.to_segments(collection, &self.anchor.keypair(&meta.producer));
        segments.get(seg as usize).cloned()
    }

    fn content_packet_for(&self, collection: &Name, file: &str, seq: u64) -> Option<Data> {
        if let Some(seed) = self.seeding.get(collection) {
            let idx = seed.collection.index().global_index(file, seq)?;
            return seed.collection.packet_data(idx, &self.anchor);
        }
        let d = self.downloads.get(collection)?;
        let meta = d.metadata.as_ref()?;
        let idx = d.index.as_ref()?.global_index(file, seq)?;
        if idx >= d.have.len() || !d.have.get(idx) {
            return None;
        }
        regenerate_packet(collection, meta, idx, &self.anchor)
    }

    // ------------------------------------------------------------------
    // Periodic housekeeping
    // ------------------------------------------------------------------

    fn tick(&mut self, ctx: &mut NodeCtx<'_>) {
        self.stats.neighbors_expired +=
            self.shared.lock().expect("multihop state").sweep(ctx.now) as u64;
        self.forwarder.expire(ctx.now);
        if self.cfg.signed_adverts {
            self.stats.peers_expired += self.replay.sweep(ctx.now) as u64;
            // Nonce journal retention outlives the replay window by a wide
            // margin so a re-injection is still recognized, then entries
            // age out.
            let keep = SimDuration::from_micros(self.replay_window().as_micros() * 4);
            let now = ctx.now;
            self.nonce_journal.retain(|_, &mut t| now.since(t) <= keep);
        }

        // Encounter transitions.
        let neighbors = self.shared.lock().expect("multihop state").neighbor_count();
        if neighbors == 0 && self.encounter_active {
            self.encounter_active = false;
            for d in self.downloads.values_mut() {
                d.advert.reset();
                d.bitmaps_this_encounter = 0;
                d.advert_rounds_this_encounter = 0;
                d.rounds_seen.clear();
                d.queue_dirty = true;
            }
        } else if neighbors > 0 && !self.encounter_active {
            self.encounter_active = true;
        }

        let collections: Vec<Name> = self.downloads.keys().cloned().collect();
        for collection in collections {
            self.sweep_download(ctx, &collection);
        }
        ctx.set_timer(self.cfg.tick, TOKEN_TICK);
    }

    fn sweep_download(&mut self, ctx: &mut NodeCtx<'_>, collection: &Name) {
        let now = ctx.now;
        let base = self.cfg.retx_timeout;
        let cap = self.cfg.retx_backoff_cap;
        let max_retx = self.cfg.max_retx;

        // Metadata retransmissions.
        let mut meta_retx: Vec<u32> = Vec::new();
        let mut advert_due = false;
        {
            let Some(d) = self.downloads.get_mut(collection) else {
                return;
            };
            match d.phase {
                Phase::FetchingMetadata => {
                    let mut gave_up: Vec<u32> = Vec::new();
                    for (&seg, (sent, retx)) in d.meta_outstanding.iter_mut() {
                        if now.since(*sent) > backed_off_timeout(base, cap, *retx) {
                            *sent = now;
                            *retx += 1;
                            if *retx <= max_retx {
                                meta_retx.push(seg);
                            } else {
                                gave_up.push(seg);
                            }
                        }
                    }
                    self.stats.retx_give_ups += gave_up.len() as u64;
                    for seg in gave_up {
                        d.meta_outstanding.remove(&seg);
                    }
                    // Once every outstanding catalog segment has given up,
                    // start a fresh windowed round (fresh backoff) while a
                    // peer is in range — segment 0 when the catalog size is
                    // still unknown. A restarted or long-partitioned
                    // downloader recovers here instead of stalling forever.
                    if meta_retx.is_empty()
                        && d.meta_outstanding.is_empty()
                        && self.encounter_active
                    {
                        if d.assembler.total().is_none() {
                            meta_retx.push(0);
                        } else {
                            let window = self.cfg.fetch_window.max(1);
                            meta_retx.extend(d.assembler.missing().into_iter().take(window));
                        }
                    }
                }
                Phase::Active => {
                    // Content retransmissions / requeues, each Interest on
                    // its own backed-off clock.
                    let mut requeue: Vec<usize> = Vec::new();
                    let mut resend: Vec<usize> = Vec::new();
                    for (&idx, (sent, retx)) in d.outstanding.iter_mut() {
                        if now.since(*sent) > backed_off_timeout(base, cap, *retx) {
                            if *retx >= max_retx {
                                requeue.push(idx);
                            } else {
                                *sent = now;
                                *retx += 1;
                                resend.push(idx);
                            }
                        }
                    }
                    self.stats.retx_give_ups += requeue.len() as u64;
                    for idx in requeue {
                        d.outstanding.remove(&idx);
                        d.queue_dirty = true;
                    }
                    let names: Vec<Name> = resend
                        .into_iter()
                        .filter_map(|idx| {
                            d.index
                                .as_ref()
                                .and_then(|ix| ix.packet_name(collection, idx))
                        })
                        .collect();
                    self.stats.retransmissions += names.len() as u64;
                    for name in names {
                        // Retransmissions bypass the forwarder: the PIT entry
                        // (downstream APP) already exists; a fresh nonce lets
                        // neighbors treat it as new.
                        let interest = Interest::new(name).with_nonce(ctx.rng().gen());
                        if self.cfg.signed_adverts {
                            self.journal_nonce(ctx.now, interest.nonce());
                        }
                        let delay_us = ctx
                            .rng()
                            .gen_range(0..self.cfg.tx_window.as_micros().max(1));
                        ctx.send_frame(
                            interest.wire(),
                            kinds::CONTENT_INTEREST,
                            0,
                            SimDuration::from_micros(delay_us),
                        );
                    }
                    let Some(d) = self.downloads.get_mut(collection) else {
                        return;
                    };
                    advert_due = d
                        .last_advert
                        .is_none_or(|t| now.since(t) >= self.cfg.advert_interval);
                }
                Phase::Complete => {}
            }
        }
        for seg in meta_retx {
            self.stats.retransmissions += 1;
            self.request_metadata_segment(ctx, collection, seg);
        }
        if advert_due && self.encounter_active {
            self.open_advert_round(ctx, collection);
        }
        self.refill_fetches(ctx, collection);
    }
}

impl NetStack for DapesPeer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.cfg.tick, TOKEN_TICK);
        if self.role == NodeRole::Dapes {
            // Stagger first beacons across the window to avoid a start-up
            // collision storm.
            let delay = SimDuration::from_micros(
                ctx.rng()
                    .gen_range(0..self.cfg.discovery_min.as_micros().max(1)),
            );
            ctx.set_timer(delay, TOKEN_DISCOVERY);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token & TOKEN_MASK {
            TOKEN_TICK => self.tick(ctx),
            TOKEN_DISCOVERY => {
                self.send_discovery_interest(ctx);
                let period = self.discovery.next_period(ctx.now);
                ctx.set_timer(period, TOKEN_DISCOVERY);
            }
            TOKEN_PENDING => self.fire_pending(ctx, token & !TOKEN_MASK),
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        if self.cfg.signed_adverts && self.screen_frame(ctx, frame) {
            return;
        }
        if self.cfg.exec.lazy_peek && self.on_frame_peeked(ctx, frame) {
            return;
        }
        let Ok(packet) = Packet::decode_payload(&frame.payload) else {
            return;
        };
        if self.cfg.signed_adverts {
            let hostile = match &packet {
                Packet::Interest(interest) => self.screen_interest(ctx, interest),
                Packet::Data(data) => self.screen_data(ctx, data),
            };
            if hostile {
                return;
            }
        }
        if self.role == NodeRole::Dapes {
            self.discovery.note_peer_heard(ctx.now);
            self.shared
                .lock()
                .expect("multihop state")
                .note_peer(frame.src.0, ctx.now);
        }
        match packet {
            Packet::Interest(interest) => {
                // Someone else re-broadcast an Interest we were also about
                // to forward: ours is now redundant.
                let key = (interest.name().clone(), interest.nonce());
                self.cancel_pending_where(ctx, |p| p.cancel_on_nonce.as_ref() == Some(&key));
                let actions = self
                    .forwarder
                    .process_interest(ctx.now, &interest, FaceId::WIRELESS);
                ctx.note_state_inserts(1);
                self.apply_interest_actions(ctx, frame.kind, actions);
            }
            Packet::Data(data) => {
                // Any data transmission cancels our duplicate pending
                // responses/forwards and settles multi-hop bookkeeping.
                let dname = data.name().clone();
                self.cancel_pending_where(ctx, |p| p.cancel_on_data.as_ref() == Some(&dname));
                self.shared
                    .lock()
                    .expect("multihop state")
                    .note_data_seen(&dname);

                // DAPES-level overhearing before the forwarder pipeline.
                if self.role == NodeRole::Dapes {
                    match namespace::classify(&dname) {
                        Some(DapesName::Bitmap {
                            collection,
                            replier,
                            ..
                        }) => {
                            // Sealed or plain: authentication already ran in
                            // the `screen_data` gate when the axis is on.
                            if let Some((peer, bm)) =
                                decode_bitmap_params_maybe_sealed(data.content())
                            {
                                let peer = replier.unwrap_or(peer);
                                self.handle_bitmap_seen(ctx, &collection, peer, &bm);
                            }
                        }
                        Some(DapesName::Discovery { .. }) => {
                            if let Some(info) =
                                DiscoveryInfo::from_wire_maybe_sealed(data.content())
                            {
                                self.handle_discovery_info(ctx, &info);
                            }
                        }
                        Some(DapesName::Content {
                            collection,
                            file,
                            seq,
                        }) => {
                            // Note the sender has this packet.
                            let idx = {
                                let sh = self.shared.lock().expect("multihop state");
                                sh.indices
                                    .get(&collection)
                                    .and_then(|ix| ix.global_index(&file, seq))
                            };
                            if let Some(idx) = idx {
                                self.shared
                                    .lock()
                                    .expect("multihop state")
                                    .note_neighbor_has(frame.src.0, &collection, idx, ctx.now);
                            }
                        }
                        _ => {}
                    }
                }

                let (actions, _solicited) =
                    self.forwarder
                        .process_data(ctx.now, &data, FaceId::WIRELESS);
                for action in actions {
                    match action {
                        Action::SendData {
                            face: FaceId::APP,
                            data,
                        } => {
                            self.handle_app_data(ctx, &data);
                        }
                        Action::SendData {
                            face: FaceId::WIRELESS,
                            data,
                        } => {
                            // Multi-hop data return: re-broadcast for the
                            // next hop, unless someone beats us to it.
                            let delay = self.jitter(ctx);
                            self.schedule_pending(
                                ctx,
                                PendingPayload::Raw(data.wire()),
                                frame.kind,
                                delay,
                                Some(data.name().clone()),
                                None,
                                None,
                            );
                        }
                        _ => {}
                    }
                }

                // Opportunistic use of overheard content/metadata even when
                // our PIT did not ask for it.
                if self.role == NodeRole::Dapes {
                    match namespace::classify(&dname) {
                        Some(DapesName::Content { collection, .. })
                            if data.verify(&self.anchor) =>
                        {
                            self.handle_content_data(ctx, &collection, &data);
                        }
                        Some(DapesName::Metadata { collection, .. }) => {
                            self.handle_metadata_segment(ctx, &collection, &data);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, outcome: TxOutcome) {
        if outcome.token == 0 {
            return;
        }
        let Some(inflight) = self.inflight.remove(&outcome.token) else {
            return;
        };
        let Some(collection) = inflight.bitmap_collection else {
            return;
        };
        let Some(my) = self.my_bitmap(&collection) else {
            return;
        };
        if let Some(d) = self.downloads.get_mut(&collection) {
            if outcome.collided && self.cfg.peba {
                // PEBA: retry in a prioritized slot.
                self.stats.peba_backoffs += 1;
                let delay = d.advert.collision_backoff(&my, ctx.rng());
                let reply_name = namespace::bitmap_reply_name(
                    &namespace::bitmap_interest_name(&collection, self.id, self.advert_round),
                    self.id,
                );
                self.schedule_pending(
                    ctx,
                    PendingPayload::BitmapReply {
                        collection,
                        reply_name,
                    },
                    kinds::BITMAP_DATA,
                    delay,
                    None,
                    None,
                    None,
                );
            } else if outcome.collided {
                // Without PEBA: linear re-draw.
                let delay = d.advert.collision_backoff(&my, ctx.rng());
                let reply_name = namespace::bitmap_reply_name(
                    &namespace::bitmap_interest_name(&collection, self.id, self.advert_round),
                    self.id,
                );
                self.schedule_pending(
                    ctx,
                    PendingPayload::BitmapReply {
                        collection,
                        reply_name,
                    },
                    kinds::BITMAP_DATA,
                    delay,
                    None,
                    None,
                    None,
                );
            } else {
                d.advert.record_transmitted(&my);
            }
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.forwarder.state_bytes()
            + self.shared.lock().expect("multihop state").state_bytes()
            + self
                .downloads
                .values()
                .map(Download::state_bytes)
                .sum::<usize>()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl DapesPeer {
    /// Applies the forwarder's actions for an overheard Interest — the
    /// shared tail of the eager pipeline and the header fast path.
    fn apply_interest_actions(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        frame_kind: FrameKind,
        actions: Vec<Action>,
    ) {
        for action in actions {
            match action {
                Action::SendInterest {
                    face: FaceId::APP,
                    interest,
                } if self.role == NodeRole::Dapes => {
                    self.serve_interest(ctx, &interest);
                }
                Action::SendInterest {
                    face: FaceId::WIRELESS,
                    mut interest,
                } => {
                    // Multi-hop re-broadcast approved by the
                    // strategy: schedule with a random delay and
                    // cancellation rules (§V-A).
                    if !interest.decrement_hop_limit() {
                        continue;
                    }
                    let delay = self.jitter(ctx);
                    let name = interest.name().clone();
                    let nonce = interest.nonce();
                    self.schedule_pending(
                        ctx,
                        PendingPayload::Raw(interest.wire()),
                        frame_kind,
                        delay,
                        Some(name.clone()),
                        Some((name.clone(), nonce)),
                        Some(name),
                    );
                }
                Action::RelayInterest {
                    face: FaceId::WIRELESS,
                    frame,
                    name,
                    nonce,
                } => {
                    // Decode-free re-broadcast: the forwarder already
                    // patched the hop-limit byte copy-on-write, so the
                    // received bytes go back out as-is — same jitter draw
                    // and cancellation rules as the eager arm above.
                    let delay = self.jitter(ctx);
                    self.stats.frames_relay_patched += 1;
                    self.schedule_pending(
                        ctx,
                        PendingPayload::Raw(frame),
                        frame_kind,
                        delay,
                        Some(name.clone()),
                        Some((name.clone(), nonce)),
                        Some(name),
                    );
                }
                Action::SendData {
                    face: FaceId::WIRELESS,
                    data,
                } => {
                    // Content Store hit: answer from cache after a
                    // polite delay, cancelled if someone else does.
                    let delay = self.jitter(ctx);
                    self.schedule_pending(
                        ctx,
                        PendingPayload::Raw(data.wire()),
                        response_kind_for(&data),
                        delay,
                        Some(data.name().clone()),
                        None,
                        None,
                    );
                }
                _ => {}
            }
        }
    }

    /// The overhearing fast path: tries to resolve `frame` from a
    /// name-first header peek, without a full TLV decode. Returns whether
    /// the frame was fully handled.
    ///
    /// Every branch that returns `true` reproduces the eager pipeline's
    /// side effects *exactly* — same forwarder statistics, same RNG draws in
    /// the same order, same pending-transmission bookkeeping — so enabling
    /// [`DapesConfig::lazy_peek`] cannot change a trace (asserted across the
    /// scenario matrix by `tests/sched.rs`). Frames that need their payload
    /// (aggregating Interests, novel Interests the decode-free relay path
    /// cannot take, PIT-matching or cacheable or DAPES-signalling Data)
    /// fall through untouched, with no state or statistics recorded, and
    /// take the full-decode path.
    fn on_frame_peeked(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) -> bool {
        let Ok(header) = Packet::peek_header(&frame.payload) else {
            // A malformed prefix fails the full decode at the same byte, so
            // dropping here is exactly what the eager path would do.
            return true;
        };
        match header {
            PacketHeader::Interest(h) => {
                let Some((actions, outcome)) = self.forwarder.process_interest_header(
                    ctx.now,
                    &h,
                    &frame.payload,
                    FaceId::WIRELESS,
                ) else {
                    return false;
                };
                if self.role == NodeRole::Dapes {
                    self.discovery.note_peer_heard(ctx.now);
                    self.shared
                        .lock()
                        .expect("multihop state")
                        .note_peer(frame.src.0, ctx.now);
                }
                // Cancel our own redundant pending forward, comparing the
                // stored name against the frame's borrowed bytes — the
                // Interest fast path builds no `Name` except for the PIT
                // entry a no-route drop records.
                let (name_wire, nonce) = (h.name_wire, h.nonce);
                self.cancel_pending_where(ctx, |p| {
                    p.cancel_on_nonce
                        .as_ref()
                        .is_some_and(|(n, pn)| *pn == nonce && n.wire_value_eq(name_wire))
                });
                ctx.note_state_inserts(1);
                self.apply_interest_actions(ctx, frame.kind, actions);
                self.stats.frames_peek_resolved += 1;
                match outcome {
                    PeekOutcome::CsHit | PeekOutcome::CsPrefixHit => self.stats.peek_cs_hits += 1,
                    PeekOutcome::DuplicateNonce => self.stats.peek_dup_nonces += 1,
                    PeekOutcome::FibNoRoute => self.stats.peek_fib_drops += 1,
                    PeekOutcome::Relayed => self.stats.peek_relayed += 1,
                    PeekOutcome::RelaySuppressed => self.stats.peek_relay_suppressed += 1,
                }
                true
            }
            PacketHeader::Data(h) => {
                // Classification and the knowledge-building side effects
                // need a materialized name (zero-copy views, one Vec) — but
                // never the packet's MetaInfo/Content/signature tail.
                let Ok(dname) = h.to_name(&frame.payload) else {
                    // Malformed name region: the full decode fails at the
                    // same byte, so dropping matches the eager path.
                    return true;
                };
                if !self.data_resolvable_by_name(&dname) {
                    return false;
                }
                if !self.forwarder.process_data_header(h.name_wire) {
                    return false;
                }
                // Committed: mirror the eager pipeline's name-derived side
                // effects (the payload-derived ones cannot apply, because
                // `data_resolvable_by_name` ruled them out).
                if self.role == NodeRole::Dapes {
                    self.discovery.note_peer_heard(ctx.now);
                    self.shared
                        .lock()
                        .expect("multihop state")
                        .note_peer(frame.src.0, ctx.now);
                }
                self.cancel_pending_where(ctx, |p| p.cancel_on_data.as_ref() == Some(&dname));
                self.shared
                    .lock()
                    .expect("multihop state")
                    .note_data_seen(&dname);
                if self.role == NodeRole::Dapes {
                    if let Some(DapesName::Content {
                        collection,
                        file,
                        seq,
                    }) = namespace::classify(&dname)
                    {
                        let idx = {
                            let sh = self.shared.lock().expect("multihop state");
                            sh.indices
                                .get(&collection)
                                .and_then(|ix| ix.global_index(&file, seq))
                        };
                        if let Some(idx) = idx {
                            self.shared
                                .lock()
                                .expect("multihop state")
                                .note_neighbor_has(frame.src.0, &collection, idx, ctx.now);
                        }
                    }
                }
                self.stats.frames_peek_resolved += 1;
                self.stats.peek_unsolicited_data += 1;
                true
            }
        }
    }

    /// Whether an overheard Data packet with this name could be fully
    /// handled without its payload, assuming it also matches no PIT entry.
    /// Conservative: any name whose eager handling reads the content
    /// (bitmaps, discovery replies, metadata, content for an active
    /// download) forces the full decode.
    fn data_resolvable_by_name(&self, name: &Name) -> bool {
        if self.role != NodeRole::Dapes {
            // Non-DAPES roles take no overhearing action beyond the
            // forwarder pipeline (and a caching pure forwarder is already
            // rejected by `process_data_header`).
            return true;
        }
        match namespace::classify(name) {
            // `handle_content_data` is a no-op without an active download
            // for the collection; the knowledge-building side effect
            // (`note_neighbor_has`) needs only the name.
            Some(DapesName::Content { ref collection, .. }) => {
                !self.downloads.contains_key(collection)
            }
            // Bitmap/discovery/metadata handling reads the payload.
            Some(_) => false,
            // Non-DAPES names have no overhearing semantics.
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Adversarial screening (`signed_adverts`)
    // ------------------------------------------------------------------

    fn replay_window(&self) -> SimDuration {
        SimDuration::from_millis(self.cfg.replay_window_ms)
    }

    /// Pre-decode screening: drops frames whose header peek fails (the
    /// noise-flood sink) and Interests whose nonce was first overheard
    /// longer than the replay window ago (re-injected Interests). Runs
    /// before the lazy/eager split so a replayed Interest can never be
    /// answered from the Content Store or refresh its old PIT entry.
    /// Makes no RNG draws, so the lazy/eager toggle equivalence holds.
    fn screen_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) -> bool {
        let Ok(header) = Packet::peek_header(&frame.payload) else {
            self.stats.flood_frames_dropped += 1;
            return true;
        };
        if let PacketHeader::Interest(h) = header {
            match self.nonce_journal.get(&h.nonce) {
                Some(&first_seen) if ctx.now.since(first_seen) > self.replay_window() => {
                    self.stats.interests_rejected_replay += 1;
                    return true;
                }
                // A recent re-hearing: an honest wireless echo or relay.
                Some(_) => {}
                None => self.journal_nonce(ctx.now, h.nonce),
            }
        }
        false
    }

    /// Records the first-seen time of an Interest nonce (overheard or our
    /// own transmission), evicting the oldest entry at capacity
    /// (deterministic: ties break on the smaller nonce).
    fn journal_nonce(&mut self, now: SimTime, nonce: u32) {
        if self.nonce_journal.contains_key(&nonce) {
            return;
        }
        if self.nonce_journal.len() >= NONCE_JOURNAL_CAP {
            if let Some(oldest) = self
                .nonce_journal
                .iter()
                .min_by_key(|(nonce, &t)| (t, **nonce))
                .map(|(nonce, _)| *nonce)
            {
                self.nonce_journal.remove(&oldest);
            }
        }
        self.nonce_journal.insert(nonce, now);
    }

    /// Authenticates a bitmap Interest's sealed advertisement before the
    /// forwarder or `handle_bitmap_seen` touch it. Other Interests pass:
    /// discovery probes carry only the bare prober id and content/metadata
    /// Interests carry no announcement at all.
    fn screen_interest(&mut self, ctx: &mut NodeCtx<'_>, interest: &Interest) -> bool {
        if !matches!(
            namespace::classify(interest.name()),
            Some(DapesName::Bitmap { .. })
        ) {
            return false;
        }
        match interest.app_parameters() {
            Some(params) => self.screen_announcement(ctx, params),
            None => false,
        }
    }

    /// Screens an overheard Data packet before any protocol state —
    /// including the Content Store — can absorb it: announcements must
    /// open under the trust anchor and pass the replay guard;
    /// content/metadata segments must carry a valid signature.
    fn screen_data(&mut self, ctx: &mut NodeCtx<'_>, data: &Data) -> bool {
        match namespace::classify(data.name()) {
            Some(DapesName::Bitmap { .. }) | Some(DapesName::Discovery { .. }) => {
                self.screen_announcement(ctx, data.content())
            }
            Some(DapesName::Content { .. }) | Some(DapesName::Metadata { .. }) => {
                if data.verify(&self.anchor) {
                    false
                } else {
                    self.stats.segments_rejected_tamper += 1;
                    true
                }
            }
            None => false,
        }
    }

    /// Opens a sealed announcement: counts and drops bad signatures and
    /// replays. The claimed producer is the peer id leading the base
    /// payload (both the bitmap and the discovery encodings start with
    /// it), so a forged producer name fails signature verification.
    fn screen_announcement(&mut self, ctx: &mut NodeCtx<'_>, sealed: &[u8]) -> bool {
        let claimed = auth::strip(sealed)
            .filter(|base| base.len() >= 4)
            .map(|base| u32::from_be_bytes(base[..4].try_into().expect("4 bytes")));
        let Some(claimed) = claimed else {
            // No room for an envelope at all: an unsigned or truncated
            // announcement in a signed deployment is a forgery.
            self.stats.adverts_rejected_bad_sig += 1;
            return true;
        };
        let producer = format!("peer-{claimed}");
        match auth::open(sealed, &producer, &self.anchor) {
            Ok((_base, ts)) => {
                let key_id = self.anchor.key_id_for(&producer);
                match self.replay.check(key_id, ts, ctx.now) {
                    ReplayVerdict::Fresh | ReplayVerdict::Duplicate => false,
                    ReplayVerdict::Replayed => {
                        self.stats.adverts_rejected_replay += 1;
                        true
                    }
                }
            }
            Err(OpenError::BadSignature) | Err(OpenError::Replay) => {
                self.stats.adverts_rejected_bad_sig += 1;
                true
            }
        }
    }

    fn handle_app_data(&mut self, ctx: &mut NodeCtx<'_>, data: &Data) {
        match namespace::classify(data.name()) {
            Some(DapesName::Metadata { collection, .. }) => {
                self.handle_metadata_segment(ctx, &collection, data);
            }
            Some(DapesName::Content { collection, .. }) => {
                if data.verify(&self.anchor) {
                    self.handle_content_data(ctx, &collection, data);
                } else {
                    self.stats.verify_failures += 1;
                }
            }
            // Bitmap and discovery data were already handled during
            // overhearing.
            _ => {}
        }
    }
}

/// Bounded exponential backoff: the effective retransmission timeout after
/// `retx` attempts is `base << retx`, saturating, clamped to `cap` — a
/// downloader keeps probing through an outage at the capped rate instead of
/// backing off into silence.
fn backed_off_timeout(base: SimDuration, cap: SimDuration, retx: u32) -> SimDuration {
    let base_us = base.as_micros().max(1);
    let cap_us = cap.as_micros().max(base_us);
    let scaled = base_us.saturating_mul(1u64 << retx.min(16));
    SimDuration::from_micros(scaled.min(cap_us))
}

fn response_kind_for(data: &Data) -> FrameKind {
    match namespace::classify(data.name()) {
        Some(DapesName::Discovery { .. }) => kinds::DISCOVERY_DATA,
        Some(DapesName::Bitmap { .. }) => kinds::BITMAP_DATA,
        Some(DapesName::Metadata { .. }) => kinds::METADATA_DATA,
        Some(DapesName::Content { .. }) => kinds::CONTENT_DATA,
        None => FrameKind::UNKNOWN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ChunkedFile;
    use dapes_ndn::cs::EvictionPolicyKind;

    #[test]
    fn seeding_a_chunked_file_populates_a_budgeted_store() {
        let budget = 64 * 1024;
        let cfg = DapesConfig {
            cs_budget_bytes: Some(budget),
            cs_policy: EvictionPolicyKind::Lru,
            ..DapesConfig::default()
        };
        let anchor = TrustAnchor::from_seed(b"seed-test");
        let mut peer = DapesPeer::new(0, cfg, anchor, WantPolicy::Nothing);
        let col = Name::from_uri("/damaged-bridge-1533783192");
        let file = ChunkedFile::synthetic(&col, "pic", 5000, 1024);
        let inserted = peer.seed_chunked_file(&file, SimTime::ZERO);
        assert_eq!(inserted, file.chunk_count() + 1);
        let cs = peer.content_store();
        assert_eq!(cs.len(), inserted);
        assert_eq!(cs.policy_kind(), EvictionPolicyKind::Lru);
        assert!(
            cs.lookup_exact(&namespace::catalog_name(&col, "pic"))
                .is_some(),
            "catalog resident"
        );
        for seq in 0..file.chunk_count() as u64 {
            assert!(
                cs.lookup_exact(&namespace::packet_name(&col, "pic", seq))
                    .is_some(),
                "segment {seq} resident"
            );
        }
        assert!(cs.resident_bytes() <= budget, "within the byte budget");
        cs.audit().expect("exact accounting");
    }
}
