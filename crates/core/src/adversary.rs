//! Attacker node types for the adversarial scenario axis.
//!
//! Each [`Adversary`] is a [`NetStack`] implementing one hostile behavior
//! from the threat model the signed control plane ([`crate::auth`]) defends
//! against:
//!
//! * [`AdversaryKind::SpoofForger`] — periodically broadcasts discovery
//!   replies impersonating a victim producer, sealed under a *rogue* trust
//!   anchor, so every honest receiver rejects them with a bad signature;
//! * [`AdversaryKind::SegmentTamperer`] — answers overheard content
//!   Interests with unsigned, bit-flipped segments faster than the honest
//!   responders, so the victim's signature check fires on a PIT-matching
//!   Data;
//! * [`AdversaryKind::InterestReplayer`] — records overheard content
//!   Interests and sealed announcements and re-injects the exact frame
//!   bytes after a hold longer than the replay window;
//! * [`AdversaryKind::NoiseFlooder`] — saturates the channel with frames
//!   that are not NDN packets at all.
//!
//! Every hostile transmission carries a dedicated [`FrameKind`]
//! ([`attack_kinds`]), so the simulator's per-kind *delivery* counters give
//! the exact number of hostile frames each honest node actually heard —
//! the denominator the defense counters in
//! [`PeerStats`](crate::stats::PeerStats) must account for exactly
//! (collision- and loss-dropped frames were never seen, so they cannot be
//! rejected).

use crate::auth::{self, MonotonicStamp};
use crate::discovery::{DiscoveryInfo, OfferedCollection};
use crate::namespace::{self, DapesName};
use crate::stats::kinds;
use dapes_crypto::signing::TrustAnchor;
use dapes_ndn::name::Name;
use dapes_ndn::packet::{Data, Packet};
use dapes_netsim::node::{NetStack, NodeCtx};
use dapes_netsim::payload::Payload;
use dapes_netsim::radio::{Frame, FrameKind};
use dapes_netsim::time::SimDuration;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// Frame kinds for hostile transmissions (DAPES uses 1–8, baselines 20+,
/// the scheduler bench 50+).
pub mod attack_kinds {
    use super::FrameKind;

    /// Junk bytes from a [`super::AdversaryKind::NoiseFlooder`].
    pub const FLOOD: FrameKind = FrameKind(30);
    /// Forged announcement from a [`super::AdversaryKind::SpoofForger`].
    pub const SPOOF: FrameKind = FrameKind(31);
    /// Tampered segment from a [`super::AdversaryKind::SegmentTamperer`].
    pub const TAMPER: FrameKind = FrameKind(32);
    /// Re-injected Interest from an
    /// [`super::AdversaryKind::InterestReplayer`].
    pub const INTEREST_REPLAY: FrameKind = FrameKind(33);
    /// Re-injected announcement Data from an
    /// [`super::AdversaryKind::InterestReplayer`].
    pub const ADVERT_REPLAY: FrameKind = FrameKind(34);

    /// Every hostile kind.
    pub const ALL: [FrameKind; 5] = [FLOOD, SPOOF, TAMPER, INTEREST_REPLAY, ADVERT_REPLAY];
}

/// Which hostile behavior an [`Adversary`] node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdversaryKind {
    /// Broadcasts discovery replies impersonating a victim producer,
    /// sealed under a rogue anchor.
    SpoofForger,
    /// Answers overheard content Interests with unsigned junk segments.
    SegmentTamperer,
    /// Re-injects overheard Interests and announcements after a delay.
    InterestReplayer,
    /// Broadcasts junk frames that fail to parse as NDN packets.
    NoiseFlooder,
}

impl AdversaryKind {
    /// Every attacker type, for scenario-matrix sweeps.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::SpoofForger,
        AdversaryKind::SegmentTamperer,
        AdversaryKind::InterestReplayer,
        AdversaryKind::NoiseFlooder,
    ];

    /// A stable lowercase label for reports and CI logs.
    pub fn label(self) -> &'static str {
        match self {
            AdversaryKind::SpoofForger => "spoof",
            AdversaryKind::SegmentTamperer => "tamper",
            AdversaryKind::InterestReplayer => "replay",
            AdversaryKind::NoiseFlooder => "flood",
        }
    }
}

/// Attacker-side transmission counters, the "sent" half of the
/// defense-accounting invariant.
#[derive(Clone, Debug, Default)]
pub struct AdversarySent {
    /// Junk frames broadcast.
    pub flood_frames: u64,
    /// Forged announcements broadcast.
    pub forged_adverts: u64,
    /// Tampered segments broadcast.
    pub tampered_segments: u64,
    /// Interests re-injected.
    pub replayed_interests: u64,
    /// Announcement Data re-injected.
    pub replayed_adverts: u64,
}

impl AdversarySent {
    /// Total hostile frames broadcast.
    pub fn total(&self) -> u64 {
        self.flood_frames
            + self.forged_adverts
            + self.tampered_segments
            + self.replayed_interests
            + self.replayed_adverts
    }
}

/// Timer token for the periodic behaviors (flooder, forger).
const TOKEN_PERIODIC: u64 = u64::MAX;

/// One hostile node. See the [module docs](self) for the behavior
/// catalogue; all scheduling is deterministic given the node's seeded RNG.
pub struct Adversary {
    id: u32,
    kind: AdversaryKind,
    /// Producer id the forger impersonates.
    victim: u32,
    /// Cadence of the periodic behaviors (flood, forge).
    period: SimDuration,
    /// How fast the tamperer answers an overheard Interest — small enough
    /// to beat the honest responders' transmission window.
    reply_delay: SimDuration,
    /// How long the replayer holds a captured frame before re-injecting
    /// it. Must exceed the victims' replay window, or the re-injection is
    /// indistinguishable from an honest wireless echo.
    replay_delay: SimDuration,
    /// The forger's anchor: *not* the network's, so its seals never
    /// verify.
    rogue: TrustAnchor,
    stamp: MonotonicStamp,
    sent: AdversarySent,
    /// Scheduled hostile transmissions, by timer token.
    pending: BTreeMap<u64, (Payload, FrameKind)>,
    next_token: u64,
    /// Frames already captured by the replayer (each unique frame is
    /// re-injected once).
    captured: BTreeSet<Vec<u8>>,
}

impl Adversary {
    /// Creates an adversary node. `victim` is the producer id the spoof
    /// forger impersonates (ignored by the other kinds). The rogue anchor
    /// must differ from the network's shared anchor.
    pub fn new(id: u32, kind: AdversaryKind, victim: u32, rogue: TrustAnchor) -> Self {
        Adversary {
            id,
            kind,
            victim,
            period: SimDuration::from_millis(500),
            reply_delay: SimDuration::from_millis(1),
            replay_delay: SimDuration::from_secs(6),
            rogue,
            stamp: MonotonicStamp::default(),
            sent: AdversarySent::default(),
            pending: BTreeMap::new(),
            next_token: 0,
            captured: BTreeSet::new(),
        }
    }

    /// Overrides the periodic cadence (flooder, forger).
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }

    /// Overrides the replayer's hold time. Callers must keep it above the
    /// victims' `replay_window_ms`.
    pub fn with_replay_delay(mut self, delay: SimDuration) -> Self {
        self.replay_delay = delay;
        self
    }

    /// The behavior this node runs.
    pub fn kind(&self) -> AdversaryKind {
        self.kind
    }

    /// Attacker-side transmission counters.
    pub fn sent(&self) -> &AdversarySent {
        &self.sent
    }

    fn schedule(&mut self, ctx: &mut NodeCtx<'_>, payload: Payload, kind: FrameKind) {
        self.next_token += 1;
        let token = self.next_token;
        let delay = match kind {
            attack_kinds::TAMPER => self.reply_delay,
            _ => self.replay_delay,
        };
        self.pending.insert(token, (payload, kind));
        ctx.set_timer(delay, token);
    }

    fn fire_periodic(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.kind {
            AdversaryKind::NoiseFlooder => {
                // A junk frame: 0xAA is no NDN packet type, so every
                // receiver's header peek fails on the first byte.
                let mut junk = vec![0xAA; 48];
                for b in junk.iter_mut().skip(1) {
                    *b = rand::Rng::gen(ctx.rng());
                }
                self.sent.flood_frames += 1;
                ctx.send_frame(junk, attack_kinds::FLOOD, 0, SimDuration::ZERO);
            }
            AdversaryKind::SpoofForger => {
                // A forged discovery reply claiming the victim producer
                // offers a phantom collection — sealed under the rogue
                // anchor, so honest receivers reject the signature.
                let info = DiscoveryInfo {
                    peer: self.victim,
                    offers: vec![OfferedCollection {
                        collection: Name::from_uri("/forged-collection"),
                        metadata: Name::from_uri("/forged-collection/metadata-file/00000000"),
                    }],
                };
                let ts = self.stamp.next(ctx.now);
                let producer = format!("peer-{}", self.victim);
                let sealed = auth::seal(&info.to_wire(), ts, &self.rogue.keypair(&producer));
                let data = Data::new(namespace::discovery_reply_name(self.victim), sealed)
                    .with_freshness_ms(1_000)
                    .signed(&self.rogue.keypair(&producer));
                self.sent.forged_adverts += 1;
                ctx.send_frame(data.wire(), attack_kinds::SPOOF, 0, SimDuration::ZERO);
            }
            AdversaryKind::SegmentTamperer | AdversaryKind::InterestReplayer => {}
        }
    }
}

impl NetStack for Adversary {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.kind {
            AdversaryKind::NoiseFlooder | AdversaryKind::SpoofForger => {
                ctx.set_timer(self.period, TOKEN_PERIODIC);
            }
            AdversaryKind::SegmentTamperer | AdversaryKind::InterestReplayer => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
        match self.kind {
            AdversaryKind::SegmentTamperer => {
                // Answer content Interests with an unsigned junk segment,
                // beating the honest responders' jittered replies.
                if frame.kind != kinds::CONTENT_INTEREST {
                    return;
                }
                let Ok(Packet::Interest(interest)) = Packet::decode_payload(&frame.payload) else {
                    return;
                };
                if !matches!(
                    namespace::classify(interest.name()),
                    Some(DapesName::Content { .. })
                ) {
                    return;
                }
                let tampered = Data::new(interest.name().clone(), vec![0x5A; 64]);
                self.schedule(ctx, tampered.wire(), attack_kinds::TAMPER);
            }
            AdversaryKind::InterestReplayer => {
                // Capture each unique content Interest and sealed
                // announcement once, and re-inject the exact bytes later.
                let replay_kind = match frame.kind {
                    kinds::CONTENT_INTEREST => attack_kinds::INTEREST_REPLAY,
                    kinds::DISCOVERY_DATA | kinds::BITMAP_DATA => attack_kinds::ADVERT_REPLAY,
                    _ => return,
                };
                if !self.captured.insert(frame.payload.as_ref().to_vec()) {
                    return;
                }
                self.schedule(ctx, frame.payload.clone(), replay_kind);
            }
            AdversaryKind::SpoofForger | AdversaryKind::NoiseFlooder => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == TOKEN_PERIODIC {
            self.fire_periodic(ctx);
            ctx.set_timer(self.period, TOKEN_PERIODIC);
            return;
        }
        if let Some((payload, kind)) = self.pending.remove(&token) {
            // Counted at transmission, not capture: a scheduled frame whose
            // timer never fires (run horizon) was not sent.
            match kind {
                attack_kinds::TAMPER => self.sent.tampered_segments += 1,
                attack_kinds::INTEREST_REPLAY => self.sent.replayed_interests += 1,
                attack_kinds::ADVERT_REPLAY => self.sent.replayed_adverts += 1,
                _ => {}
            }
            ctx.send_frame(payload, kind, 0, SimDuration::ZERO);
        }
    }

    fn live_state_bytes(&self) -> usize {
        self.captured.iter().map(Vec::len).sum::<usize>()
            + self
                .pending
                .values()
                .map(|(p, _)| p.as_ref().len())
                .sum::<usize>()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for Adversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adversary")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("victim", &self.victim)
            .field("sent", &self.sent)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapes_crypto::signing::TrustAnchor;

    #[test]
    fn attack_kinds_do_not_collide_with_dapes_kinds() {
        let mut seen = std::collections::HashSet::new();
        for k in kinds::ALL_DAPES.iter().chain(attack_kinds::ALL.iter()) {
            assert!(seen.insert(*k), "duplicate kind {k:?}");
        }
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: std::collections::HashSet<&str> =
            AdversaryKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
        assert!(labels.contains("flood"));
    }

    #[test]
    fn forged_seal_never_opens_under_the_shared_anchor() {
        let shared = TrustAnchor::from_seed(b"network");
        let rogue = TrustAnchor::from_seed(b"rogue");
        let info = DiscoveryInfo {
            peer: 0,
            offers: vec![],
        };
        let sealed = auth::seal(&info.to_wire(), 1, &rogue.keypair("peer-0"));
        assert!(auth::open(&sealed, "peer-0", &shared).is_err());
    }

    #[test]
    fn tampered_segment_fails_verification() {
        let anchor = TrustAnchor::from_seed(b"network");
        let tampered = Data::new(Name::from_uri("/c/file-0/p/0"), vec![0x5A; 64]);
        assert!(!tampered.verify(&anchor));
    }

    #[test]
    fn junk_frame_fails_the_header_peek() {
        let junk: Payload = vec![0xAAu8; 48].into();
        assert!(Packet::peek_header(&junk).is_err());
    }
}
