//! Data-advertisement prioritization and PEBA collision mitigation
//! (paper §IV-F).
//!
//! When several peers must transmit bitmaps during an encounter, the first
//! transmission goes to the peer with the most data; every later
//! transmission is prioritized by how many packets the sender holds that
//! are *missing from the union of already-transmitted bitmaps*. Without
//! PEBA, peers linearly scale a default transmission window by that
//! fraction and collide whenever their fractions are close. PEBA
//! ("Priority-based Exponential Backoff Algorithm") reacts to a detected
//! collision by doubling a slot count and placing peers into priority
//! groups — ≥ half of the missing packets → first group, otherwise second —
//! preserving the prioritization semantics while separating transmissions.

use crate::bitmap::Bitmap;
use dapes_netsim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// Per-collection, per-encounter advertisement transmission state.
#[derive(Clone, Debug)]
pub struct AdvertScheduler {
    /// Union of all bitmaps transmitted so far in this encounter.
    union: Option<Bitmap>,
    /// PEBA slot count; 0 until the first collision of the encounter.
    slots: u32,
    peba_enabled: bool,
    window: SimDuration,
    slot_len: SimDuration,
}

impl AdvertScheduler {
    /// Creates a scheduler.
    ///
    /// `window` is the default transmission window (paper: 20 ms);
    /// `slot_len` is the PEBA slot duration, sized to roughly one bitmap
    /// transmission (paper footnote 4: average packet size and channel
    /// state).
    pub fn new(peba_enabled: bool, window: SimDuration, slot_len: SimDuration) -> Self {
        AdvertScheduler {
            union: None,
            slots: 0,
            peba_enabled,
            window,
            slot_len,
        }
    }

    /// Resets for a new encounter (the paper's priority groups and slots
    /// are per-encounter).
    pub fn reset(&mut self) {
        self.union = None;
        self.slots = 0;
    }

    /// Whether any bitmap has been heard or sent this encounter.
    pub fn has_union(&self) -> bool {
        self.union.is_some()
    }

    /// Marginal coverage of `mine`: how many packets it holds that the
    /// already-transmitted union lacks. Before any transmission this is
    /// simply the number of packets held.
    pub fn marginal(&self, mine: &Bitmap) -> usize {
        match &self.union {
            None => mine.count_set(),
            Some(u) if u.len() == mine.len() => mine.count_set_and_missing_from(u),
            // Union for a different layout (shouldn't happen): treat as new.
            Some(_) => mine.count_set(),
        }
    }

    /// The priority fraction: `marginal / packets missing from the union`
    /// (or the fraction of all packets held, for the first transmission).
    pub fn priority_fraction(&self, mine: &Bitmap) -> f64 {
        match &self.union {
            None => mine.fraction_set(),
            Some(u) if u.len() == mine.len() => {
                let missing = u.count_missing();
                if missing == 0 {
                    0.0
                } else {
                    self.marginal(mine) as f64 / missing as f64
                }
            }
            Some(_) => mine.fraction_set(),
        }
    }

    /// Computes the transmission delay for our bitmap, or `None` when the
    /// union already covers everything we could add (transmission would be
    /// pure overhead; cancel it).
    ///
    /// This is the *linear* prioritization: `window / fraction`, clamped to
    /// `10 × window` so peers with little to add still eventually speak.
    pub fn delay_for(&self, mine: &Bitmap, rng: &mut SmallRng) -> Option<SimDuration> {
        if self.marginal(mine) == 0 {
            return None;
        }
        let fraction = self.priority_fraction(mine).clamp(1e-6, 1.0);
        let scaled = (self.window.as_micros() as f64 / fraction).round() as u64;
        let clamped = scaled.min(self.window.as_micros() * 10);
        // Small jitter (one slot) so identical fractions don't always align.
        let jitter = rng.gen_range(0..=self.slot_len.as_micros() / 4);
        Some(SimDuration::from_micros(clamped + jitter))
    }

    /// Records a bitmap transmission heard (or our own successful one):
    /// folds it into the union.
    pub fn record_transmitted(&mut self, bitmap: &Bitmap) {
        match &mut self.union {
            Some(u) if u.len() == bitmap.len() => u.union_with(bitmap),
            _ => self.union = Some(bitmap.clone()),
        }
    }

    /// Reacts to a detected collision of our own bitmap transmission,
    /// returning the PEBA retry delay. With PEBA disabled, falls back to
    /// re-drawing the linear delay.
    pub fn collision_backoff(&mut self, mine: &Bitmap, rng: &mut SmallRng) -> SimDuration {
        if !self.peba_enabled {
            return self
                .delay_for(mine, rng)
                .unwrap_or(SimDuration::from_micros(self.window.as_micros()));
        }
        // Double the slots (two on the first collision of the encounter).
        self.slots = (self.slots.max(1) * 2).min(64);
        let groups = 2u32;
        let per_group = (self.slots / groups).max(1);
        let group = if self.priority_fraction(mine) >= 0.5 {
            0
        } else {
            1
        };
        let slot = rng.gen_range(group * per_group..(group + 1) * per_group);
        self.slot_len * slot as u64 + SimDuration::from_micros(rng.gen_range(0..100))
    }

    /// Current PEBA slot count (0 before any collision this encounter).
    pub fn slots(&self) -> u32 {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn bm(bits: &str) -> Bitmap {
        let mut b = Bitmap::new(bits.len());
        for (i, c) in bits.chars().enumerate() {
            if c == '1' {
                b.set(i);
            }
        }
        b
    }

    fn sched(peba: bool) -> AdvertScheduler {
        AdvertScheduler::new(
            peba,
            SimDuration::from_millis(20),
            SimDuration::from_millis(2),
        )
    }

    #[test]
    fn first_transmission_prefers_most_data() {
        // Paper: "for the transmission of the first bitmap during an
        // encounter, the peer that has most of the data receives priority".
        let s = sched(true);
        let mut r = rng();
        let rich = s.delay_for(&bm("1111111110"), &mut r).expect("has data");
        let poor = s.delay_for(&bm("1000000000"), &mut r).expect("has data");
        assert!(rich < poor, "rich {rich:?} should precede poor {poor:?}");
    }

    #[test]
    fn empty_peer_does_not_transmit_first() {
        let s = sched(true);
        assert_eq!(s.delay_for(&bm("0000"), &mut rng()), None);
    }

    #[test]
    fn subsequent_priority_uses_marginal_coverage() {
        // Fig. 5: after A's bitmap, C (3 of 6 missing) beats B (2) and D (1).
        let mut s = sched(true);
        s.record_transmitted(&bm("1001011000")); // A
        let mut r = rng();
        let c = s.delay_for(&bm("0000000111"), &mut r).expect("c");
        let b = s.delay_for(&bm("0110001000"), &mut r).expect("b");
        let d = s.delay_for(&bm("1001100000"), &mut r).expect("d");
        assert!(c < b, "C={c:?} should precede B={b:?}");
        assert!(b < d, "B={b:?} should precede D={d:?}");
    }

    #[test]
    fn covered_peer_cancels() {
        let mut s = sched(true);
        s.record_transmitted(&bm("1111000000"));
        // This peer's packets are all inside the union: nothing to add.
        assert_eq!(s.delay_for(&bm("1100000000"), &mut rng()), None);
    }

    #[test]
    fn union_accumulates_across_transmissions() {
        let mut s = sched(true);
        s.record_transmitted(&bm("1100"));
        s.record_transmitted(&bm("0011"));
        assert_eq!(s.marginal(&bm("1111")), 0);
        assert_eq!(s.delay_for(&bm("1111"), &mut rng()), None);
    }

    #[test]
    fn peba_collision_creates_two_slots_and_groups() {
        // Fig. 5 walk-through: B and C collide after A's bitmap; C (>= 1/2
        // of the missing packets) joins group 0, B (< 1/2) group 1.
        let mut sc = sched(true);
        sc.record_transmitted(&bm("1001011000"));
        let mut sb = sc.clone();
        let mut r = rng();
        let dc = sc.collision_backoff(&bm("0000000111"), &mut r);
        let db = sb.collision_backoff(&bm("0110001000"), &mut r);
        assert_eq!(sc.slots(), 2);
        // With two slots and one slot per group, C always draws slot 0 and
        // B always draws slot 1.
        assert!(
            dc < SimDuration::from_millis(2),
            "C in first slot, got {dc:?}"
        );
        assert!(
            db >= SimDuration::from_millis(2),
            "B in second slot, got {db:?}"
        );
    }

    #[test]
    fn peba_slots_double_on_repeat_collisions() {
        let mut s = sched(true);
        s.record_transmitted(&bm("1001011000"));
        let mut r = rng();
        let my = bm("0110001000");
        s.collision_backoff(&my, &mut r);
        assert_eq!(s.slots(), 2);
        s.collision_backoff(&my, &mut r);
        assert_eq!(s.slots(), 4);
        s.collision_backoff(&my, &mut r);
        assert_eq!(s.slots(), 8);
    }

    #[test]
    fn reset_clears_union_and_slots() {
        let mut s = sched(true);
        s.record_transmitted(&bm("1111"));
        s.collision_backoff(&bm("0001"), &mut rng());
        assert!(s.has_union());
        assert!(s.slots() > 0);
        s.reset();
        assert!(!s.has_union());
        assert_eq!(s.slots(), 0);
        // After reset the first-transmission rule applies again.
        assert!(s.delay_for(&bm("0001"), &mut rng()).is_some());
    }

    #[test]
    fn without_peba_backoff_redraws_linear_delay() {
        let mut s = sched(false);
        s.record_transmitted(&bm("1001011000"));
        let d = s.collision_backoff(&bm("0110001000"), &mut rng());
        assert!(d > SimDuration::ZERO);
        assert_eq!(s.slots(), 0, "no slotting without PEBA");
    }

    #[test]
    fn delay_clamped_for_tiny_fractions() {
        let mut s = sched(true);
        // Union missing 9999 packets; we hold 1 of them.
        let mut big_union = Bitmap::new(10_000);
        big_union.set(0);
        s.record_transmitted(&big_union);
        let mut mine = Bitmap::new(10_000);
        mine.set(5);
        let d = s.delay_for(&mine, &mut rng()).expect("one to add");
        assert!(d <= SimDuration::from_millis(200) + SimDuration::from_millis(1));
    }

    #[test]
    fn zero_neighbors_first_transmission_is_within_linear_window() {
        // An encounter where nothing has been heard yet (no neighbors have
        // spoken): the delay follows the plain linear rule — at best one
        // window for a full bitmap, clamped at ten windows for a sparse one
        // — and never cancels while we hold anything at all.
        let s = sched(true);
        let mut r = rng();
        let full = s.delay_for(&bm("1111111111"), &mut r).expect("full peer");
        assert!(full >= SimDuration::from_millis(20), "got {full:?}");
        assert!(
            full <= SimDuration::from_millis(20) + SimDuration::from_micros(500),
            "full bitmap waits one window plus jitter, got {full:?}"
        );
        let sparse = s.delay_for(&bm("1000000000"), &mut r).expect("sparse peer");
        assert!(
            sparse <= SimDuration::from_millis(200) + SimDuration::from_micros(500),
            "sparse bitmap is clamped at ten windows, got {sparse:?}"
        );
    }

    #[test]
    fn saturated_channel_slots_cap_at_64_and_backoff_stays_bounded() {
        // A saturated channel: our bitmap transmission collides every
        // single time. The exponential doubling must stop at 64 slots and
        // every drawn backoff must stay under the 64-slot horizon, so a
        // congested encounter cannot push a peer into unbounded silence.
        let mut s = sched(true);
        s.record_transmitted(&bm("1001011000"));
        let mine = bm("0110001000");
        let mut r = rng();
        let horizon = SimDuration::from_millis(2) * 64 + SimDuration::from_micros(100);
        for round in 0..20 {
            let d = s.collision_backoff(&mine, &mut r);
            assert!(
                d <= horizon,
                "round {round}: backoff {d:?} beyond the 64-slot horizon"
            );
        }
        assert_eq!(s.slots(), 64, "slots must saturate, not keep doubling");
        // A fresh encounter starts the doubling over.
        s.reset();
        s.record_transmitted(&bm("1001011000"));
        s.collision_backoff(&mine, &mut r);
        assert_eq!(s.slots(), 2);
    }

    #[test]
    fn half_marginal_coverage_lands_in_first_group() {
        // The paper's grouping rule is ">= half of the missing packets".
        // Union holds 1111100000: 5 packets missing. A peer adding exactly
        // 3 (> half) and one adding exactly 2 (< half) must land in
        // different groups; the boundary case rounds toward the first group.
        let mut s = sched(true);
        s.record_transmitted(&bm("1111100000"));
        let over = bm("0000011100"); // 3 of 5 missing
        let under = bm("0000000011"); // 2 of 5 missing
        let mut s_over = s.clone();
        let mut s_under = s.clone();
        let mut r = rng();
        let d_over = s_over.collision_backoff(&over, &mut r);
        let d_under = s_under.collision_backoff(&under, &mut r);
        assert!(
            d_over < SimDuration::from_millis(2),
            "over-half peer must draw from the first slot group, got {d_over:?}"
        );
        assert!(
            d_under >= SimDuration::from_millis(2),
            "under-half peer must draw from the second slot group, got {d_under:?}"
        );
    }

    #[test]
    fn delays_are_deterministic_for_equal_seeds() {
        let draw = || {
            let mut s = sched(true);
            s.record_transmitted(&bm("1001011000"));
            let mut r = rng();
            let linear = s.delay_for(&bm("0110001000"), &mut r);
            let backoff = s.collision_backoff(&bm("0110001000"), &mut r);
            (linear, backoff, s.slots())
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn empty_union_after_covering_transmission_cancels_everyone() {
        // Once the union covers the whole collection, no peer has marginal
        // coverage left: every candidate transmission cancels.
        let mut s = sched(true);
        s.record_transmitted(&bm("1111111111"));
        let mut r = rng();
        assert_eq!(s.delay_for(&bm("1111111111"), &mut r), None);
        assert_eq!(s.delay_for(&bm("0000000001"), &mut r), None);
        assert_eq!(s.priority_fraction(&bm("1111111111")), 0.0);
    }
}
