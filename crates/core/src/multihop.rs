//! Multi-hop forwarding and suppression (paper §V).
//!
//! Every node keeps *short-lived knowledge* about the data available around
//! it, fed by overheard discovery replies, bitmap exchanges and Data
//! transmissions. The [`DapesStrategy`] plugs into the NDN forwarder and
//! decides, per received Interest, whether re-broadcasting it is likely to
//! bring data back:
//!
//! * **Pure forwarders** (§V-A) know nothing of DAPES semantics: they
//!   forward probabilistically after a random delay, cache overheard Data,
//!   and hold per-name suppression timers after unanswered forwards.
//! * **DAPES intermediate nodes** (§V-B) consult neighbor bitmaps: a
//!   content Interest is forwarded when some neighbor advertises the packet
//!   and suppressed when the local knowledge says nobody has it, falling
//!   back to the probabilistic scheme when ignorant.

use crate::bitmap::Bitmap;
use crate::metadata::PacketIndex;
use crate::namespace::{self, DapesName};
use dapes_ndn::face::FaceId;
use dapes_ndn::forwarder::{Decision, Strategy};
use dapes_ndn::name::Name;
use dapes_ndn::packet::Interest;
use dapes_netsim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What a node understands about DAPES.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Full DAPES peer (producer, downloader, or idle DAPES node).
    Dapes,
    /// NDN-only node: caches and forwards but has no DAPES semantics.
    PureForwarder,
}

/// What we know about one neighbor.
#[derive(Clone, Debug, Default)]
pub struct NeighborInfo {
    /// Last time any frame from this peer was heard.
    pub last_heard: SimTime,
    /// Latest advertised bitmap per collection.
    pub bitmaps: BTreeMap<Name, Bitmap>,
    /// Collections the peer has expressed interest in.
    pub wants: Vec<Name>,
}

impl NeighborInfo {
    fn state_bytes(&self) -> usize {
        self.bitmaps
            .values()
            .map(|b| b.state_bytes() + 32)
            .sum::<usize>()
            + self.wants.iter().map(Name::state_bytes).sum::<usize>()
            + 16
    }
}

/// Shared multi-hop state: knowledge store, suppression timers, and the
/// forwarding-accuracy bookkeeping behind the paper's "83 % of forwarded
/// Interests brought data back" claim.
#[derive(Debug)]
pub struct MultihopState {
    /// This node's role.
    pub role: NodeRole,
    /// Whether multi-hop forwarding is enabled at all (Fig. 9g "single-hop"
    /// disables it).
    pub enabled: bool,
    /// Probability of forwarding when no knowledge applies (paper default
    /// 20 %).
    pub forward_prob: f64,
    /// Per-neighbor knowledge.
    pub neighbors: BTreeMap<u32, NeighborInfo>,
    /// Packet indices for collections whose metadata we hold, needed to
    /// interpret bitmap bits.
    pub indices: BTreeMap<Name, PacketIndex>,
    /// Bits we ourselves hold per collection (so the strategy does not
    /// re-broadcast Interests the application can answer).
    pub have: BTreeMap<Name, Bitmap>,
    /// Suppressed names and when the suppression lapses.
    pub suppressed: BTreeMap<Name, SimTime>,
    /// Interests we forwarded and when, awaiting a data response.
    pub pending_response: BTreeMap<Name, SimTime>,
    /// Forwarded Interests that brought data back.
    pub forward_successes: u64,
    /// Forwarded Interests that timed out.
    pub forward_failures: u64,
    /// How long to wait for a response before suppressing.
    pub response_timeout: SimDuration,
    /// How long a suppression lasts.
    pub suppress_duration: SimDuration,
    /// Neighbor expiry: entries older than this are dropped.
    pub neighbor_timeout: SimDuration,
    rng: SmallRng,
}

impl MultihopState {
    /// Creates the state for a node.
    pub fn new(role: NodeRole, enabled: bool, forward_prob: f64, seed: u64) -> Self {
        MultihopState {
            role,
            enabled,
            forward_prob,
            neighbors: BTreeMap::new(),
            indices: BTreeMap::new(),
            have: BTreeMap::new(),
            suppressed: BTreeMap::new(),
            pending_response: BTreeMap::new(),
            forward_successes: 0,
            forward_failures: 0,
            response_timeout: SimDuration::from_millis(400),
            suppress_duration: SimDuration::from_secs(2),
            neighbor_timeout: SimDuration::from_secs(5),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Notes that `peer` was heard at `now`.
    pub fn note_peer(&mut self, peer: u32, now: SimTime) -> &mut NeighborInfo {
        let info = self.neighbors.entry(peer).or_default();
        info.last_heard = now;
        info
    }

    /// Records a neighbor's bitmap for a collection.
    pub fn record_bitmap(&mut self, peer: u32, collection: &Name, bitmap: Bitmap, now: SimTime) {
        let info = self.note_peer(peer, now);
        info.bitmaps.insert(collection.clone(), bitmap);
        if !info.wants.contains(collection) {
            info.wants.push(collection.clone());
        }
    }

    /// Records that a neighbor holds one packet (observed from a Data
    /// transmission).
    pub fn note_neighbor_has(
        &mut self,
        peer: u32,
        collection: &Name,
        global_idx: usize,
        now: SimTime,
    ) {
        let info = self.note_peer(peer, now);
        if let Some(bm) = info.bitmaps.get_mut(collection) {
            if global_idx < bm.len() {
                bm.set(global_idx);
            }
        }
    }

    /// Records that a neighbor is interested in a collection.
    pub fn note_neighbor_wants(&mut self, peer: u32, collection: &Name, now: SimTime) {
        let info = self.note_peer(peer, now);
        if !info.wants.contains(collection) {
            info.wants.push(collection.clone());
        }
    }

    /// Whether any neighbor knowledge says a packet is available nearby.
    pub fn neighbor_has_packet(&self, collection: &Name, global_idx: usize) -> Option<bool> {
        let mut any_bitmap = false;
        for info in self.neighbors.values() {
            if let Some(bm) = info.bitmaps.get(collection) {
                any_bitmap = true;
                if global_idx < bm.len() && bm.get(global_idx) {
                    return Some(true);
                }
            }
        }
        if any_bitmap {
            Some(false)
        } else {
            None // no knowledge at all
        }
    }

    /// Whether any neighbor is known to care about a collection.
    pub fn any_neighbor_interested(&self, collection: &Name) -> bool {
        self.neighbors
            .values()
            .any(|i| i.wants.contains(collection) || i.bitmaps.contains_key(collection))
    }

    /// Called when Data for `name` is observed: resolves a pending forward.
    pub fn note_data_seen(&mut self, name: &Name) {
        if self.pending_response.remove(name).is_some() {
            self.forward_successes += 1;
        }
        // Fresh data also lifts an existing suppression for the name.
        self.suppressed.remove(name);
    }

    /// Called when we actually put a forwarded Interest on the air.
    pub fn note_forwarded(&mut self, name: &Name, now: SimTime) {
        self.pending_response.entry(name.clone()).or_insert(now);
    }

    /// Periodic sweep: expire pending forwards into suppressions and drop
    /// stale neighbors and lapsed suppressions. Returns the number of
    /// neighbors expired (crashed or departed peers leaving the strategy's
    /// view).
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let timeout = self.response_timeout;
        let mut to_suppress = Vec::new();
        self.pending_response.retain(|name, &mut at| {
            if now.since(at) > timeout {
                to_suppress.push(name.clone());
                false
            } else {
                true
            }
        });
        for name in to_suppress {
            self.forward_failures += 1;
            self.suppressed.insert(name, now + self.suppress_duration);
        }
        self.suppressed.retain(|_, &mut until| until > now);
        let nt = self.neighbor_timeout;
        let before = self.neighbors.len();
        self.neighbors
            .retain(|_, info| now.since(info.last_heard) <= nt);
        before - self.neighbors.len()
    }

    /// Count of live neighbors.
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Forwarding accuracy so far (the §VI-D 83 % metric).
    pub fn forward_accuracy(&self) -> Option<f64> {
        let total = self.forward_successes + self.forward_failures;
        if total == 0 {
            None
        } else {
            Some(self.forward_successes as f64 / total as f64)
        }
    }

    /// Approximate bytes of multi-hop state (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.neighbors
            .values()
            .map(NeighborInfo::state_bytes)
            .sum::<usize>()
            + self.suppressed.keys().map(Name::state_bytes).sum::<usize>()
            + self
                .pending_response
                .keys()
                .map(Name::state_bytes)
                .sum::<usize>()
    }

    /// Should we re-broadcast `interest` heard from the air?
    pub fn should_forward(&mut self, interest: &Interest, now: SimTime) -> bool {
        match self.should_forward_named(interest.name(), now) {
            Some(decision) => decision,
            // Only the bitmap-Interest arm needs the payload.
            None => self.bitmap_decision(interest),
        }
    }

    /// Name-only forwarding decision, the basis of the forwarder's
    /// decode-free relay path. Returns `None` — *before touching the RNG or
    /// any other state* — when the decision needs the Interest payload
    /// (bitmap Interests compare the requester's bitmap against neighbor
    /// knowledge); [`MultihopState::should_forward`] then finishes the job.
    /// When it returns `Some`, the state consumed (RNG draws included) is
    /// exactly what `should_forward` would have consumed.
    pub fn should_forward_named(&mut self, name: &Name, now: SimTime) -> Option<bool> {
        if !self.enabled {
            return Some(false);
        }
        if self.suppressed.get(name).is_some_and(|&until| until > now) {
            return Some(false);
        }
        match self.role {
            NodeRole::PureForwarder => Some(self.probabilistic()),
            NodeRole::Dapes => self.dapes_decision_named(name, now),
        }
    }

    fn probabilistic(&mut self) -> bool {
        self.rng.gen::<f64>() < self.forward_prob
    }

    /// The payload-dependent tail of the DAPES decision: forward a bitmap
    /// Interest when a neighbor could add packets the requester misses.
    fn bitmap_decision(&mut self, interest: &Interest) -> bool {
        let Some(DapesName::Bitmap { collection, .. }) = namespace::classify(interest.name())
        else {
            // `should_forward_named` only defers for bitmap names.
            debug_assert!(false, "bitmap_decision on a non-bitmap Interest");
            return self.probabilistic();
        };
        let requester_bitmap = interest
            .app_parameters()
            .and_then(crate::advert_payload::decode_bitmap_params_maybe_sealed)
            .map(|(_, bm)| bm);
        match requester_bitmap {
            Some(req) => {
                let mut any = false;
                for info in self.neighbors.values() {
                    if let Some(nb) = info.bitmaps.get(&collection) {
                        any = true;
                        if nb.len() == req.len() && nb.count_set_and_missing_from(&req) > 0 {
                            return true;
                        }
                    }
                }
                if any {
                    false
                } else {
                    self.probabilistic()
                }
            }
            None => self.probabilistic(),
        }
    }

    fn dapes_decision_named(&mut self, name: &Name, _now: SimTime) -> Option<bool> {
        match namespace::classify(name) {
            Some(DapesName::Content {
                collection,
                file,
                seq,
            }) => {
                // If we can answer ourselves, the application will; no
                // re-broadcast needed.
                if let (Some(idx), Some(have)) =
                    (self.indices.get(&collection), self.have.get(&collection))
                {
                    if let Some(g) = idx.global_index(&file, seq) {
                        if g < have.len() && have.get(g) {
                            return Some(false);
                        }
                        return Some(match self.neighbor_has_packet(&collection, g) {
                            Some(true) => true,   // knowledge says data is out there
                            Some(false) => false, // knowledge says nobody has it
                            None => self.probabilistic(),
                        });
                    }
                }
                // No metadata for this collection: behave like a pure
                // forwarder, but only if someone nearby seems interested.
                if self.any_neighbor_interested(&collection) {
                    Some(true)
                } else {
                    Some(self.probabilistic())
                }
            }
            // The bitmap decision reads the requester's bitmap out of the
            // Interest's application parameters — payload, not name. Defer
            // (without drawing from the RNG) so the full-decode path can
            // finish with `bitmap_decision`.
            Some(DapesName::Bitmap { .. }) => None,
            Some(DapesName::Metadata { collection, .. }) => {
                if self.any_neighbor_interested(&collection) {
                    Some(true)
                } else {
                    Some(self.probabilistic())
                }
            }
            Some(DapesName::Discovery { .. }) | None => Some(self.probabilistic()),
        }
    }
}

/// The forwarder strategy wired to the shared [`MultihopState`].
///
/// Interests from the local application are always sent to the wireless
/// face; Interests heard from the air are delivered to the application (if
/// the FIB says so) and re-broadcast only when [`MultihopState`] approves.
pub struct DapesStrategy {
    shared: Arc<Mutex<MultihopState>>,
}

impl DapesStrategy {
    /// Creates the strategy around shared state.
    pub fn new(shared: Arc<Mutex<MultihopState>>) -> Self {
        DapesStrategy { shared }
    }
}

impl Strategy for DapesStrategy {
    fn decide(
        &mut self,
        interest: &Interest,
        ingress: FaceId,
        nexthops: &[FaceId],
        now: SimTime,
    ) -> Decision {
        let mut faces = Vec::new();
        for &face in nexthops {
            match face {
                FaceId::APP => faces.push(FaceId::APP),
                FaceId::WIRELESS => {
                    if ingress == FaceId::APP {
                        // Our own Interest: always goes to the air.
                        faces.push(FaceId::WIRELESS);
                    } else if self
                        .shared
                        .lock()
                        .expect("multihop state")
                        .should_forward(interest, now)
                    {
                        faces.push(FaceId::WIRELESS);
                    }
                }
                other => faces.push(other),
            }
        }
        if faces.is_empty() {
            Decision::Suppress
        } else {
            Decision::Forward(faces)
        }
    }

    /// With no next hops the loop above never consults the shared state (or
    /// its RNG), so the empty-FIB decision is statically `Suppress` — which
    /// lets the forwarder's header-only fast path drop not-for-me Interests
    /// without a full decode.
    fn decide_no_nexthops(&mut self, _ingress: FaceId, _now: SimTime) -> Option<Decision> {
        Some(Decision::Suppress)
    }

    /// Name-only mirror of [`DapesStrategy::decide`], enabling the
    /// forwarder's decode-free relay path. The FIB hands over each face at
    /// most once, so at most one `should_forward_named` call happens per
    /// decision; when it defers (`None`, bitmap Interests) no state was
    /// touched and the full pipeline re-runs `decide` against an untouched
    /// strategy.
    fn decide_header(
        &mut self,
        name: &Name,
        ingress: FaceId,
        nexthops: &[FaceId],
        now: SimTime,
    ) -> Option<Decision> {
        let mut faces = Vec::new();
        for &face in nexthops {
            match face {
                FaceId::APP => faces.push(FaceId::APP),
                FaceId::WIRELESS => {
                    if ingress == FaceId::APP {
                        // Our own Interest: always goes to the air.
                        faces.push(FaceId::WIRELESS);
                    } else if self
                        .shared
                        .lock()
                        .expect("multihop state")
                        .should_forward_named(name, now)?
                    {
                        faces.push(FaceId::WIRELESS);
                    }
                }
                other => faces.push(other),
            }
        }
        Some(if faces.is_empty() {
            Decision::Suppress
        } else {
            Decision::Forward(faces)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content_interest(uri: &str) -> Interest {
        Interest::new(Name::from_uri(uri)).with_nonce(1)
    }

    fn state(role: NodeRole, prob: f64) -> MultihopState {
        MultihopState::new(role, true, prob, 42)
    }

    fn col() -> Name {
        Name::from_uri("/col")
    }

    fn setup_indexed(ms: &mut MultihopState, have_bits: &[usize], total: usize) {
        let idx = PacketIndex::new(vec![("f".into(), total as u32)]);
        ms.indices.insert(col(), idx);
        let mut have = Bitmap::new(total);
        for &b in have_bits {
            have.set(b);
        }
        ms.have.insert(col(), have);
    }

    #[test]
    fn disabled_never_forwards() {
        let mut ms = MultihopState::new(NodeRole::Dapes, false, 1.0, 1);
        assert!(!ms.should_forward(&content_interest("/col/f/0"), SimTime::ZERO));
    }

    #[test]
    fn pure_forwarder_is_probabilistic() {
        let mut always = state(NodeRole::PureForwarder, 1.0);
        let mut never = state(NodeRole::PureForwarder, 0.0);
        let i = content_interest("/col/f/0");
        assert!(always.should_forward(&i, SimTime::ZERO));
        assert!(!never.should_forward(&i, SimTime::ZERO));
        // ~20 %: out of many draws, some but not all forward.
        let mut some = state(NodeRole::PureForwarder, 0.2);
        let n = (0..1000)
            .filter(|_| some.should_forward(&i, SimTime::ZERO))
            .count();
        assert!((100..350).contains(&n), "got {n} of 1000 at p=0.2");
    }

    #[test]
    fn dapes_forwards_when_neighbor_has_packet() {
        let mut ms = state(NodeRole::Dapes, 0.0);
        setup_indexed(&mut ms, &[], 10);
        let mut nb = Bitmap::new(10);
        nb.set(3);
        ms.record_bitmap(9, &col(), nb, SimTime::ZERO);
        assert!(ms.should_forward(&content_interest("/col/f/3"), SimTime::ZERO));
    }

    #[test]
    fn dapes_suppresses_when_knowledge_says_nobody_has_it() {
        let mut ms = state(NodeRole::Dapes, 1.0); // even with p=1
        setup_indexed(&mut ms, &[], 10);
        ms.record_bitmap(9, &col(), Bitmap::new(10), SimTime::ZERO);
        assert!(!ms.should_forward(&content_interest("/col/f/3"), SimTime::ZERO));
    }

    #[test]
    fn dapes_does_not_forward_what_it_can_answer() {
        let mut ms = state(NodeRole::Dapes, 1.0);
        setup_indexed(&mut ms, &[3], 10);
        let mut nb = Bitmap::new(10);
        nb.set(3);
        ms.record_bitmap(9, &col(), nb, SimTime::ZERO);
        assert!(!ms.should_forward(&content_interest("/col/f/3"), SimTime::ZERO));
    }

    #[test]
    fn dapes_without_knowledge_falls_back_to_probability() {
        let mut ms = state(NodeRole::Dapes, 0.0);
        setup_indexed(&mut ms, &[], 10);
        // No neighbor bitmaps at all.
        assert!(!ms.should_forward(&content_interest("/col/f/3"), SimTime::ZERO));
        let mut ms2 = state(NodeRole::Dapes, 1.0);
        setup_indexed(&mut ms2, &[], 10);
        assert!(ms2.should_forward(&content_interest("/col/f/3"), SimTime::ZERO));
    }

    #[test]
    fn suppression_blocks_then_lapses() {
        let mut ms = state(NodeRole::PureForwarder, 1.0);
        let name = Name::from_uri("/col/f/0");
        ms.note_forwarded(&name, SimTime::ZERO);
        // No data within the timeout -> suppression starts at sweep.
        ms.sweep(SimTime::from_secs(1));
        assert_eq!(ms.forward_failures, 1);
        assert!(!ms.should_forward(&content_interest("/col/f/0"), SimTime::from_secs(1)));
        // After the suppression lapses, forwarding resumes.
        ms.sweep(SimTime::from_secs(4));
        assert!(ms.should_forward(&content_interest("/col/f/0"), SimTime::from_secs(4)));
    }

    #[test]
    fn data_resolves_pending_forward_as_success() {
        let mut ms = state(NodeRole::PureForwarder, 1.0);
        let name = Name::from_uri("/col/f/0");
        ms.note_forwarded(&name, SimTime::ZERO);
        ms.note_data_seen(&name);
        ms.sweep(SimTime::from_secs(10));
        assert_eq!(ms.forward_successes, 1);
        assert_eq!(ms.forward_failures, 0);
        assert_eq!(ms.forward_accuracy(), Some(1.0));
    }

    #[test]
    fn neighbors_expire() {
        let mut ms = state(NodeRole::Dapes, 0.2);
        ms.note_peer(1, SimTime::ZERO);
        ms.note_peer(2, SimTime::from_secs(8));
        ms.sweep(SimTime::from_secs(10));
        assert_eq!(ms.neighbor_count(), 1, "peer 1 expired");
    }

    #[test]
    fn note_neighbor_has_updates_bitmap() {
        let mut ms = state(NodeRole::Dapes, 0.0);
        ms.record_bitmap(1, &col(), Bitmap::new(10), SimTime::ZERO);
        assert_eq!(ms.neighbor_has_packet(&col(), 4), Some(false));
        ms.note_neighbor_has(1, &col(), 4, SimTime::ZERO);
        assert_eq!(ms.neighbor_has_packet(&col(), 4), Some(true));
        assert_eq!(ms.neighbor_has_packet(&Name::from_uri("/other"), 0), None);
    }

    #[test]
    fn strategy_always_airs_local_interests() {
        let shared = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::Dapes,
            true,
            0.0,
            1,
        )));
        let mut strat = DapesStrategy::new(shared);
        let i = content_interest("/col/f/0");
        let d = strat.decide(&i, FaceId::APP, &[FaceId::WIRELESS], SimTime::ZERO);
        assert_eq!(d, Decision::Forward(vec![FaceId::WIRELESS]));
    }

    #[test]
    fn strategy_gates_relayed_interests() {
        let shared = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::PureForwarder,
            true,
            0.0,
            1,
        )));
        let mut strat = DapesStrategy::new(shared.clone());
        let i = content_interest("/col/f/0");
        let d = strat.decide(
            &i,
            FaceId::WIRELESS,
            &[FaceId::APP, FaceId::WIRELESS],
            SimTime::ZERO,
        );
        // p=0: only the app face survives.
        assert_eq!(d, Decision::Forward(vec![FaceId::APP]));
        shared.lock().expect("multihop state").forward_prob = 1.0;
        let d = strat.decide(
            &i,
            FaceId::WIRELESS,
            &[FaceId::APP, FaceId::WIRELESS],
            SimTime::ZERO,
        );
        assert_eq!(d, Decision::Forward(vec![FaceId::APP, FaceId::WIRELESS]));
    }

    #[test]
    fn header_decision_matches_full_decision_draw_for_draw() {
        // Two states seeded identically: one driven through the name-only
        // path, one through the payload path. Every decision (and therefore
        // every RNG draw) must line up.
        let a = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::Dapes,
            true,
            0.5,
            7,
        )));
        let b = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::Dapes,
            true,
            0.5,
            7,
        )));
        let mut header = DapesStrategy::new(a);
        let mut full = DapesStrategy::new(b);
        let hops = [FaceId::APP, FaceId::WIRELESS];
        for i in 0..200 {
            let interest = content_interest(&format!("/col/f/{i}"));
            let d_header = header
                .decide_header(interest.name(), FaceId::WIRELESS, &hops, SimTime::ZERO)
                .expect("content names are name-decidable");
            let d_full = full.decide(&interest, FaceId::WIRELESS, &hops, SimTime::ZERO);
            assert_eq!(d_header, d_full, "diverged at draw {i}");
        }
    }

    #[test]
    fn header_decision_defers_on_bitmap_interests_without_touching_state() {
        let shared = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::Dapes,
            true,
            0.5,
            11,
        )));
        let mut strat = DapesStrategy::new(shared.clone());
        let bitmap_name = crate::namespace::bitmap_interest_name(&col(), 4, 1);
        assert_eq!(
            strat.decide_header(
                &bitmap_name,
                FaceId::WIRELESS,
                &[FaceId::APP, FaceId::WIRELESS],
                SimTime::ZERO,
            ),
            None,
            "bitmap decisions need the Interest payload"
        );
        // The deferral must not have consumed an RNG draw: a fresh
        // same-seed state stays in lockstep afterwards.
        let fresh = Arc::new(Mutex::new(MultihopState::new(
            NodeRole::Dapes,
            true,
            0.5,
            11,
        )));
        for i in 0..50 {
            let name = Name::from_uri(&format!("/col/f/{i}"));
            assert_eq!(
                shared
                    .lock()
                    .expect("multihop state")
                    .should_forward_named(&name, SimTime::ZERO),
                fresh
                    .lock()
                    .expect("multihop state")
                    .should_forward_named(&name, SimTime::ZERO),
                "RNG streams diverged at draw {i}"
            );
        }
    }

    #[test]
    fn state_bytes_track_knowledge() {
        let mut ms = state(NodeRole::Dapes, 0.2);
        let before = ms.state_bytes();
        ms.record_bitmap(1, &col(), Bitmap::new(1000), SimTime::ZERO);
        assert!(ms.state_bytes() > before);
    }
}
