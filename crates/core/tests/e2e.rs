//! End-to-end DAPES swarm tests on the wireless simulator, built on the
//! `dapes-testutil` scenario harness: each test is one builder chain plus
//! golden-metric assertions.

use dapes_core::prelude::*;
use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

#[test]
fn two_peers_complete_small_collection() {
    let mut sc = ScenarioBuilder::new(1)
        .collection(2, 4096)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(120)),
        "download incomplete after 120 s"
    );
    let peer = sc.peer(sc.downloaders[0]).expect("peer");
    assert!(peer.completed_at().is_some());
    // 2 files x 4 KiB / 1 KiB packets = 8 content packets.
    assert_scenario("two-peers", &sc, &GoldenMetrics::with_min_packets(8));
}

#[test]
fn download_survives_ten_percent_loss() {
    let mut sc = ScenarioBuilder::new(2)
        .collection(2, 4096)
        .loss(0.10)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(300)),
        "download incomplete under 10% loss"
    );
    assert_scenario("lossy", &sc, &GoldenMetrics::with_min_packets(8));
}

#[test]
fn download_survives_a_loss_burst() {
    // A 60%-loss burst for the first 30 s (a storm passing through),
    // clean air afterwards: the retransmission machinery must recover.
    let mut sc = ScenarioBuilder::new(21)
        .collection(1, 4096)
        .loss(0.6)
        .loss_schedule([(SimTime::from_secs(30), 0.0)])
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(300)),
        "download incomplete after the loss burst cleared"
    );
    assert_scenario("loss-burst", &sc, &GoldenMetrics::with_min_packets(4));
}

#[test]
fn packet_digest_format_verifies_immediately() {
    let mut sc = ScenarioBuilder::new(3)
        .collection_params(CollectionParams {
            name: "/col-digest".into(),
            files: 1,
            file_size: 8 * 1024,
            format: MetadataFormat::PacketDigest,
            producer: "p".into(),
            ..CollectionParams::default()
        })
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(sc.run_until_complete(SimTime::from_secs(120)));
    let peer = sc.peer(sc.downloaders[0]).expect("peer");
    assert_eq!(peer.stats().packets_verified, 8);
}

#[test]
fn multiple_downloaders_share_producer() {
    let mut sc = ScenarioBuilder::new(4)
        .collection(2, 4096)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .downloader_at(0.0, 20.0)
        .downloader_at(-20.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(240)),
        "not all downloaders finished"
    );
    assert_scenario("star-3", &sc, &GoldenMetrics::default());
}

#[test]
fn two_hop_relay_through_intermediate_dapes_node() {
    // producer --- relay --- downloader, with the downloader out of the
    // producer's 60 m range. Only multi-hop forwarding can bridge it;
    // forward_prob = 1.0 makes the relay deterministic for the test.
    let cfg = DapesConfig {
        forward_prob: 1.0,
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(5)
        .collection(1, 4096)
        .config(cfg)
        .producer_at(0.0, 0.0)
        .relay_at(50.0, 0.0)
        .downloader_at(100.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(300)),
        "two-hop download incomplete"
    );
}

#[test]
fn pure_forwarder_bridges_two_segments() {
    // The producer and downloader are mutually hidden terminals; a single
    // pure forwarder bridges them. Hidden-terminal collisions at the
    // forwarder make some seeds wedge (a known limitation recorded in the
    // seed's experiment notes); this seed exercises the working bridge
    // path.
    let cfg = DapesConfig {
        forward_prob: 1.0,
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(36)
        .collection(1, 4096)
        .config(cfg)
        .producer_at(0.0, 0.0)
        .pure_forwarder_at(50.0, 0.0)
        .downloader_at(100.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(600)),
        "download through pure forwarder incomplete"
    );
}

#[test]
fn single_hop_config_cannot_cross_two_hops() {
    let mut sc = ScenarioBuilder::new(7)
        .collection(1, 2048)
        .config(DapesConfig::single_hop())
        .producer_at(0.0, 0.0)
        .relay_at(50.0, 0.0)
        .downloader_at(100.0, 0.0)
        .build();
    assert!(
        !sc.run_until_complete(SimTime::from_secs(120)),
        "single-hop must not reach across two hops"
    );
}

#[test]
fn carrier_moves_collection_between_partitions() {
    // Paper Fig. 8a: a data carrier ferries the collection from the
    // producer's segment to a disconnected peer.
    let mut sc = ScenarioBuilder::new(8)
        .range(50.0)
        .collection(1, 4096)
        .producer_at(0.0, 0.0)
        .peer(
            PeerRole::Downloader,
            MobilityPreset::Ferry {
                from: Point::new(10.0, 0.0),
                to: Point::new(290.0, 0.0),
                depart: SimTime::from_secs(60),
                travel: SimDuration::from_secs(60),
            },
        )
        .downloader_at(300.0, 0.0)
        .build();
    let carrier = sc.downloaders[0];
    let remote = sc.downloaders[1];
    let done = sc.run_until_complete(SimTime::from_secs(400));
    assert!(sc.completed(carrier), "carrier itself should finish");
    assert!(
        done && sc.completed(remote),
        "remote peer never got the collection from the carrier"
    );
}

#[test]
fn bitmaps_first_schedule_completes() {
    let cfg = DapesConfig {
        schedule: AdvertSchedule::BitmapsFirst(BitmapBudget::Count(2)),
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(9)
        .collection(1, 4096)
        .config(cfg)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .downloader_at(0.0, 20.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(240)),
        "bitmaps-first download incomplete"
    );
}

#[test]
fn encounter_based_rpf_completes() {
    let cfg = DapesConfig {
        rpf: RpfVariant::EncounterBased,
        start: StartPacket::Same,
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(10)
        .collection(1, 4096)
        .config(cfg)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(120)),
        "encounter-based download incomplete"
    );
}

#[test]
fn peers_reshare_after_completion() {
    // d2 appears only after d1 finished and the producer left: d1 must
    // serve the collection (including metadata) on its own.
    let mut sc = ScenarioBuilder::new(11)
        .range(50.0)
        .collection(1, 4096)
        .peer(
            PeerRole::Producer,
            MobilityPreset::Waypoints(vec![
                (SimTime::ZERO, Point::new(0.0, 0.0)),
                (SimTime::from_secs(60), Point::new(0.0, 0.0)),
                (SimTime::from_secs(90), Point::new(300.0, 300.0)),
            ]),
        )
        .downloader_at(20.0, 0.0)
        .peer(
            PeerRole::Downloader,
            MobilityPreset::Waypoints(vec![
                (SimTime::ZERO, Point::new(200.0, 200.0)),
                (SimTime::from_secs(120), Point::new(200.0, 200.0)),
                (SimTime::from_secs(150), Point::new(30.0, 0.0)),
            ]),
        )
        .build();
    let (d1, d2) = (sc.downloaders[0], sc.downloaders[1]);
    assert!(
        sc.run_until_node_complete(d1, SimTime::from_secs(90)),
        "d1 should finish while the producer is present"
    );
    assert!(
        sc.run_until_node_complete(d2, SimTime::from_secs(500)),
        "d2 should fetch everything from d1"
    );
}

#[test]
fn determinism_same_seed_same_completion_time() {
    let run = |seed| {
        let mut sc = ScenarioBuilder::new(seed)
            .collection(1, 4096)
            .loss(0.05)
            .producer_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        sc.run_until_complete(SimTime::from_secs(200));
        (sc.completion_times(), sc.world.stats().tx_frames)
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn overhead_counted_by_kind() {
    use dapes_core::stats::kinds;
    let mut sc = ScenarioBuilder::new(12)
        .collection(1, 4096)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    sc.run_until_complete(SimTime::from_secs(120));
    let stats = sc.world.stats();
    assert!(stats.tx_for_kinds(&[kinds::DISCOVERY_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::DISCOVERY_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::METADATA_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::METADATA_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::BITMAP_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::BITMAP_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::CONTENT_INTEREST]) >= 4);
    assert!(stats.tx_for_kinds(&[kinds::CONTENT_DATA]) >= 4);
    // Everything the DAPES peers sent is classified.
    assert_frames_classified(stats);
}

#[test]
fn memory_proxy_grows_with_download_state() {
    let mut sc = ScenarioBuilder::new(13)
        .collection(2, 8192)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .build();
    let dl = sc.downloaders[0];
    sc.run_until(SimTime::from_micros(200_000));
    let early = sc.world.node_state_bytes(dl);
    sc.run_until_complete(SimTime::from_secs(120));
    let late = sc.world.node_state_bytes(dl);
    assert!(late > early, "state bytes should grow: {early} -> {late}");
}
