//! End-to-end DAPES swarm tests on the wireless simulator.

use dapes_core::prelude::*;
use dapes_crypto::signing::TrustAnchor;
use dapes_netsim::prelude::*;
use std::rc::Rc;

fn anchor() -> TrustAnchor {
    TrustAnchor::from_seed(b"rural-area")
}

fn small_collection(files: usize, file_size: usize) -> Rc<Collection> {
    Rc::new(Collection::build(CollectionSpec {
        name: dapes_ndn::name::Name::from_uri("/damaged-bridge-1533783192"),
        files: (0..files)
            .map(|i| FileSpec::new(format!("file-{i}"), file_size))
            .collect(),
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }))
}

fn world(seed: u64, range: f64, loss: f64) -> World {
    let mut cfg = WorldConfig::default();
    cfg.seed = seed;
    cfg.range = range;
    cfg.phy.loss_rate = loss;
    World::new(cfg)
}

fn add_producer(
    w: &mut World,
    id: u32,
    at: Point,
    cfg: DapesConfig,
    col: Rc<Collection>,
) -> NodeId {
    let mut peer = DapesPeer::new(id, cfg, anchor(), WantPolicy::Nothing);
    peer.add_production(col);
    w.add_node(Box::new(Stationary::new(at)), Box::new(peer))
}

fn add_downloader(w: &mut World, id: u32, at: Point, cfg: DapesConfig) -> NodeId {
    let peer = DapesPeer::new(id, cfg, anchor(), WantPolicy::Everything);
    w.add_node(Box::new(Stationary::new(at)), Box::new(peer))
}

fn completed(w: &World, node: NodeId) -> bool {
    w.stack::<DapesPeer>(node)
        .is_some_and(|p| p.downloads_complete())
}

#[test]
fn two_peers_complete_small_collection() {
    let mut w = world(1, 60.0, 0.0);
    let col = small_collection(2, 4096);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    let done = w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    assert!(done, "download incomplete after 120 s");
    let peer = w.stack::<DapesPeer>(dl).expect("peer");
    assert!(peer.completed_at().is_some());
    assert_eq!(peer.stats().verify_failures, 0);
    assert!(peer.stats().data_received >= 8, "8 packets in collection");
}

#[test]
fn download_survives_ten_percent_loss() {
    let mut w = world(2, 60.0, 0.10);
    let col = small_collection(2, 4096);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    let done = w.run_until_cond(SimTime::from_secs(300), |w| completed(w, dl));
    assert!(done, "download incomplete under 10% loss");
}

#[test]
fn packet_digest_format_verifies_immediately() {
    let mut w = world(3, 60.0, 0.0);
    let col = Rc::new(Collection::build(CollectionSpec {
        name: dapes_ndn::name::Name::from_uri("/col-digest"),
        files: vec![FileSpec::new("f", 8 * 1024)],
        packet_size: 1024,
        format: MetadataFormat::PacketDigest,
        producer: "p".into(),
    }));
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    let done = w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    assert!(done);
    let peer = w.stack::<DapesPeer>(dl).expect("peer");
    assert_eq!(peer.stats().packets_verified, 8);
}

#[test]
fn multiple_downloaders_share_producer() {
    let mut w = world(4, 60.0, 0.0);
    let col = small_collection(2, 4096);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let d1 = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    let d2 = add_downloader(&mut w, 2, Point::new(0.0, 20.0), DapesConfig::default());
    let d3 = add_downloader(&mut w, 3, Point::new(-20.0, 0.0), DapesConfig::default());
    let done = w.run_until_cond(SimTime::from_secs(240), |w| {
        completed(w, d1) && completed(w, d2) && completed(w, d3)
    });
    assert!(done, "not all downloaders finished");
}

#[test]
fn two_hop_relay_through_intermediate_dapes_node() {
    // producer --- intermediate --- downloader, with the downloader out of
    // the producer's 60 m range. Only multi-hop forwarding can bridge it.
    let mut w = world(5, 60.0, 0.0);
    let col = small_collection(1, 4096);
    let mut cfg = DapesConfig::default();
    cfg.forward_prob = 1.0; // make the relay deterministic for the test
    add_producer(&mut w, 0, Point::new(0.0, 0.0), cfg.clone(), col);
    // Intermediate DAPES node that wants nothing.
    let mid = DapesPeer::new(1, cfg.clone(), anchor(), WantPolicy::Nothing);
    w.add_node(
        Box::new(Stationary::new(Point::new(50.0, 0.0))),
        Box::new(mid),
    );
    let dl = add_downloader(&mut w, 2, Point::new(100.0, 0.0), cfg);
    let done = w.run_until_cond(SimTime::from_secs(300), |w| completed(w, dl));
    assert!(done, "two-hop download incomplete");
}

#[test]
fn pure_forwarder_bridges_two_segments() {
    // The producer and downloader are mutually hidden terminals; a single
    // pure forwarder bridges them. Hidden-terminal collisions at the
    // forwarder make some seeds wedge (a known limitation recorded in
    // EXPERIMENTS.md); this seed exercises the working bridge path.
    let mut w = world(36, 60.0, 0.0);
    let col = small_collection(1, 4096);
    let mut cfg = DapesConfig::default();
    cfg.forward_prob = 1.0;
    add_producer(&mut w, 0, Point::new(0.0, 0.0), cfg.clone(), col);
    let pf = DapesPeer::pure_forwarder(1, cfg.clone(), anchor());
    w.add_node(
        Box::new(Stationary::new(Point::new(50.0, 0.0))),
        Box::new(pf),
    );
    let dl = add_downloader(&mut w, 2, Point::new(100.0, 0.0), cfg);
    let done = w.run_until_cond(SimTime::from_secs(600), |w| completed(w, dl));
    assert!(done, "download through pure forwarder incomplete");
}

#[test]
fn single_hop_config_cannot_cross_two_hops() {
    let mut w = world(7, 60.0, 0.0);
    let col = small_collection(1, 2048);
    let cfg = DapesConfig::single_hop();
    add_producer(&mut w, 0, Point::new(0.0, 0.0), cfg.clone(), col);
    let mid = DapesPeer::new(1, cfg.clone(), anchor(), WantPolicy::Nothing);
    w.add_node(
        Box::new(Stationary::new(Point::new(50.0, 0.0))),
        Box::new(mid),
    );
    let dl = add_downloader(&mut w, 2, Point::new(100.0, 0.0), cfg);
    let done = w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    assert!(!done, "single-hop must not reach across two hops");
}

#[test]
fn carrier_moves_collection_between_partitions() {
    // Paper Fig. 8a: a data carrier ferries the collection from the
    // producer's segment to a disconnected peer.
    let mut w = world(8, 50.0, 0.0);
    let col = small_collection(1, 4096);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    // Carrier shuttles between producer (0,0) and remote peer (300,0).
    let carrier = DapesPeer::new(1, DapesConfig::default(), anchor(), WantPolicy::Everything);
    let mut waypoints = vec![(SimTime::ZERO, Point::new(10.0, 0.0))];
    // Stay near the producer for 60 s, then travel to the far peer.
    waypoints.push((SimTime::from_secs(60), Point::new(10.0, 0.0)));
    waypoints.push((SimTime::from_secs(120), Point::new(290.0, 0.0)));
    let carrier_id = w.add_node(
        Box::new(ScriptedMobility::new(waypoints)),
        Box::new(carrier),
    );
    let dl = add_downloader(&mut w, 2, Point::new(300.0, 0.0), DapesConfig::default());
    let done = w.run_until_cond(SimTime::from_secs(400), |w| completed(w, dl));
    assert!(completed(&w, carrier_id), "carrier itself should finish");
    assert!(done, "remote peer never got the collection from the carrier");
}

#[test]
fn bitmaps_first_schedule_completes() {
    let mut w = world(9, 60.0, 0.0);
    let col = small_collection(1, 4096);
    let mut cfg = DapesConfig::default();
    cfg.schedule = AdvertSchedule::BitmapsFirst(BitmapBudget::Count(2));
    add_producer(&mut w, 0, Point::new(0.0, 0.0), cfg.clone(), col);
    let d1 = add_downloader(&mut w, 1, Point::new(20.0, 0.0), cfg.clone());
    let d2 = add_downloader(&mut w, 2, Point::new(0.0, 20.0), cfg);
    let done = w.run_until_cond(SimTime::from_secs(240), |w| {
        completed(w, d1) && completed(w, d2)
    });
    assert!(done, "bitmaps-first download incomplete");
}

#[test]
fn encounter_based_rpf_completes() {
    let mut w = world(10, 60.0, 0.0);
    let col = small_collection(1, 4096);
    let mut cfg = DapesConfig::default();
    cfg.rpf = RpfVariant::EncounterBased;
    cfg.start = StartPacket::Same;
    add_producer(&mut w, 0, Point::new(0.0, 0.0), cfg.clone(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), cfg);
    let done = w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    assert!(done, "encounter-based download incomplete");
}

#[test]
fn peers_reshare_after_completion() {
    // d2 appears only after d1 finished and the producer left: d1 must
    // serve the collection (including metadata) on its own.
    let mut w = world(11, 50.0, 0.0);
    let col = small_collection(1, 4096);
    // Producer walks away after 60 s.
    let mut producer = DapesPeer::new(0, DapesConfig::default(), anchor(), WantPolicy::Nothing);
    producer.add_production(col);
    w.add_node(
        Box::new(ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(60), Point::new(0.0, 0.0)),
            (SimTime::from_secs(90), Point::new(300.0, 300.0)),
        ])),
        Box::new(producer),
    );
    let d1 = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    // d2 walks into range of d1 only after the producer left.
    let d2_peer = DapesPeer::new(2, DapesConfig::default(), anchor(), WantPolicy::Everything);
    let d2 = w.add_node(
        Box::new(ScriptedMobility::new(vec![
            (SimTime::ZERO, Point::new(200.0, 200.0)),
            (SimTime::from_secs(120), Point::new(200.0, 200.0)),
            (SimTime::from_secs(150), Point::new(30.0, 0.0)),
        ])),
        Box::new(d2_peer),
    );
    let d1_done = w.run_until_cond(SimTime::from_secs(90), |w| completed(w, d1));
    assert!(d1_done, "d1 should finish while the producer is present");
    let d2_done = w.run_until_cond(SimTime::from_secs(500), |w| completed(w, d2));
    assert!(d2_done, "d2 should fetch everything from d1");
}

#[test]
fn determinism_same_seed_same_completion_time() {
    let run = |seed| {
        let mut w = world(seed, 60.0, 0.05);
        let col = small_collection(1, 4096);
        add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
        let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
        w.run_until_cond(SimTime::from_secs(200), |w| completed(w, dl));
        (
            w.stack::<DapesPeer>(dl).expect("peer").completed_at(),
            w.stats().tx_frames,
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn overhead_counted_by_kind() {
    let mut w = world(12, 60.0, 0.0);
    let col = small_collection(1, 4096);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    let stats = w.stats();
    assert!(stats.tx_for_kinds(&[kinds::DISCOVERY_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::DISCOVERY_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::METADATA_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::METADATA_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::BITMAP_INTEREST]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::BITMAP_DATA]) > 0);
    assert!(stats.tx_for_kinds(&[kinds::CONTENT_INTEREST]) >= 4);
    assert!(stats.tx_for_kinds(&[kinds::CONTENT_DATA]) >= 4);
    // Everything the DAPES peers sent is classified.
    let classified: u64 = stats.tx_for_kinds(&kinds::ALL_DAPES);
    assert_eq!(classified, stats.tx_frames);
}

#[test]
fn memory_proxy_grows_with_download_state() {
    let mut w = world(13, 60.0, 0.0);
    let col = small_collection(2, 8192);
    add_producer(&mut w, 0, Point::new(0.0, 0.0), DapesConfig::default(), col);
    let dl = add_downloader(&mut w, 1, Point::new(20.0, 0.0), DapesConfig::default());
    w.run_until(SimTime::from_micros(200_000));
    let early = w.node_state_bytes(dl);
    w.run_until_cond(SimTime::from_secs(120), |w| completed(w, dl));
    let late = w.node_state_bytes(dl);
    assert!(late > early, "state bytes should grow: {early} -> {late}");
}
